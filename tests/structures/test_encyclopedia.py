"""Unit tests for the encyclopedia application object."""

import pytest

from repro.errors import DatabaseError
from repro.oodb import ObjectDatabase
from repro.structures import build_encyclopedia


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=64)


@pytest.fixture
def enc(db):
    return build_encyclopedia(db, order=4)


def test_build_creates_figure2_objects(db, enc):
    assert enc == "Enc"
    assert db.has_object("EncBpTree")
    assert db.has_object("EncLinkedList")


def test_insert_and_search(db, enc):
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "DBMS", "database management")
    db.commit(ctx)
    ctx2 = db.begin()
    assert db.send(ctx2, enc, "search", "DBMS") == "database management"
    assert db.send(ctx2, enc, "search", "nope") is None
    db.commit(ctx2)


def test_duplicate_key_rejected(db, enc):
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "DBMS", "x")
    with pytest.raises(DatabaseError):
        db.send(ctx, enc, "insertItem", "DBMS", "y")
    db.abort(ctx)


def test_change_item_via_index(db, enc):
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "DBS", "v1")
    db.commit(ctx)
    ctx2 = db.begin()
    assert db.send(ctx2, enc, "changeItem", "DBS", "v2") == "v1"
    db.commit(ctx2)
    ctx3 = db.begin()
    assert db.send(ctx3, enc, "search", "DBS") == "v2"
    db.commit(ctx3)


def test_change_missing_item(db, enc):
    ctx = db.begin()
    with pytest.raises(DatabaseError):
        db.send(ctx, enc, "changeItem", "nope", "x")
    db.abort(ctx)


def test_read_seq_in_insertion_order(db, enc):
    ctx = db.begin()
    for key in ("b", "a", "c"):
        db.send(ctx, enc, "insertItem", key, key.upper())
    db.commit(ctx)
    ctx2 = db.begin()
    assert db.send(ctx2, enc, "readSeq") == [("b", "B"), ("a", "A"), ("c", "C")]
    assert db.send(ctx2, enc, "length") == 3
    db.commit(ctx2)


def test_delete_item(db, enc):
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "a", 1)
    db.send(ctx, enc, "insertItem", "b", 2)
    db.commit(ctx)
    ctx2 = db.begin()
    assert db.send(ctx2, enc, "deleteItem", "a") is True
    assert db.send(ctx2, enc, "deleteItem", "ghost") is False
    db.commit(ctx2)
    ctx3 = db.begin()
    assert db.send(ctx3, enc, "search", "a") is None
    assert db.send(ctx3, enc, "readSeq") == [("b", 2)]
    db.commit(ctx3)


def test_insert_many_spills_across_leaves(db, enc):
    ctx = db.begin()
    for i in range(40):
        db.send(ctx, enc, "insertItem", f"key{i:02d}", i)
    db.commit(ctx)
    ctx2 = db.begin()
    for i in range(40):
        assert db.send(ctx2, enc, "search", f"key{i:02d}") == i
    assert db.send(ctx2, enc, "length") == 40
    db.commit(ctx2)


def test_abort_insert_restores_everything(db, enc):
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "keep", 0)
    db.commit(ctx)
    ctx2 = db.begin()
    db.send(ctx2, enc, "insertItem", "drop", 1)
    db.abort(ctx2)
    ctx3 = db.begin()
    assert db.send(ctx3, enc, "search", "drop") is None
    assert db.send(ctx3, enc, "readSeq") == [("keep", 0)]
    db.commit(ctx3)


def test_open_nested_abort_compensates_insert_item():
    from repro.locking import OpenNestedLocking

    db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=64)
    enc = build_encyclopedia(db, order=4)
    ctx = db.begin()
    db.send(ctx, enc, "insertItem", "keep", 0)
    db.commit(ctx)
    ctx2 = db.begin()
    db.send(ctx2, enc, "insertItem", "drop", 1)
    db.send(ctx2, enc, "changeItem", "keep", 99)
    db.abort(ctx2)
    ctx3 = db.begin()
    assert db.send(ctx3, enc, "search", "drop") is None
    assert db.send(ctx3, enc, "search", "keep") == 0
    assert db.send(ctx3, enc, "length") == 1
    db.commit(ctx3)
