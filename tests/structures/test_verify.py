"""Tests of the structural integrity checkers."""

import pytest

from repro.oodb import ObjectDatabase
from repro.structures import build_bptree, build_encyclopedia
from repro.structures.verify import (
    verify_bptree,
    verify_encyclopedia,
    verify_linked_list,
)


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=64)


class TestVerifyBPTree:
    def test_fresh_tree_ok(self, db):
        tree = build_bptree(db, 4)
        assert verify_bptree(db, tree)

    def test_populated_tree_ok(self, db):
        tree = build_bptree(db, 3)
        ctx = db.begin()
        for i in range(40):
            db.send(ctx, tree, "insert", f"k{i:02d}", i)
        db.commit(ctx)
        report = verify_bptree(db, tree)
        assert report.ok, report.problems

    def test_blink_tree_ok(self, db):
        tree = build_bptree(db, 2, blink=True)
        ctx = db.begin()
        for i in range(20):
            db.send(ctx, tree, "insert", f"k{i:02d}", i)
        db.commit(ctx)
        assert verify_bptree(db, tree)

    def test_detects_corrupted_order(self, db):
        tree = build_bptree(db, 3)
        ctx = db.begin()
        for i in range(12):
            db.send(ctx, tree, "insert", f"k{i:02d}", i)
        db.commit(ctx)
        # sabotage: move a key where it does not belong
        leaf_oids = [o for o in db.object_ids if o.startswith("TreeLeaf")]
        last = sorted(leaf_oids)[-1]
        page = db.store.get(db.get_object(last).page_id)
        page.slots[("k", "k00x")] = "bogus"  # duplicates the low end elsewhere
        report = verify_bptree(db, tree)
        assert not report.ok

    def test_detects_broken_chain(self, db):
        tree = build_bptree(db, 2)
        ctx = db.begin()
        for i in range(10):
            db.send(ctx, tree, "insert", f"k{i}", i)
        db.commit(ctx)
        leaf_oids = sorted(o for o in db.object_ids if o.startswith("TreeLeaf"))
        first = db.store.get(db.get_object(leaf_oids[0]).page_id)
        first.slots["__next"] = leaf_oids[0]  # self-loop
        report = verify_bptree(db, tree)
        assert not report.ok
        assert any("loop" in p for p in report.problems)


class TestVerifyLinkedList:
    def test_ok_after_inserts_and_removes(self, db):
        from repro.structures import Item, LinkedList

        lst = db.create(LinkedList)
        items = [db.create(Item, f"k{i}") for i in range(4)]
        ctx = db.begin()
        for item in items:
            db.send(ctx, lst, "insert", item)
        db.send(ctx, lst, "remove", items[1])
        db.commit(ctx)
        assert verify_linked_list(db, lst)

    def test_detects_wrong_length(self, db):
        from repro.structures import Item, LinkedList

        lst = db.create(LinkedList)
        item = db.create(Item, "k")
        ctx = db.begin()
        db.send(ctx, lst, "insert", item)
        db.commit(ctx)
        db.store.get(db.get_object(lst).page_id).slots["__len"] = 7
        report = verify_linked_list(db, lst)
        assert not report.ok

    def test_detects_stale_tail(self, db):
        from repro.structures import Item, LinkedList

        lst = db.create(LinkedList)
        a, b = db.create(Item, "a"), db.create(Item, "b")
        ctx = db.begin()
        db.send(ctx, lst, "insert", a)
        db.send(ctx, lst, "insert", b)
        db.commit(ctx)
        db.store.get(db.get_object(lst).page_id).slots["__tail"] = a
        assert not verify_linked_list(db, lst)


class TestVerifyEncyclopedia:
    def test_ok_after_mixed_operations(self, db):
        enc = build_encyclopedia(db, order=4)
        ctx = db.begin()
        for i in range(20):
            db.send(ctx, enc, "insertItem", f"k{i:02d}", i)
        db.send(ctx, enc, "deleteItem", "k05")
        db.send(ctx, enc, "changeItem", "k06", "changed")
        db.commit(ctx)
        report = verify_encyclopedia(db, enc)
        assert report.ok, report.problems

    def test_ok_after_aborts(self, db):
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=64)
        enc = build_encyclopedia(db, order=4)
        ctx = db.begin()
        for i in range(8):
            db.send(ctx, enc, "insertItem", f"keep{i}", i)
        db.commit(ctx)
        ctx2 = db.begin()
        db.send(ctx2, enc, "insertItem", "drop", 1)
        db.send(ctx2, enc, "changeItem", "keep3", "dirty")
        db.abort(ctx2)
        report = verify_encyclopedia(db, enc)
        assert report.ok, report.problems

    def test_detects_index_list_divergence(self, db):
        enc = build_encyclopedia(db, order=4)
        ctx = db.begin()
        db.send(ctx, enc, "insertItem", "a", 1)
        db.commit(ctx)
        # remove from the index behind the encyclopedia's back
        ctx2 = db.begin()
        db.send(ctx2, "EncBpTree", "delete", "a")
        db.commit(ctx2)
        report = verify_encyclopedia(db, enc)
        assert not report.ok
