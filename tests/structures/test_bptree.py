"""Unit tests for the B+ tree, in both split-propagation modes."""

import random

import pytest

from repro.core.extension import find_offending_action
from repro.oodb import ObjectDatabase
from repro.structures import build_bptree


def fresh_tree(order=4, blink=False):
    db = ObjectDatabase(page_capacity=128)
    tree = build_bptree(db, order, blink=blink)
    return db, tree


def insert_all(db, tree, pairs, label="T"):
    ctx = db.begin()
    for key, value in pairs:
        db.send(ctx, tree, "insert", key, value)
    db.commit(ctx)


def search(db, tree, key):
    ctx = db.begin()
    value = db.send(ctx, tree, "search", key)
    db.commit(ctx)
    return value


class TestBasics:
    def test_empty_tree_search(self):
        db, tree = fresh_tree()
        assert search(db, tree, "missing") is None

    def test_insert_and_search(self):
        db, tree = fresh_tree()
        insert_all(db, tree, [("b", 2), ("a", 1), ("c", 3)])
        assert search(db, tree, "a") == 1
        assert search(db, tree, "b") == 2
        assert search(db, tree, "c") == 3
        assert search(db, tree, "d") is None

    def test_overwrite_keeps_single_entry(self):
        db, tree = fresh_tree()
        insert_all(db, tree, [("a", 1), ("a", 2)])
        assert search(db, tree, "a") == 2
        ctx = db.begin()
        assert db.send(ctx, tree, "range", "a", "z") == [("a", 2)]
        db.commit(ctx)

    def test_order_validation(self):
        db = ObjectDatabase()
        with pytest.raises(Exception):
            build_bptree(db, order=1)

    def test_height_grows_with_splits(self):
        db, tree = fresh_tree(order=3)
        insert_all(db, tree, [(f"k{i:03d}", i) for i in range(30)])
        ctx = db.begin()
        assert db.send(ctx, tree, "height") >= 3
        db.commit(ctx)

    def test_all_keys_survive_many_splits(self):
        db, tree = fresh_tree(order=3)
        keys = [f"k{i:03d}" for i in range(60)]
        rng = random.Random(5)
        rng.shuffle(keys)
        insert_all(db, tree, [(k, k.upper()) for k in keys])
        for key in keys:
            assert search(db, tree, key) == key.upper()

    def test_delete(self):
        db, tree = fresh_tree(order=3)
        insert_all(db, tree, [(f"k{i}", i) for i in range(10)])
        ctx = db.begin()
        assert db.send(ctx, tree, "delete", "k3") == 3
        assert db.send(ctx, tree, "delete", "k3") is None
        db.commit(ctx)
        assert search(db, tree, "k3") is None
        assert search(db, tree, "k4") == 4

    def test_range_scan(self):
        db, tree = fresh_tree(order=3)
        insert_all(db, tree, [(f"k{i:02d}", i) for i in range(20)])
        ctx = db.begin()
        result = db.send(ctx, tree, "range", "k05", "k09")
        db.commit(ctx)
        assert result == [(f"k{i:02d}", i) for i in range(5, 10)]

    def test_range_across_leaves(self):
        db, tree = fresh_tree(order=2)
        insert_all(db, tree, [(f"k{i:02d}", i) for i in range(12)])
        ctx = db.begin()
        result = db.send(ctx, tree, "range", "k00", "k11")
        db.commit(ctx)
        assert [k for k, _ in result] == [f"k{i:02d}" for i in range(12)]


class TestBlinkMode:
    def test_blink_tree_correctness(self):
        db, tree = fresh_tree(order=3, blink=True)
        keys = [f"k{i:03d}" for i in range(40)]
        insert_all(db, tree, [(k, k) for k in keys])
        for key in keys:
            assert search(db, tree, key) == key

    def test_blink_split_produces_call_cycle(self):
        """The rearrange call runs inside the insert's call path, touching
        an ancestor's object — Definition 5's precondition (Example 3)."""
        db, tree = fresh_tree(order=2, blink=True)
        insert_all(db, tree, [(f"k{i}", i) for i in range(9)])
        assert find_offending_action(db.system) is not None

    def test_recursive_mode_has_no_call_cycle(self):
        db, tree = fresh_tree(order=2, blink=False)
        insert_all(db, tree, [(f"k{i}", i) for i in range(9)])
        assert find_offending_action(db.system) is None

    def test_blink_and_recursive_agree(self):
        pairs = [(f"k{i:02d}", i * i) for i in range(25)]
        rng = random.Random(3)
        rng.shuffle(pairs)
        db1, t1 = fresh_tree(order=3, blink=False)
        db2, t2 = fresh_tree(order=3, blink=True)
        insert_all(db1, t1, pairs)
        insert_all(db2, t2, pairs)
        for key, value in pairs:
            assert search(db1, t1, key) == value
            assert search(db2, t2, key) == value


class TestAbortSemantics:
    def test_abort_undoes_inserts_and_splits(self):
        db, tree = fresh_tree(order=3)
        insert_all(db, tree, [(f"pre{i}", i) for i in range(5)])
        ctx = db.begin()
        for i in range(10):
            db.send(ctx, tree, "insert", f"tmp{i}", i)
        db.abort(ctx)
        for i in range(10):
            assert search(db, tree, f"tmp{i}") is None
        for i in range(5):
            assert search(db, tree, f"pre{i}") == i

    def test_open_nested_abort_compensates_inserts(self):
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=128)
        tree = build_bptree(db, 3)
        insert_all(db, tree, [(f"pre{i}", i) for i in range(5)])
        ctx = db.begin()
        for i in range(10):
            db.send(ctx, tree, "insert", f"tmp{i}", i)
        db.abort(ctx)
        for i in range(10):
            assert search(db, tree, f"tmp{i}") is None
        for i in range(5):
            assert search(db, tree, f"pre{i}") == i
