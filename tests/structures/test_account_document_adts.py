"""Unit tests for accounts, documents and the Weihl-style ADTs."""

import pytest

from repro.errors import DatabaseError
from repro.oodb import ObjectDatabase
from repro.structures import (
    Account,
    Counter,
    Directory,
    FIFOQueue,
    KeySet,
    build_document,
)


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=32)


class TestAccount:
    def test_deposit_withdraw_balance(self, db):
        acct = db.create(Account, 100.0, "alice")
        ctx = db.begin()
        assert db.send(ctx, acct, "deposit", 50) == 150
        assert db.send(ctx, acct, "withdraw", 30) == 120
        assert db.send(ctx, acct, "balance") == 120
        db.commit(ctx)

    def test_overdraft_rejected(self, db):
        acct = db.create(Account, 10.0)
        ctx = db.begin()
        with pytest.raises(DatabaseError):
            db.send(ctx, acct, "withdraw", 11)
        db.abort(ctx)

    def test_negative_amounts_rejected(self, db):
        acct = db.create(Account, 10.0)
        ctx = db.begin()
        with pytest.raises(DatabaseError):
            db.send(ctx, acct, "deposit", -1)
        db.abort(ctx)
        with pytest.raises(DatabaseError):
            db.create(Account, -5.0)

    def test_state_snapshot_feeds_escrow(self, db):
        acct = db.create(Account, 75.0)
        assert db.get_object(acct).state_snapshot() == 75.0

    def test_abort_restores_balance(self, db):
        acct = db.create(Account, 100.0)
        ctx = db.begin()
        db.send(ctx, acct, "withdraw", 40)
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, acct, "balance") == 100.0

    def test_open_nested_abort_compensates(self):
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)
        acct = db.create(Account, 100.0)
        ctx = db.begin()
        db.send(ctx, acct, "deposit", 25)
        db.send(ctx, acct, "withdraw", 10)
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, acct, "balance") == 100.0
        db.commit(ctx2)


class TestDocument:
    def _doc(self, db):
        return build_document(
            db, "paper", {"intro": "one", "model": "two"}, oid="Doc"
        )

    def test_build_and_read(self, db):
        doc = self._doc(db)
        ctx = db.begin()
        assert db.send(ctx, doc, "read_section", "intro") == "one"
        assert db.send(ctx, doc, "read_all") == [("intro", "one"), ("model", "two")]
        assert db.send(ctx, doc, "section_count") == 2
        db.commit(ctx)

    def test_edit_returns_old_text(self, db):
        doc = self._doc(db)
        ctx = db.begin()
        assert db.send(ctx, doc, "edit", "intro", "new") == "one"
        assert db.send(ctx, doc, "read_section", "intro") == "new"
        db.commit(ctx)

    def test_edit_abort_restores(self, db):
        doc = self._doc(db)
        ctx = db.begin()
        db.send(ctx, doc, "edit", "intro", "scribble")
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, doc, "read_section", "intro") == "one"

    def test_append_section(self, db):
        doc = self._doc(db)
        ctx = db.begin()
        db.send(ctx, doc, "append_section", "eval", "three")
        assert db.send(ctx, doc, "section_count") == 3
        db.commit(ctx)
        ctx2 = db.begin()
        with pytest.raises(DatabaseError):
            db.send(ctx2, doc, "append_section", "eval", "dup")
        db.abort(ctx2)

    def test_unknown_section(self, db):
        doc = self._doc(db)
        ctx = db.begin()
        with pytest.raises(DatabaseError):
            db.send(ctx, doc, "read_section", "nope")
        db.abort(ctx)

    def test_different_sections_commute_same_section_conflicts(self, db):
        from repro.core.actions import Invocation
        from repro.structures.document import document_commutativity

        spec = document_commutativity()
        edit_a = Invocation("Doc", "edit", ("intro", "x"))
        edit_b = Invocation("Doc", "edit", ("model", "y"))
        assert spec.commutes(edit_a, edit_b)
        assert spec.conflicts(edit_a, Invocation("Doc", "edit", ("intro", "z")))
        assert spec.conflicts(edit_a, Invocation("Doc", "read_all"))


class TestCounter:
    def test_increment_decrement(self, db):
        counter = db.create(Counter, 5)
        ctx = db.begin()
        assert db.send(ctx, counter, "increment", 3) == 8
        assert db.send(ctx, counter, "decrement") == 7
        assert db.send(ctx, counter, "value") == 7
        db.commit(ctx)

    def test_increments_commute(self):
        from repro.core.actions import Invocation

        spec = Counter.commutativity
        assert spec.commutes(
            Invocation("C", "increment", (1,)), Invocation("C", "increment", (2,))
        )
        assert spec.conflicts(
            Invocation("C", "value"), Invocation("C", "increment", (1,))
        )


class TestQueue:
    def test_fifo_order(self, db):
        queue = db.create(FIFOQueue)
        ctx = db.begin()
        db.send(ctx, queue, "enqueue", "a")
        db.send(ctx, queue, "enqueue", "b")
        assert db.send(ctx, queue, "size") == 2
        assert db.send(ctx, queue, "dequeue") == "a"
        assert db.send(ctx, queue, "dequeue") == "b"
        db.commit(ctx)

    def test_dequeue_empty_raises(self, db):
        queue = db.create(FIFOQueue)
        ctx = db.begin()
        with pytest.raises(DatabaseError):
            db.send(ctx, queue, "dequeue")
        db.abort(ctx)

    def test_enqueue_abort_compensates(self):
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)
        queue = db.create(FIFOQueue)
        ctx = db.begin()
        db.send(ctx, queue, "enqueue", "keep")
        db.commit(ctx)
        ctx2 = db.begin()
        db.send(ctx2, queue, "enqueue", "drop")
        db.abort(ctx2)
        ctx3 = db.begin()
        assert db.send(ctx3, queue, "size") == 1
        assert db.send(ctx3, queue, "dequeue") == "keep"
        db.commit(ctx3)

    def test_state_dependent_commutativity(self, db):
        from repro.core.actions import Invocation

        spec = FIFOQueue.commutativity
        enq = Invocation("Q", "enqueue", ("x",), state=2)
        deq = Invocation("Q", "dequeue", (), state=2)
        assert spec.commutes(enq, deq)  # non-empty queue
        enq_empty = Invocation("Q", "enqueue", ("x",), state=0)
        deq_empty = Invocation("Q", "dequeue", (), state=0)
        assert spec.conflicts(enq_empty, deq_empty)


class TestDirectoryAndSet:
    def test_directory_roundtrip(self, db):
        d = db.create(Directory)
        ctx = db.begin()
        assert db.send(ctx, d, "insert", "k", "v") is None
        assert db.send(ctx, d, "lookup", "k") == "v"
        assert db.send(ctx, d, "insert", "k", "v2") == "v"
        assert db.send(ctx, d, "delete", "k") == "v2"
        assert db.send(ctx, d, "lookup", "k") is None
        db.commit(ctx)

    def test_directory_abort_restores_binding(self):
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)
        d = db.create(Directory)
        ctx = db.begin()
        db.send(ctx, d, "insert", "k", "v")
        db.commit(ctx)
        ctx2 = db.begin()
        db.send(ctx2, d, "insert", "k", "v2")
        db.send(ctx2, d, "delete", "k")
        db.abort(ctx2)
        ctx3 = db.begin()
        assert db.send(ctx3, d, "lookup", "k") == "v"
        db.commit(ctx3)

    def test_keyset(self, db):
        s = db.create(KeySet, ("a",))
        ctx = db.begin()
        assert db.send(ctx, s, "contains", "a")
        assert db.send(ctx, s, "add", "b") is True
        assert db.send(ctx, s, "add", "b") is False
        assert db.send(ctx, s, "members") == ["a", "b"]
        assert db.send(ctx, s, "remove", "a") is True
        assert db.send(ctx, s, "remove", "a") is False
        db.commit(ctx)
