"""Unit tests for the item list and items."""

import pytest

from repro.errors import EncapsulationError
from repro.oodb import ObjectDatabase
from repro.structures import Item, LinkedList


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=32)


class TestItem:
    def test_setup_and_read(self, db):
        oid = db.create(Item, "DBMS", "content")
        ctx = db.begin()
        assert db.send(ctx, oid, "read") == "content"
        assert db.send(ctx, oid, "key") == "DBMS"
        assert db.send(ctx, oid, "next") is None
        db.commit(ctx)

    def test_change_returns_old(self, db):
        oid = db.create(Item, "k", "v1")
        ctx = db.begin()
        assert db.send(ctx, oid, "change", "v2") == "v1"
        assert db.send(ctx, oid, "read") == "v2"
        db.commit(ctx)

    def test_change_abort_restores(self, db):
        oid = db.create(Item, "k", "v1")
        ctx = db.begin()
        db.send(ctx, oid, "change", "v2")
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, oid, "read") == "v1"

    def test_set_next(self, db):
        a = db.create(Item, "a")
        b = db.create(Item, "b")
        ctx = db.begin()
        assert db.send(ctx, a, "set_next", b) is None
        assert db.send(ctx, a, "next") == b
        db.commit(ctx)

    def test_item_state_is_encapsulated(self, db):
        oid = db.create(Item, "k", "v")
        with pytest.raises(EncapsulationError):
            db.get_object(oid).data["content"]


class TestLinkedList:
    def _with_items(self, db, n):
        lst = db.create(LinkedList, oid="List")
        items = [db.create(Item, f"k{i}", f"c{i}") for i in range(n)]
        ctx = db.begin()
        for item in items:
            db.send(ctx, lst, "insert", item)
        db.commit(ctx)
        return lst, items

    def test_empty_list(self, db):
        lst = db.create(LinkedList)
        ctx = db.begin()
        assert db.send(ctx, lst, "readSeq") == []
        assert db.send(ctx, lst, "length") == 0
        db.commit(ctx)

    def test_insert_and_read_seq(self, db):
        lst, items = self._with_items(db, 3)
        ctx = db.begin()
        assert db.send(ctx, lst, "readSeq") == [
            ("k0", "c0"),
            ("k1", "c1"),
            ("k2", "c2"),
        ]
        assert db.send(ctx, lst, "length") == 3
        db.commit(ctx)

    def test_remove_middle(self, db):
        lst, items = self._with_items(db, 3)
        ctx = db.begin()
        assert db.send(ctx, lst, "remove", items[1]) is True
        assert db.send(ctx, lst, "readSeq") == [("k0", "c0"), ("k2", "c2")]
        assert db.send(ctx, lst, "length") == 2
        db.commit(ctx)

    def test_remove_head_and_tail(self, db):
        lst, items = self._with_items(db, 3)
        ctx = db.begin()
        db.send(ctx, lst, "remove", items[0])
        db.send(ctx, lst, "remove", items[2])
        assert db.send(ctx, lst, "readSeq") == [("k1", "c1")]
        db.commit(ctx)
        # tail repaired: further inserts land after k1
        extra = db.create(Item, "k9", "c9")
        ctx2 = db.begin()
        db.send(ctx2, lst, "insert", extra)
        assert db.send(ctx2, lst, "readSeq") == [("k1", "c1"), ("k9", "c9")]
        db.commit(ctx2)

    def test_remove_missing_returns_false(self, db):
        lst, _ = self._with_items(db, 2)
        ghost = db.create(Item, "ghost")
        ctx = db.begin()
        assert db.send(ctx, lst, "remove", ghost) is False
        db.commit(ctx)

    def test_insert_abort_unlinks(self, db):
        lst, items = self._with_items(db, 2)
        extra = db.create(Item, "x", "X")
        ctx = db.begin()
        db.send(ctx, lst, "insert", extra)
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, lst, "length") == 2
        assert ("x", "X") not in db.send(ctx2, lst, "readSeq")
        db.commit(ctx2)
