"""The indexed lock table against a naive full-scan reference model.

The secondary indexes (by owner, by context, by requester) are an
optimization only: every bulk operation must return exactly what a single
flat dict interrogated by full scans would.  A randomized operation
sequence cross-checks the two after every step.

The second half pins the commutativity memo cache's correctness envelope:
state-carrying invocations (escrow-style snapshots) must never be answered
from the cache, the cache stays within its bound, and a disabled cache
(``commute_cache_size=0``) still answers correctly.
"""

import random

from repro.core.actions import Invocation
from repro.core.commutativity import (
    EscrowCommutativity,
    ReadWriteCommutativity,
)
from repro.core.transactions import TransactionSystem
from repro.locking.lock_table import Lock, LockTable
from repro.oodb.context import TransactionContext


class ReferenceLockTable:
    """The obviously-correct model: one dict, full scans everywhere."""

    def __init__(self):
        self._locks = {}

    def add(self, lock):
        entries = self._locks.setdefault(lock.obj, [])
        for existing in entries:
            if (
                existing.ctx is lock.ctx
                and existing.owner is lock.owner
                and existing.invocation == lock.invocation
            ):
                return
        entries.append(lock)

    def _release(self, predicate):
        released = set()
        for obj, locks in list(self._locks.items()):
            kept = [l for l in locks if not predicate(l)]
            if len(kept) != len(locks):
                released.add(obj)
                if kept:
                    self._locks[obj] = kept
                else:
                    del self._locks[obj]
        return released

    def release_owned_by(self, owner):
        return self._release(lambda l: l.owner is owner)

    def release_requested_by(self, node):
        return self._release(lambda l: l.requester is node)

    def release_transaction(self, ctx):
        return self._release(lambda l: l.ctx is ctx)

    def reown(self, owner, new_owner):
        moved = 0
        for locks in self._locks.values():
            for lock in locks:
                if lock.owner is owner:
                    if new_owner is not owner:
                        lock.owner = new_owner
                    moved += 1
        return moved

    def held_by(self, ctx):
        return [
            lock
            for locks in self._locks.values()
            for lock in locks
            if lock.ctx is ctx
        ]

    @property
    def lock_count(self):
        return sum(len(locks) for locks in self._locks.values())


def _held_fingerprint(locks):
    """A sorted, table-independent multiset digest of a lock list.

    Contexts/owners/requesters are shared objects between the two tables
    under test, so their ids are comparable; the locks themselves are not.
    """
    return sorted(
        (
            lock.obj,
            lock.invocation.obj,
            lock.invocation.method,
            lock.invocation.args,
            id(lock.ctx),
            id(lock.owner),
            -1 if lock.requester is None else id(lock.requester),
        )
        for lock in locks
    )


class TestIndexedAgainstReference:
    def _world(self, rng, n_txns=6, n_nodes_per_txn=3):
        system = TransactionSystem()
        ctxs, nodes = [], []
        for t in range(n_txns):
            ctx = TransactionContext(system.transaction(f"T{t}"))
            ctxs.append(ctx)
            nodes.append(ctx.txn.root)
            for n in range(n_nodes_per_txn):
                nodes.append(ctx.txn.root.call(f"O{t}", f"m{n}"))
        return ctxs, nodes

    def test_randomized_sequences_agree(self):
        for seed in range(20):
            rng = random.Random(seed)
            ctxs, nodes = self._world(rng)
            indexed, reference = LockTable(), ReferenceLockTable()
            # Both tables see the *same* Lock objects per side, built from
            # the same drawn parameters.
            for step in range(120):
                op = rng.choice(
                    ["add", "add", "add", "owned", "requested", "txn", "reown", "held"]
                )
                if op == "add":
                    ctx = rng.choice(ctxs)
                    params = dict(
                        obj=f"P{rng.randrange(8)}",
                        invocation=Invocation(
                            f"P{rng.randrange(8)}",
                            rng.choice(["read", "write"]),
                            (rng.randrange(4),),
                        ),
                        ctx=ctx,
                        owner=rng.choice(nodes),
                        requester=rng.choice(nodes + [None]),
                    )
                    indexed.add(Lock(**params))
                    reference.add(Lock(**params))
                elif op == "owned":
                    node = rng.choice(nodes)
                    assert indexed.release_owned_by(
                        node
                    ) == reference.release_owned_by(node), f"seed {seed} step {step}"
                elif op == "requested":
                    node = rng.choice(nodes)
                    assert indexed.release_requested_by(
                        node
                    ) == reference.release_requested_by(node)
                elif op == "txn":
                    ctx = rng.choice(ctxs)
                    assert indexed.release_transaction(
                        ctx
                    ) == reference.release_transaction(ctx)
                elif op == "reown":
                    owner = rng.choice(nodes)
                    new_owner = rng.choice(nodes)
                    assert indexed.reown(owner, new_owner) == reference.reown(
                        owner, new_owner
                    )
                elif op == "held":
                    ctx = rng.choice(ctxs)
                    assert _held_fingerprint(
                        indexed.held_by(ctx)
                    ) == _held_fingerprint(reference.held_by(ctx))
                assert indexed.lock_count == reference.lock_count
                assert set(indexed._locks) == set(reference._locks)

    def test_indexes_consistent_after_churn(self):
        """After heavy churn, every index entry points at a live lock and
        every live lock is indexed."""
        rng = random.Random(7)
        ctxs, nodes = self._world(rng)
        table = LockTable()
        for _ in range(300):
            table.add(
                Lock(
                    obj=f"P{rng.randrange(6)}",
                    invocation=Invocation(
                        f"P{rng.randrange(6)}", "write", (rng.randrange(9),)
                    ),
                    ctx=rng.choice(ctxs),
                    owner=rng.choice(nodes),
                    requester=rng.choice(nodes),
                )
            )
            if rng.random() < 0.4:
                table.release_owned_by(rng.choice(nodes))
            if rng.random() < 0.2:
                table.reown(rng.choice(nodes), rng.choice(nodes))
        live = {id(l) for locks in table._locks.values() for l in locks}
        for index, attr in (
            (table._by_owner, "owner"),
            (table._by_ctx, "ctx"),
            (table._by_requester, "requester"),
        ):
            indexed_ids = set()
            for key, locks in index.items():
                assert locks, f"empty {attr} bucket left behind"
                for lock in locks:
                    assert getattr(lock, attr) is key
                    indexed_ids.add(id(lock))
            if attr in ("owner", "ctx"):
                assert indexed_ids == live
        assert table.lock_count == len(live)


ESCROW = EscrowCommutativity(low=0.0, high=None)


def _withdraw(amount, state):
    return Invocation("acct", "withdraw", (amount,), state=state)


class TestCommuteCache:
    def test_state_dependent_verdicts_never_stale(self):
        """Two withdrawals commute under a rich snapshot and conflict under
        a poor one; a cache keyed without the snapshot would leak the first
        verdict into the second query."""
        table = LockTable()
        assert ESCROW.commutes(_withdraw(5, 100.0), _withdraw(5, 100.0))
        assert not ESCROW.commutes(_withdraw(5, 6.0), _withdraw(5, 6.0))
        for _ in range(3):  # repeated queries: any caching would show here
            assert table._commutes(
                ESCROW, _withdraw(5, 100.0), _withdraw(5, 100.0)
            )
            assert not table._commutes(
                ESCROW, _withdraw(5, 6.0), _withdraw(5, 6.0)
            )
        # state-carrying pairs must not have touched the cache at all
        assert table.commute_cache_hits == 0
        assert table.commute_cache_misses == 0

    def test_state_dependent_conflicts_through_public_api(self):
        system = TransactionSystem()
        holder = TransactionContext(system.transaction("H"))
        asker = TransactionContext(system.transaction("A"))
        table = LockTable()
        table.add(
            Lock(
                obj="acct",
                invocation=_withdraw(5, 100.0),
                ctx=holder,
                owner=holder.txn.root,
            )
        )
        # rich snapshot: commutes, no conflict
        assert not table.conflicting(asker, _withdraw(5, 100.0), ESCROW)
        # poor snapshot for the same (method, args): must conflict
        assert table.conflicting(asker, _withdraw(5, 6.0), ESCROW)
        # and again, in both orders, to catch cached staleness
        assert table.conflicting(asker, _withdraw(5, 6.0), ESCROW)
        assert not table.conflicting(asker, _withdraw(5, 100.0), ESCROW)

    def test_stateless_verdicts_are_cached_and_correct(self):
        rw = ReadWriteCommutativity()
        table = LockTable()
        read = Invocation("P", "read")
        write = Invocation("P", "write")
        assert table._commutes(rw, read, Invocation("P", "read"))
        assert table.commute_cache_misses == 1
        for _ in range(5):
            assert table._commutes(rw, read, Invocation("P", "read"))
            assert not table._commutes(rw, write, Invocation("P", "read"))
        assert table.commute_cache_hits == 9
        assert table.commute_cache_misses == 2

    def test_cache_is_bounded(self):
        table = LockTable(commute_cache_size=8)
        rw = ReadWriteCommutativity()
        for i in range(50):
            table._commutes(rw, Invocation("P", "read", (i,)), Invocation("P", "read"))
            assert len(table._commute_cache) <= 8
        assert table.commute_cache_misses == 50

    def test_cache_disabled(self):
        table = LockTable(commute_cache_size=0)
        rw = ReadWriteCommutativity()
        for _ in range(4):
            assert table._commutes(rw, Invocation("P", "read"), Invocation("P", "read"))
        assert table._commute_cache is None
        assert table.commute_cache_hits == 0
        assert table.commute_cache_misses == 0

    def test_unhashable_args_fall_back(self):
        table = LockTable()
        rw = ReadWriteCommutativity()
        ugly = Invocation("P", "read", ([1, 2],))
        for _ in range(3):
            assert table._commutes(rw, ugly, Invocation("P", "read"))
        assert table.commute_cache_hits == 0
        assert table.commute_cache_misses == 0


STATS_KEYS = {
    "acquired",
    "waits",
    "deadlocks",
    "wounds",
    "overrides",
    "lock_index_hits",
    "commute_cache_hits",
}


class TestSchedulerStats:
    def test_all_counters_initialized_up_front(self):
        """The bench harness reads stats without guards: every counter the
        locking skeleton can touch must exist (at zero) from construction —
        no lazily-created keys."""
        from repro.analysis.compare import make_scheduler

        for protocol in (
            "page-2pl",
            "closed-nested",
            "multilevel",
            "open-nested-oo",
            "optimistic-oo",
        ):
            scheduler = make_scheduler(protocol, layers={})
            missing = STATS_KEYS - scheduler.stats.keys()
            assert not missing, f"{protocol} lacks stats keys {missing}"
            assert all(
                scheduler.stats[key] == 0 for key in STATS_KEYS
            ), f"{protocol} starts with non-zero counters"
