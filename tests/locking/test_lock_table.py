"""Unit tests for the lock table and the waits-for graph."""

from repro.core.actions import Invocation
from repro.core.commutativity import ReadWriteCommutativity
from repro.core.transactions import TransactionSystem
from repro.locking.deadlock import WaitsForGraph
from repro.locking.lock_table import Lock, LockTable
from repro.oodb.context import TransactionContext


def make_ctx(label):
    system = TransactionSystem()
    return TransactionContext(system.transaction(label))


def make_lock(ctx, obj="P", method="write", owner=None):
    return Lock(
        obj=obj,
        invocation=Invocation(obj, method),
        ctx=ctx,
        owner=owner or ctx.txn.root,
    )


RW = ReadWriteCommutativity()


class TestLockTable:
    def test_add_and_conflicts(self):
        table = LockTable()
        holder = make_ctx("T1")
        requester = make_ctx("T2")
        table.add(make_lock(holder, method="write"))
        conflicts = table.conflicting(requester, Invocation("P", "read"), RW)
        assert len(conflicts) == 1

    def test_reads_are_compatible(self):
        table = LockTable()
        holder = make_ctx("T1")
        requester = make_ctx("T2")
        table.add(make_lock(holder, method="read"))
        assert not table.conflicting(requester, Invocation("P", "read"), RW)

    def test_own_locks_never_conflict(self):
        table = LockTable()
        ctx = make_ctx("T1")
        table.add(make_lock(ctx, method="write"))
        assert not table.conflicting(ctx, Invocation("P", "write"), RW)

    def test_duplicate_lock_not_added(self):
        table = LockTable()
        ctx = make_ctx("T1")
        table.add(make_lock(ctx))
        table.add(make_lock(ctx))
        assert table.lock_count == 1

    def test_release_owned_by(self):
        table = LockTable()
        ctx = make_ctx("T1")
        child = ctx.txn.root.call("O", "m")
        table.add(make_lock(ctx, obj="P1", owner=child))
        table.add(make_lock(ctx, obj="P2"))
        assert table.release_owned_by(child) == {"P1"}
        assert table.lock_count == 1
        assert table.locks_on("P1") == []

    def test_reown(self):
        table = LockTable()
        ctx = make_ctx("T1")
        child = ctx.txn.root.call("O", "m")
        table.add(make_lock(ctx, owner=child))
        assert table.reown(child, ctx.txn.root) == 1
        assert table.release_owned_by(child) == set()
        assert table.release_owned_by(ctx.txn.root) == {"P"}

    def test_release_transaction(self):
        table = LockTable()
        t1, t2 = make_ctx("T1"), make_ctx("T2")
        table.add(make_lock(t1, obj="P1"))
        table.add(make_lock(t1, obj="P2"))
        table.add(make_lock(t2, obj="P1", method="read"))
        assert table.release_transaction(t1) == {"P1", "P2"}
        assert table.lock_count == 1
        assert table.held_by(t2)
        assert not table.held_by(t1)


class TestWaitsForGraph:
    def test_no_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"B"})
        assert graph.find_cycle_through("A") is None

    def test_direct_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"B"})
        graph.set_waits("B", {"A"})
        cycle = graph.find_cycle_through("B")
        assert cycle is not None
        assert cycle[0] == cycle[-1] == "B"

    def test_long_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"B"})
        graph.set_waits("B", {"C"})
        graph.set_waits("C", {"A"})
        assert graph.find_cycle_through("C") is not None

    def test_self_edges_dropped(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"A", "B"})
        assert graph.waiting("A") == {"B"}

    def test_set_waits_replaces(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"B"})
        graph.set_waits("A", {"C"})
        assert graph.waiting("A") == {"C"}

    def test_clear(self):
        graph = WaitsForGraph()
        graph.set_waits("A", {"B"})
        graph.clear("A")
        assert graph.waiting("A") == set()
        assert graph.edges == set()
