"""The certifier's cached-prefix validation matches the batch path exactly.

``REPRO_ANALYSIS=incremental`` makes :class:`OptimisticCertifier` validate
each commit by extending a cached analysis of the committed prefix;
``batch`` re-analyzes from empty each time.  Both must make identical
accept/abort decisions on identical executions — same committed sets, same
validation/failure counts, same final oracle report — including runs where
validation failures trigger restarts (which is exactly where a stale or
badly invalidated cache would diverge).
"""

import pytest

from repro.errors import ReproError
from repro.fuzz.driver import run_cell
from repro.fuzz.generator import generate


def _run(spec, monkeypatch, engine):
    monkeypatch.setenv("REPRO_ANALYSIS", engine)
    result, report = run_cell(spec, "optimistic-oo")
    stats = result.db.scheduler.stats
    return (
        sorted(result.committed_labels),
        stats["validations"],
        stats["validation_failures"],
        report.oo_serializable,
        report.oo_constraints,
        report.conventional_constraints,
        report.description,
    )


@pytest.mark.parametrize("seed", range(12))
def test_certifier_decisions_match_batch(seed, monkeypatch):
    spec = generate(seed)
    try:
        batch = _run(spec, monkeypatch, "batch")
    except ReproError:
        pytest.skip("spec not runnable under the certifier")
    incremental = _run(spec, monkeypatch, "incremental")
    assert batch == incremental


def test_some_seed_exercises_validation_failures(monkeypatch):
    """Guard against the suite silently losing its interesting cases: at
    least one of the seeds above must produce validation failures (commit-
    time aborts), so the cache-invalidation path is actually covered."""
    monkeypatch.setenv("REPRO_ANALYSIS", "incremental")
    failures = 0
    for seed in range(12):
        spec = generate(seed)
        try:
            result, _ = run_cell(spec, "optimistic-oo")
        except ReproError:
            continue
        failures += result.db.scheduler.stats["validation_failures"]
    assert failures > 0
