"""Unit and behavioural tests for the optimistic certifier."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import TransactionAborted
from repro.locking import OptimisticCertifier
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.runtime import InterleavedExecutor, TransactionProgram


class Register(DatabaseObject):
    """A single value: get/get commutes, everything else conflicts."""

    commutativity = MatrixCommutativity({("get", "get"): True})

    def setup(self, initial=0):
        self.data["v"] = initial

    @dbmethod
    def get(self):
        return self.data["v"]

    @dbmethod(update=True, compensation=lambda args, result: ("set", (result,)))
    def set(self, value):
        old = self.data["v"]
        self.data["v"] = value
        return old


def test_reads_never_block_on_uncommitted_writes():
    """Readers proceed optimistically past a held write lock."""
    db = ObjectDatabase(scheduler=OptimisticCertifier())
    reg = db.create(Register)
    t1 = db.begin("T1")
    db.send(t1, reg, "set", 1)  # write lock held until T1 commits
    t2 = db.begin("T2")
    assert db.send(t2, reg, "get") == 1  # a locking protocol would block
    db.commit(t2)
    db.commit(t1)
    assert db.scheduler.stats["validations"] == 2
    assert db.scheduler.stats["validation_failures"] == 0


def test_conflicting_writes_still_lock():
    """Writes keep open-nested semantic locks: no dirty writes, so
    compensation stays sound."""
    db = ObjectDatabase(scheduler=OptimisticCertifier())
    reg = db.create(Register)
    t1 = db.begin("T1")
    db.send(t1, reg, "set", 1)
    t2 = db.begin("T2")
    with pytest.raises(TransactionAborted):  # would block; no executor
        db.send(t2, reg, "set", 2)


def test_validation_rejects_inconsistent_reads():
    """A transaction whose reads contradict the committed order aborts."""
    db = ObjectDatabase(scheduler=OptimisticCertifier())
    a = db.create(Register, 0, oid="A")
    b = db.create(Register, 0, oid="B")
    t1 = db.begin("T1")
    t2 = db.begin("T2")
    db.send(t1, a, "get")      # T1 reads a before T2 writes it: T1 < T2
    db.send(t2, b, "get")      # T2 reads b before T1 writes it: T2 < T1
    db.send(t1, b, "set", 4)
    db.send(t2, a, "set", 3)
    db.commit(t2)
    with pytest.raises(TransactionAborted):
        db.commit(t1)
    assert db.scheduler.stats["validation_failures"] == 1


def test_aborted_validation_rolls_back():
    db = ObjectDatabase(scheduler=OptimisticCertifier())
    a = db.create(Register, 0, oid="A")
    b = db.create(Register, 0, oid="B")
    t1 = db.begin("T1")
    t2 = db.begin("T2")
    db.send(t1, a, "get")
    db.send(t2, b, "get")
    db.send(t1, b, "set", 4)
    db.send(t2, a, "set", 3)
    db.commit(t2)
    try:
        db.commit(t1)
    except TransactionAborted:
        db.abort(t1)
    check = db.begin("chk")
    assert db.send(check, a, "get") == 3  # T2's committed write survives
    assert db.send(check, b, "get") == 0  # T1's write compensated away
    db.commit(check)


def test_executor_restarts_validation_victims():
    db = ObjectDatabase(scheduler=OptimisticCertifier())
    reg = db.create(Register)

    def bump(api):
        value = api.send(reg, "get")
        api.work(2)
        api.send(reg, "set", value + 1)

    programs = [TransactionProgram(f"T{i}", bump) for i in range(4)]
    result = InterleavedExecutor(db, seed=5).run(programs)
    assert result.all_committed
    ctx = db.begin()
    # every committed increment took effect exactly once (lost updates
    # would make the final value smaller)
    assert db.send(ctx, reg, "get") == 4
    db.commit(ctx)


def test_page_level_integrity_still_enforced():
    """Short page locks keep method bursts atomic even optimistically."""
    db = ObjectDatabase(scheduler=OptimisticCertifier(), page_capacity=64)
    from repro.structures import build_encyclopedia

    enc = build_encyclopedia(db, order=4)

    def inserter(i):
        def body(api):
            api.send(enc, "insertItem", f"k{i}", i)

        return body

    result = InterleavedExecutor(db, seed=2).run(
        [TransactionProgram(f"I{i}", inserter(i)) for i in range(6)]
    )
    assert result.all_committed
    from repro.structures.verify import verify_encyclopedia

    assert verify_encyclopedia(db, enc).ok
