"""Behavioural tests of the four protocols under controlled interleavings.

These tests drive two transactions by hand (no executor): the scheduler's
single-threaded fallback environment turns any would-block into an abort,
which lets us assert exactly *when* each protocol blocks.
"""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import TransactionAborted
from repro.locking import (
    ClosedNestedLocking,
    MultiLevelLocking,
    OpenNestedLocking,
    PageLocking2PL,
)
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod


class Keyed(DatabaseObject):
    """A keyed container: operations on different keys commute."""

    commutativity = MatrixCommutativity(
        {
            ("get", "get"): True,
            ("get", "put"): lambda a, b: a.args[0] != b.args[0],
            ("put", "put"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "get"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "put"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "erase"): lambda a, b: a.args[0] != b.args[0],
        }
    )

    def setup(self):
        pass

    @dbmethod
    def get(self, key):
        return self.data.get(key)

    @dbmethod(
        update=True,
        compensation=lambda args, result: (
            ("put", (args[0], result)) if result is not None else ("erase", (args[0],))
        ),
    )
    def put(self, key, value):
        old = self.data.get(key)
        self.data[key] = value
        return old

    @dbmethod(update=True)
    def erase(self, key):
        if key in self.data:
            del self.data[key]


def fresh(scheduler):
    db = ObjectDatabase(scheduler=scheduler, page_capacity=32)
    oid = db.create(Keyed, oid="K")
    return db, oid


class TestPage2PL:
    def test_conflicting_page_access_blocks(self):
        db, oid = fresh(PageLocking2PL())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        # different keys, but the same page: conventional 2PL blocks
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "b", 2)

    def test_locks_released_at_commit(self):
        db, oid = fresh(PageLocking2PL())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        db.commit(t1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)  # proceeds now
        db.commit(t2)

    def test_reads_share(self):
        db, oid = fresh(PageLocking2PL())
        t1 = db.begin("T1")
        db.send(t1, oid, "get", "a")
        t2 = db.begin("T2")
        db.send(t2, oid, "get", "a")  # shared read locks coexist
        db.commit(t1)
        db.commit(t2)

    def test_abort_releases_locks(self):
        db, oid = fresh(PageLocking2PL())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        db.abort(t1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)
        db.commit(t2)


class TestClosedNested:
    def test_same_inter_transaction_behaviour_as_2pl(self):
        db, oid = fresh(ClosedNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "b", 2)


class TestOpenNested:
    def test_commuting_methods_interleave_despite_page_conflict(self):
        db, oid = fresh(OpenNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)  # page locks already released
        db.commit(t1)
        db.commit(t2)

    def test_conflicting_methods_block_until_commit(self):
        db, oid = fresh(OpenNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "a", 2)  # same key: semantic conflict

    def test_semantic_lock_released_at_commit(self):
        db, oid = fresh(OpenNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        db.commit(t1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "a", 2)
        db.commit(t2)

    def test_read_semantic_lock_allows_other_keys(self):
        db, oid = fresh(OpenNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "get", "a")
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "a", 9)  # conflicts with T1's get("a")

    def test_abort_after_interleaving_compensates(self):
        db, oid = fresh(OpenNestedLocking())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)
        db.abort(t1)  # compensating erase("a") despite T2's page writes
        db.commit(t2)
        t3 = db.begin("T3")
        assert db.send(t3, oid, "get", "a") is None
        assert db.send(t3, oid, "get", "b") == 2
        db.commit(t3)


class TestMultiLevel:
    def _scheduler(self):
        return MultiLevelLocking({"K": 1, "Page": 0})

    def test_layered_access_behaves_like_open_nested(self):
        db, oid = fresh(self._scheduler())
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        db.send(t2, oid, "put", "b", 2)  # page locks released at method end
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "a", 9)  # semantic conflict at level 1
        db.commit(t1)

    def test_unassigned_objects_are_conservative(self):
        scheduler = MultiLevelLocking({"Page": 0})  # K has no layer
        db, oid = fresh(scheduler)
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        t2 = db.begin("T2")
        # Semantic K-lock would commute, but K is unassigned, so its page
        # locks were acquired with root ownership: held until T1 commits.
        with pytest.raises(TransactionAborted):
            db.send(t2, oid, "put", "b", 2)

    def test_level_of_uses_longest_prefix(self):
        scheduler = MultiLevelLocking({"Enc": 3, "EncBpTree": 2})
        assert scheduler.level_of("EncBpTree") == 2
        assert scheduler.level_of("Enc") == 3
        assert scheduler.level_of("Elsewhere") is None
        assert scheduler.level_of("EncBpTree′") == 2  # virtual objects map back


class TestSchedulerStats:
    def test_stats_count_acquisitions(self):
        scheduler = OpenNestedLocking()
        db, oid = fresh(scheduler)
        t1 = db.begin("T1")
        db.send(t1, oid, "put", "a", 1)
        db.commit(t1)
        assert scheduler.stats["acquired"] > 0
        assert scheduler.stats["waits"] == 0
