"""Unit tests for the key-space samplers."""

import collections

import pytest

from repro.workloads.keys import HotSetSampler, UniformSampler, ZipfSampler, key_name


def test_key_name_format():
    assert key_name(7) == "k000007"
    assert key_name(7) < key_name(10)  # lexicographic == numeric order


class TestUniform:
    def test_samples_within_universe(self):
        sampler = UniformSampler(10, seed=1)
        for _ in range(100):
            assert 0 <= int(sampler.sample()[1:]) < 10

    def test_deterministic(self):
        a = UniformSampler(100, seed=5)
        b = UniformSampler(100, seed=5)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipf:
    def test_theta_zero_is_roughly_uniform(self):
        sampler = ZipfSampler(4, theta=0.0, seed=2)
        counts = collections.Counter(sampler.sample() for _ in range(4000))
        assert len(counts) == 4
        assert max(counts.values()) < 2 * min(counts.values())

    def test_high_theta_is_skewed(self):
        sampler = ZipfSampler(100, theta=1.2, seed=3)
        counts = collections.Counter(sampler.sample() for _ in range(5000))
        top_share = counts.most_common(1)[0][1] / 5000
        assert top_share > 0.15  # the hottest key dominates

    def test_deterministic(self):
        a = ZipfSampler(50, theta=0.8, seed=9)
        b = ZipfSampler(50, theta=0.8, seed=9)
        assert [a.sample() for _ in range(30)] == [b.sample() for _ in range(30)]

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-1)


class TestHotSet:
    def test_hot_set_dominates(self):
        sampler = HotSetSampler(100, hot_fraction=0.1, hot_probability=0.9, seed=4)
        hot_hits = sum(
            1 for _ in range(2000) if int(sampler.sample()[1:]) < 10
        )
        assert hot_hits > 1600

    def test_full_hot_fraction(self):
        sampler = HotSetSampler(10, hot_fraction=1.0, hot_probability=0.5, seed=0)
        for _ in range(50):
            assert 0 <= int(sampler.sample()[1:]) < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSetSampler(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotSetSampler(10, hot_probability=1.5)
