"""Integration tests of the three workload builders under real execution."""

import functools

import pytest

from repro.analysis import compare_protocols, metrics_from_result
from repro.analysis.compare import run_one
from repro.oodb import ObjectDatabase
from repro.runtime import InterleavedExecutor, run_sequential
from repro.workloads import (
    BankingWorkload,
    EditingWorkload,
    EncyclopediaWorkload,
    build_banking_workload,
    build_editing_workload,
    build_encyclopedia_workload,
    encyclopedia_layers,
)
from repro.workloads.editing_wl import editing_layers


class TestEncyclopediaWorkload:
    def test_build_is_deterministic(self):
        spec = EncyclopediaWorkload(n_transactions=4, seed=7)
        db1, db2 = ObjectDatabase(), ObjectDatabase()
        _, progs1 = build_encyclopedia_workload(db1, spec)
        _, progs2 = build_encyclopedia_workload(db2, spec)
        assert [p.label for p in progs1] == [p.label for p in progs2]

    def test_preload_visible(self):
        spec = EncyclopediaWorkload(n_transactions=0, preload=5)
        db = ObjectDatabase()
        enc, _ = build_encyclopedia_workload(db, spec)
        ctx = db.begin()
        assert db.send(ctx, enc, "length") == 5
        db.commit(ctx)

    def test_sequential_run_commits_all(self):
        spec = EncyclopediaWorkload(n_transactions=5, ops_per_transaction=2, seed=3)
        db = ObjectDatabase()
        _, programs = build_encyclopedia_workload(db, spec)
        outcomes = run_sequential(db, programs)
        assert all(o.committed for o in outcomes)

    def test_interleaved_run_under_every_protocol(self):
        spec = EncyclopediaWorkload(
            n_transactions=6, ops_per_transaction=2, preload=20, seed=11
        )
        for protocol in ("page-2pl", "closed-nested", "multilevel", "open-nested-oo"):
            result = run_one(
                functools.partial(build_encyclopedia_workload, spec=spec),
                protocol,
                layers=encyclopedia_layers(),
                seed=1,
            )
            assert result.all_committed, protocol

    def test_invalid_mix_rejected(self):
        spec = EncyclopediaWorkload(p_insert=0, p_search=0, p_change=0, p_readseq=0)
        with pytest.raises(ValueError):
            spec.mix()


class TestBankingWorkload:
    def test_money_conserved_under_contention(self):
        spec = BankingWorkload(n_accounts=4, n_transactions=10, seed=2)
        db = ObjectDatabase()
        from repro.locking import OpenNestedLocking

        db = ObjectDatabase(scheduler=OpenNestedLocking())
        accounts, programs = build_banking_workload(db, spec)
        result = InterleavedExecutor(db, seed=5).run(programs)
        assert result.all_committed
        ctx = db.begin()
        total = sum(db.send(ctx, a, "balance") for a in accounts)
        db.commit(ctx)
        assert total == pytest.approx(spec.n_accounts * spec.initial_balance)

    def test_deterministic_programs(self):
        spec = BankingWorkload(seed=9)
        db1, db2 = ObjectDatabase(), ObjectDatabase()
        _, p1 = build_banking_workload(db1, spec)
        _, p2 = build_banking_workload(db2, spec)
        assert [p.label for p in p1] == [p.label for p in p2]


class TestEditingWorkload:
    def test_disjoint_authors_commute(self):
        spec = EditingWorkload(
            n_sections=8, n_authors=4, edits_per_author=2, think_ticks=5, seed=0
        )
        result = run_one(
            functools.partial(build_editing_workload, spec=spec),
            "open-nested-oo",
            seed=0,
        )
        assert result.all_committed
        metrics = metrics_from_result(result)
        assert metrics.deadlocks == 0

    def test_document_state_after_run(self):
        spec = EditingWorkload(n_sections=4, n_authors=2, edits_per_author=1, seed=3)
        db = ObjectDatabase()
        doc, programs = build_editing_workload(db, spec)
        run_sequential(db, programs)
        ctx = db.begin()
        texts = dict(db.send(ctx, doc, "read_all"))
        db.commit(ctx)
        assert any(text.startswith("by A") for text in texts.values())


class TestCompareHarness:
    def test_compare_protocols_covers_all(self):
        spec = EncyclopediaWorkload(
            n_transactions=4, ops_per_transaction=2, preload=10, seed=6
        )
        comparison = compare_protocols(
            functools.partial(build_encyclopedia_workload, spec=spec),
            layers=encyclopedia_layers(),
            seeds=(0,),
        )
        assert set(comparison.rows) == {
            "page-2pl",
            "closed-nested",
            "multilevel",
            "open-nested-oo",
        }
        for metrics in comparison.rows.values():
            assert metrics.committed == 4

    def test_closed_nested_equals_2pl(self):
        spec = EditingWorkload(n_authors=3, n_sections=6, think_ticks=4, seed=1)
        comparison = compare_protocols(
            functools.partial(build_editing_workload, spec=spec),
            layers=editing_layers(),
            protocols=("page-2pl", "closed-nested"),
            seeds=(0, 1),
        )
        flat = comparison.rows["page-2pl"]
        closed = comparison.rows["closed-nested"]
        # Moss-style closed nesting isolates only top-level transactions:
        # inter-transaction behaviour matches flat 2PL exactly.
        assert flat.makespan == closed.makespan
        assert flat.lock_waits == closed.lock_waits

    def test_open_nested_beats_2pl_on_editing(self):
        spec = EditingWorkload(
            n_sections=8, n_authors=4, edits_per_author=3, think_ticks=12, seed=1
        )
        comparison = compare_protocols(
            functools.partial(build_editing_workload, spec=spec),
            layers=editing_layers(),
            protocols=("page-2pl", "open-nested-oo"),
            seeds=(0, 1),
        )
        assert (
            comparison.rows["open-nested-oo"].throughput
            > comparison.rows["page-2pl"].throughput
        )
