"""Tests for metrics, conflict statistics and reporting."""

import functools

from repro.analysis import (
    RunMetrics,
    conflict_statistics,
    metrics_from_result,
    render_table,
)
from repro.analysis.compare import run_one
from repro.analysis.conflicts import count_conventional_pairs
from repro.analysis.reporting import render_kv
from repro.core import analyze_system
from repro.core.transactions import TransactionSystem
from repro.oodb import ObjectDatabase
from repro.runtime import InterleavedExecutor, TransactionProgram
from repro.scenarios import (
    encyclopedia_registry,
    scenario_commuting_inserts,
    scenario_same_key_conflict,
)
from repro.structures import build_encyclopedia
from repro.workloads import EncyclopediaWorkload, build_encyclopedia_workload


class TestRenderTable:
    def test_columns_aligned(self):
        table = render_table(["name", "v"], [["long-name", 1], ["x", 100]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) >= len("long-name") for line in lines[2:])

    def test_title_first(self):
        assert render_table(["a"], [], title="T").splitlines()[0] == "T"

    def test_render_kv(self):
        text = render_kv([("key", 1), ("longer", "x")], title="facts")
        assert "facts" in text
        assert "key    : 1" in text


class TestMetrics:
    def _result(self):
        db = ObjectDatabase()
        oid = build_encyclopedia(db, order=8)

        def body(api):
            api.send(oid, "insertItem", "a", 1)

        return InterleavedExecutor(db, seed=0).run(
            [TransactionProgram("T1", body)]
        )

    def test_metrics_fields(self):
        metrics = metrics_from_result(self._result(), protocol="none")
        assert metrics.committed == 1
        assert metrics.gave_up == 0
        assert metrics.throughput > 0
        assert metrics.deadlocks == 0
        assert len(metrics.row()) == len(RunMetrics.headers())


class TestConflictStatistics:
    def test_commuting_scenario_full_reduction(self):
        scenario = scenario_commuting_inserts()
        stats = conflict_statistics(scenario.system, scenario.registry)
        assert stats.conventional_top_constraints == 1
        assert stats.oo_top_constraints == 0
        assert stats.constraint_reduction == 1.0
        assert stats.oo_serializable and stats.conventional_serializable

    def test_same_key_scenario_no_reduction(self):
        scenario = scenario_same_key_conflict()
        stats = conflict_statistics(scenario.system, scenario.registry)
        assert stats.conventional_top_constraints == 1
        assert stats.oo_top_constraints == 1
        assert stats.constraint_reduction == 0.0

    def test_count_conventional_pairs(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        t1.call("P", "write")
        t2.call("P", "write")
        t2.call("P", "read")
        assert count_conventional_pairs(system) == 2  # w/w and w/r

    def test_committed_only_filter(self):
        scenario = scenario_same_key_conflict()
        stats = conflict_statistics(
            scenario.system, scenario.registry, committed_only={"T3"}
        )
        assert stats.conventional_top_constraints == 0
        assert stats.oo_top_constraints == 0

    def test_statistics_from_executed_workload(self):
        spec = EncyclopediaWorkload(
            n_transactions=4, ops_per_transaction=2, preload=10, seed=5
        )
        result = run_one(
            functools.partial(build_encyclopedia_workload, spec=spec),
            "open-nested-oo",
            seed=0,
        )
        stats = conflict_statistics(
            result.db.system,
            result.db.commutativity_registry(),
            committed_only=result.committed_labels | {"preload"},
        )
        # semantic reasoning can only drop constraints
        assert stats.oo_top_constraints <= stats.conventional_top_constraints
        assert len(stats.row()) == len(stats.headers())
