"""Tests for the parameter-sweep driver."""

import functools

from repro.analysis.sweep import sweep, sweep_rows
from repro.workloads import (
    EncyclopediaWorkload,
    build_encyclopedia_workload,
    encyclopedia_layers,
)


def factory(mpl):
    spec = EncyclopediaWorkload(
        n_transactions=mpl, ops_per_transaction=2, preload=10, seed=3
    )
    return functools.partial(build_encyclopedia_workload, spec=spec)


def test_sweep_shape():
    results = sweep(
        factory,
        (2, 3),
        protocols=("page-2pl", "open-nested-oo"),
        layers=encyclopedia_layers(),
        seeds=(0,),
    )
    assert set(results) == {2, 3}
    for mpl, per_protocol in results.items():
        assert set(per_protocol) == {"page-2pl", "open-nested-oo"}
        for metrics in per_protocol.values():
            assert metrics.committed == mpl


def test_sweep_rows_pivot():
    results = sweep(
        factory,
        (2,),
        protocols=("page-2pl",),
        layers=encyclopedia_layers(),
        seeds=(0,),
    )
    headers, rows = sweep_rows(results, metric="committed", fmt="{}")
    assert headers == ["value", "page-2pl"]
    assert rows == [[2, 2]]


def test_sweep_rows_formats_floats():
    results = sweep(
        factory,
        (2,),
        protocols=("page-2pl",),
        layers=encyclopedia_layers(),
        seeds=(0,),
    )
    _, rows = sweep_rows(results, metric="throughput", fmt="{:.1f}")
    assert isinstance(rows[0][1], str) and "." in rows[0][1]
