"""Direct unit tests for the fault plans: occurrence counting, arming,
round-trips — the plan layer alone, no executor or database attached."""

import pytest

from repro.errors import SimulatedCrash
from repro.faults import (
    CRASH_SITES,
    RECOVERY_SITES,
    SERVICE_FAULT_SITES,
    FaultPlan,
    ServiceFaultPlan,
)


class TestCrashSites:
    def test_counting_plan_never_crashes_and_tallies_every_site(self):
        plan = FaultPlan.counting()
        for site in CRASH_SITES:
            for _ in range(3):
                plan.hit(site)
        assert plan.counts == {site: 3 for site in CRASH_SITES}
        assert not plan.crashed

    def test_crash_fires_at_exactly_the_armed_occurrence(self):
        plan = FaultPlan.crash_plan("page-write.after", 2)
        plan.hit("page-write.after")  # occurrence 0
        plan.hit("page-write.after")  # occurrence 1
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.hit("page-write.after")  # occurrence 2 - armed
        assert excinfo.value.site == "page-write.after"
        assert plan.crashed

    def test_other_sites_do_not_trip_the_armed_one(self):
        plan = FaultPlan.crash_plan("commit.before", 0)
        plan.hit("page-write.before")
        plan.hit("subcommit.after")
        assert not plan.crashed
        with pytest.raises(SimulatedCrash):
            plan.hit("commit.before")

    def test_every_hit_after_the_crash_keeps_raising(self):
        # Once the system is dead, nothing downstream may proceed.
        plan = FaultPlan.crash_plan("commit.after", 0)
        with pytest.raises(SimulatedCrash):
            plan.hit("commit.after")
        with pytest.raises(SimulatedCrash):
            plan.hit("page-write.before")
        with pytest.raises(SimulatedCrash):
            plan.hit("rollback.step")


class TestTransientAndWakeups:
    def test_transient_dispatch_fires_on_armed_occurrences_only(self):
        plan = FaultPlan(transient_at=frozenset({1, 3}))
        fired = [plan.transient() for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert plan.counts["transient.dispatch"] == 5

    def test_transient_sites_are_counted_independently(self):
        plan = FaultPlan(transient_at=frozenset({0}))
        assert plan.transient("alpha") is True
        # Different site name, own counter: its occurrence 0 also fires.
        assert plan.transient("beta") is True
        assert plan.transient("alpha") is False
        assert plan.counts == {"transient.alpha": 2, "transient.beta": 1}

    def test_dropped_wakeups_fire_on_armed_occurrences_only(self):
        plan = FaultPlan(drop_wakeups_at=frozenset({0, 2}))
        dropped = [plan.drop_wakeup() for _ in range(4)]
        assert dropped == [True, False, True, False]
        assert plan.counts["wakeup"] == 4


class TestConstruction:
    CENSUS = {
        "page-write.before": 10,
        "page-write.after": 10,
        "commit.before": 4,
        "transient.dispatch": 12,
        "wakeup": 6,
    }

    def test_from_census_is_deterministic_in_the_seed(self):
        a = FaultPlan.from_census(7, self.CENSUS)
        b = FaultPlan.from_census(7, self.CENSUS)
        assert a.to_dict() == b.to_dict()
        assert a.crash_site in self.CENSUS
        assert 0 <= a.crash_at < self.CENSUS[a.crash_site]

    def test_from_census_respects_an_explicit_site(self):
        plan = FaultPlan.from_census(3, self.CENSUS, site="commit.before")
        assert plan.crash_site == "commit.before"
        assert 0 <= plan.crash_at < 4

    def test_from_census_returns_none_when_site_never_hit(self):
        assert FaultPlan.from_census(0, {}, site="commit.before") is None
        # Recovery-only sites are never primary crash candidates.
        census = {site: 5 for site in RECOVERY_SITES}
        assert FaultPlan.from_census(0, census) is None

    def test_round_trip_and_rearm_reset_counters(self):
        plan = FaultPlan.crash_plan("page-write.after", 1)
        plan.hit("page-write.after")
        assert plan.counts
        replay = plan.rearm()
        assert replay.counts == {}
        assert replay.to_dict() == plan.to_dict()
        assert FaultPlan.from_dict(plan.to_dict()).crash_at == 1

    def test_describe_mentions_the_armed_faults(self):
        assert "counting" in FaultPlan.counting().describe()
        plan = FaultPlan(
            crash_site="commit.before",
            crash_at=2,
            transient_at=frozenset({4}),
            drop_wakeups_at=frozenset({1}),
        )
        text = plan.describe()
        assert "commit.before#2" in text
        assert "transient@[4]" in text
        assert "drop-wakeup@[1]" in text


class TestServiceFaultPlan:
    def test_sites_cover_the_service_fault_alphabet(self):
        assert SERVICE_FAULT_SITES == (
            "client.slow",
            "client.stall",
            "client.disconnect",
            "arrival.burst",
        )

    def test_consultations_fire_on_armed_occurrences_only(self):
        plan = ServiceFaultPlan(
            slow_at=frozenset({1}),
            stall_at=frozenset({0}),
            disconnect_at=frozenset({2}),
            burst_at=frozenset(),
        )
        assert [plan.slow_client() for _ in range(3)] == [False, True, False]
        assert [plan.stall_session() for _ in range(2)] == [True, False]
        assert [plan.drop_connection() for _ in range(3)] == [
            False, False, True,
        ]
        assert plan.burst() is False
        assert plan.counts == {
            "client.slow": 3,
            "client.stall": 2,
            "client.disconnect": 3,
            "arrival.burst": 1,
        }

    def test_from_seed_is_deterministic_and_bounded(self):
        a = ServiceFaultPlan.from_seed(11, 20)
        b = ServiceFaultPlan.from_seed(11, 20)
        assert a.to_dict() == b.to_dict()
        for armed in (a.slow_at, a.stall_at, a.disconnect_at, a.burst_at):
            assert all(0 <= n < 20 for n in armed)

    def test_distinct_seeds_give_distinct_plans(self):
        plans = {
            repr(sorted(ServiceFaultPlan.from_seed(seed, 50).to_dict().items()))
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_none_is_unarmed_and_round_trip_rearms(self):
        assert not ServiceFaultPlan.none().armed
        plan = ServiceFaultPlan.from_seed(5, 30)
        plan.slow_client()
        replay = plan.rearm()
        assert replay.counts == {}
        assert replay.to_dict() == plan.to_dict()

    def test_describe_lists_armed_sites(self):
        assert ServiceFaultPlan.none().describe() == "no service faults"
        plan = ServiceFaultPlan(
            stall_at=frozenset({3}), burst_at=frozenset({0})
        )
        text = plan.describe()
        assert "stall@[3]" in text and "burst@[0]" in text
