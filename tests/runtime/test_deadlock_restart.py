"""Deadlock-victim restart under open nesting.

Two transactions take two fully-conflicting objects in opposite orders, so
one run of the interleaved executor must produce a lock-wait cycle.  The
wound-wait resolver kills a victim whose first send already completed as an
open subtransaction — its compensation must actually execute during the
abort — and the victim's restart must commit, leaving a committed history
the oracle still accepts.
"""

import pytest

from repro.analysis.compare import make_scheduler
from repro.fuzz import check_history, strictness_for
from repro.fuzz.generator import (
    MethodPlan,
    ObjectSpec,
    ProgramSpec,
    WorkloadSpec,
    build_workload,
)
from repro.oodb.database import ObjectDatabase
from repro.runtime.executor import InterleavedExecutor


def _object(name: str) -> ObjectSpec:
    # An empty matrix makes every method pair conflict (the safe default of
    # the fuzz commutativity spec) — including u0 against itself.
    return ObjectSpec(
        name=name,
        layer=0,
        methods=[
            MethodPlan(
                name="u0",
                plan=[["write", 0]],
                update=True,
                register_compensation=True,
            ),
            MethodPlan(
                name="c_u0",
                plan=[["write", 0]],
                update=True,
                register_compensation=False,
            ),
        ],
        matrix={},
    )


def _workload(seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        seed=seed,
        key_space=4,
        objects=[_object("L0O0"), _object("L0O1")],
        programs=[
            ProgramSpec(
                label="T0",
                ops=[
                    ["send", "L0O0", "u0", 0, 1],
                    ["work", 3],
                    ["send", "L0O1", "u0", 0, 1],
                ],
            ),
            ProgramSpec(
                label="T1",
                ops=[
                    ["send", "L0O1", "u0", 0, 1],
                    ["work", 3],
                    ["send", "L0O0", "u0", 0, 1],
                ],
            ),
        ],
    )


def _run(seed: int):
    spec = _workload(seed)
    db = ObjectDatabase(
        scheduler=make_scheduler("open-nested-oo", spec.layers()),
        page_capacity=32,
    )
    _, programs = build_workload(db, spec)
    result = InterleavedExecutor(db, seed=seed).run(programs)
    return db, result


def _deadlocked_run():
    for seed in range(10):
        db, result = _run(seed)
        if db.scheduler.stats.get("deadlocks", 0) > 0:
            return db, result
    pytest.fail("no interleaving produced a deadlock in 10 executor seeds")


def test_victim_restarts_compensates_and_commits():
    db, result = _deadlocked_run()
    # the victim was aborted at least once and retried to commit
    assert result.total_restarts >= 1
    assert any(o.attempts > 1 for o in result.outcomes)
    assert result.all_committed
    # the aborted attempt's completed open subtransaction was compensated
    methods = {a.method for a in db.system.all_actions()}
    assert "c_u0" in methods
    # and the surviving committed history passes the oracle
    report = check_history(
        result, strict_cross_object=strictness_for("open-nested-oo")
    )
    assert not report.violation, report.description
    assert report.committed == 2


def test_restart_reaches_commit_even_under_strict_criterion():
    """Both objects are fully conflicting, so the committed projection is
    serial at every object — the strict closure must agree too."""
    _, result = _deadlocked_run()
    report = check_history(result, strict_cross_object=True)
    assert not report.violation, report.description
