"""Lost-wakeup tolerance and the explicit ``gave_up`` outcome flag.

The executor's ``wake_keys`` may have its notification swallowed by fault
injection (a lost wakeup); the controller's sweep must still complete the
run.  Separately, a worker that exhausts its restart budget is marked
``gave_up`` — a *liveness* outcome that must stay distinguishable from
"uncommitted because the system crashed mid-run".
"""

from repro.core.commutativity import MatrixCommutativity
from repro.faults import FaultPlan
from repro.fuzz.oracle import check_history
from repro.locking import PageLocking2PL
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.oodb.wal import WriteAheadLog
from repro.runtime import InterleavedExecutor, TransactionProgram


class Cell(DatabaseObject):
    commutativity = MatrixCommutativity({("put", "put"): False})

    def setup(self):
        self.data["v"] = 0

    @dbmethod(update=True)
    def put(self, value):
        self.data["v"] = value


def put_program(label, oid, value, max_restarts=20):
    def body(api):
        api.send(oid, "put", value)
        api.work(2)
        api.send(oid, "put", value + 1)

    return TransactionProgram(label, body, max_restarts=max_restarts)


class TestLostWakeups:
    def test_dropped_wakeups_do_not_strand_blocked_workers(self):
        plan = FaultPlan(drop_wakeups_at=frozenset(range(10_000)))
        db = ObjectDatabase(scheduler=PageLocking2PL(), page_capacity=16)
        oid = db.create(Cell, oid="C")
        executor = InterleavedExecutor(db, seed=3, faults=plan)
        result = executor.run(
            [put_program(f"T{i}", oid, 10 * i) for i in range(3)]
        )
        # contention on one page means wakeups were actually swallowed
        assert plan.counts.get("wakeup", 0) > 0
        assert result.all_committed

    def test_no_drops_means_no_sweep_needed(self):
        db = ObjectDatabase(scheduler=PageLocking2PL(), page_capacity=16)
        oid = db.create(Cell, oid="C")
        executor = InterleavedExecutor(db, seed=3)
        result = executor.run(
            [put_program(f"T{i}", oid, 10 * i) for i in range(3)]
        )
        assert result.all_committed


class TestGaveUpFlag:
    def test_exhausted_restarts_set_gave_up(self):
        # every top-level dispatch fails transiently: the worker can never
        # commit and must give up after max_restarts + 1 attempts
        plan = FaultPlan(transient_at=frozenset(range(10_000)))
        db = ObjectDatabase(scheduler=PageLocking2PL(), page_capacity=16)
        oid = db.create(Cell, oid="C")
        executor = InterleavedExecutor(db, seed=0, faults=plan)
        result = executor.run([put_program("T", oid, 1, max_restarts=2)])
        (outcome,) = result.outcomes
        assert outcome.gave_up
        assert not outcome.committed
        assert outcome.attempts == 3
        assert result.gave_up == [outcome]
        assert check_history(result).gave_up == 1

    def test_crash_is_not_gave_up(self):
        # uncommitted because the system died, not because retries ran out
        plan = FaultPlan.crash_plan("commit.before", 0)
        db = ObjectDatabase(
            scheduler=PageLocking2PL(),
            page_capacity=16,
            wal=WriteAheadLog(),
            faults=plan,
        )
        oid = db.create(Cell, oid="C")
        executor = InterleavedExecutor(db, seed=0, faults=plan)
        result = executor.run([put_program("T", oid, 1)])
        assert result.crashed
        (outcome,) = result.outcomes
        assert not outcome.committed
        assert not outcome.gave_up
        assert result.gave_up == []
