"""Deadlines on the logical clock, hang detection at join time, and the
policy-driven deterministic restart backoff."""

import random
import threading

import pytest

from repro.analysis.compare import make_scheduler
from repro.errors import DeadlineExceeded, SimulationError, TransactionAborted
from repro.fuzz.generator import (
    MethodPlan,
    ObjectSpec,
    ProgramSpec,
    WorkloadSpec,
    build_workload,
)
from repro.oodb.database import ObjectDatabase
from repro.runtime.executor import (
    InterleavedExecutor,
    RetryPolicy,
    _Worker,
)
from repro.runtime.program import TransactionProgram


def _object(name: str) -> ObjectSpec:
    # Empty matrix = every method pair conflicts (the safe fuzz default).
    return ObjectSpec(
        name=name,
        layer=0,
        methods=[
            MethodPlan(
                name="u0",
                plan=[["write", 0]],
                update=True,
                register_compensation=True,
            ),
            MethodPlan(
                name="c_u0",
                plan=[["write", 0]],
                update=True,
                register_compensation=False,
            ),
        ],
        matrix={},
    )


def _contended_workload(seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        seed=seed,
        key_space=4,
        objects=[_object("L0O0"), _object("L0O1")],
        programs=[
            ProgramSpec(
                label="T0",
                ops=[
                    ["send", "L0O0", "u0", 0, 1],
                    ["work", 3],
                    ["send", "L0O1", "u0", 0, 1],
                ],
            ),
            ProgramSpec(
                label="T1",
                ops=[
                    ["send", "L0O1", "u0", 0, 1],
                    ["work", 3],
                    ["send", "L0O0", "u0", 0, 1],
                ],
            ),
        ],
    )


def _fresh_db(spec: WorkloadSpec, protocol: str = "open-nested-oo"):
    db = ObjectDatabase(
        scheduler=make_scheduler(protocol, spec.layers()), page_capacity=32
    )
    _, programs = build_workload(db, spec)
    return db, programs


class TestDeadlines:
    def test_deadline_exceeded_maps_onto_gave_up(self):
        db, programs = _fresh_db(_contended_workload(0))
        # T0 gets a deadline it cannot possibly meet; T1 runs free.
        programs[0].deadline_tick = 2
        result = InterleavedExecutor(db, seed=0).run(programs)
        victim = next(o for o in result.outcomes if o.label == "T0")
        assert victim.deadline_exceeded and victim.gave_up
        assert not victim.committed and victim.final_ctx is None
        assert result.deadline_exceeded == [victim]
        assert victim in result.gave_up
        assert "T0" not in result.committed_labels

    def test_deadline_victim_releases_its_locks(self):
        # The survivor must still commit: the victim's abort ran and freed
        # the fully-conflicting objects (DeadlineExceeded is an abort).
        db, programs = _fresh_db(_contended_workload(0))
        programs[0].deadline_tick = 2
        result = InterleavedExecutor(db, seed=0).run(programs)
        survivor = next(o for o in result.outcomes if o.label == "T1")
        assert survivor.committed

    def test_deadline_gave_up_is_counted_in_metrics(self):
        db, programs = _fresh_db(_contended_workload(0))
        programs[0].deadline_tick = 2
        InterleavedExecutor(db, seed=0).run(programs)
        counter = db.metrics.get("executor_deadline_gave_up_total")
        assert counter is not None and counter.value == 1

    def test_generous_deadline_still_commits(self):
        db, programs = _fresh_db(_contended_workload(0))
        for program in programs:
            program.deadline_tick = 100_000
        result = InterleavedExecutor(db, seed=0).run(programs)
        assert result.all_committed
        assert result.deadline_exceeded == []

    def test_no_deadline_by_default(self):
        assert TransactionProgram("T", lambda api: None).deadline_tick is None

    def test_deadline_exceeded_is_a_transaction_abort(self):
        # It must flow through the existing abort machinery (rollback,
        # compensation, lock release), not through error handling.
        assert issubclass(DeadlineExceeded, TransactionAborted)
        exc = DeadlineExceeded("T9", 42)
        assert exc.deadline_tick == 42
        assert "42" in str(exc)

    def test_deadline_applies_on_later_runs_of_a_persistent_executor(self):
        # Service engines reuse one executor; now is monotonic across
        # run() calls, so an absolute deadline from a past epoch is
        # already expired for a later batch.
        db, programs = _fresh_db(_contended_workload(0))
        executor = InterleavedExecutor(db, seed=0)
        first = executor.run([programs[0]])
        assert first.all_committed
        stale = TransactionProgram(
            "stale", lambda api: api.send("L0O1", "u0", 0, 1),
            deadline_tick=max(1, executor.now - 1),
        )
        result = executor.run([stale])
        assert result.outcomes[0].deadline_exceeded
        assert result.outcomes[0].attempts == 0  # never even started


class TestRetryPolicy:
    def test_default_policy_reproduces_the_historical_backoff_stream(self):
        # The pinned fuzz baseline depends on this exact draw sequence:
        # delay = 1 + randrange(min(2**(attempt+1), 64)) from the
        # executor's own RNG.
        policy = RetryPolicy()
        for seed in range(5):
            a, b = random.Random(seed), random.Random(seed)
            for attempt in range(10):
                expected = 1 + b.randrange(min(2 ** (attempt + 1), 64))
                assert policy.delay_for(attempt, a) == expected

    def test_delay_honours_base_and_cap(self):
        policy = RetryPolicy(base=3, cap=5)
        rng = random.Random(0)
        for attempt in range(8):
            delay = policy.delay_for(attempt, rng)
            assert 1 <= delay <= 5

    def test_round_trip(self):
        policy = RetryPolicy(base=4, cap=32)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert RetryPolicy.from_dict(None) == RetryPolicy()

    def test_restarting_runs_replay_byte_identically(self):
        # Retries draw jitter from the executor's seeded RNG, so a rerun
        # with the same seeds reproduces attempts and outcomes exactly.
        def run_once(seed):
            db, programs = _fresh_db(_contended_workload(seed))
            result = InterleavedExecutor(db, seed=seed).run(programs)
            return [
                (o.label, o.attempts, o.committed) for o in result.outcomes
            ], result.makespan

        for seed in range(6):
            assert run_once(seed) == run_once(seed)

    def test_custom_policy_changes_the_schedule_deterministically(self):
        def run_once(policy):
            db, programs = _fresh_db(_contended_workload(1))
            executor = InterleavedExecutor(db, seed=1, retry_policy=policy)
            return executor.run(programs).makespan

        eager = RetryPolicy(base=2, cap=2)
        patient = RetryPolicy(base=2, cap=64)
        assert run_once(eager) == run_once(eager)
        assert run_once(patient) == run_once(patient)


class TestHangDetection:
    def test_join_timeout_marks_the_worker_hung_instead_of_swallowing(self):
        db = ObjectDatabase(
            scheduler=make_scheduler("page-2pl", 1), page_capacity=32
        )
        executor = InterleavedExecutor(db, seed=0, join_timeout=0.05)
        program = TransactionProgram("stuck", lambda api: None)
        worker = _Worker(executor, program)
        release = threading.Event()
        # Fabricate a worker whose thread never finishes: the join must
        # time out and *report* the hang, not block forever or drop it.
        worker.thread = threading.Thread(
            target=release.wait, name="txn-stuck", daemon=True
        )
        worker.thread.start()
        executor._workers = [worker]
        try:
            hung = executor._join_workers()
            assert hung == [worker]
            assert worker.outcome.hung and worker.outcome.gave_up
            assert not worker.outcome.committed
            assert worker.outcome.final_ctx is None
            assert isinstance(worker.outcome.error, SimulationError)
            assert "did not stop" in str(worker.outcome.error)
            counter = db.metrics.get("executor_hung_workers_total")
            assert counter is not None and counter.value == 1
        finally:
            release.set()
            worker.thread.join(5)

    def test_healthy_workers_join_without_being_marked(self):
        db, programs = _fresh_db(_contended_workload(0))
        executor = InterleavedExecutor(db, seed=0, join_timeout=30.0)
        result = executor.run(programs)
        assert result.hung == []
        assert db.metrics.get("executor_hung_workers_total") is None

    def test_hung_outcome_surfaces_in_execution_result(self):
        from repro.runtime.executor import ExecutionResult, WorkerOutcome

        ok = WorkerOutcome(
            program=TransactionProgram("ok", lambda api: None), committed=True
        )
        hung = WorkerOutcome(
            program=TransactionProgram("bad", lambda api: None),
            hung=True,
            gave_up=True,
        )
        result = ExecutionResult(
            outcomes=[ok, hung], makespan=1, scheduler_stats={}, db=None
        )
        assert result.hung == [hung]
        assert hung in result.gave_up
        assert not result.all_committed
