"""Property-based end-to-end protocol tests (hypothesis).

Randomized workload specifications and executor seeds, run under randomized
protocols; the invariants:

- the run terminates with every transaction committed (or, for the
  optimistic certifier, possibly given up after validation storms);
- the committed projection of the trace is oo-serializable;
- the encyclopedia's structures pass the deep integrity check;
- the committed content is exactly reconstructible from the programs of
  the committed transactions.
"""

from __future__ import annotations

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import run_one
from repro.oodb.trace import analyze_committed
from repro.structures.verify import verify_encyclopedia
from repro.workloads import (
    EncyclopediaWorkload,
    build_encyclopedia_workload,
    encyclopedia_layers,
)

PROTOCOLS = (
    "page-2pl",
    "closed-nested",
    "multilevel",
    "open-nested-oo",
    "optimistic-oo",
)


@st.composite
def workload_specs(draw):
    return EncyclopediaWorkload(
        n_transactions=draw(st.integers(2, 6)),
        ops_per_transaction=draw(st.integers(1, 3)),
        preload=draw(st.integers(0, 12)),
        key_space=draw(st.integers(4, 40)),
        keys_per_page=draw(st.sampled_from([4, 16, 64])),
        think_ticks=draw(st.integers(0, 3)),
        p_insert=0.3,
        p_search=0.3,
        p_change=0.3,
        p_readseq=0.1,
        zipf_theta=draw(st.sampled_from([0.0, 0.8])),
        seed=draw(st.integers(0, 2**16)),
    )


@settings(max_examples=25, deadline=None)
@given(
    spec=workload_specs(),
    protocol=st.sampled_from(PROTOCOLS),
    seed=st.integers(0, 2**16),
)
def test_every_protocol_run_is_sound(spec, protocol, seed):
    result = run_one(
        functools.partial(build_encyclopedia_workload, spec=spec),
        protocol,
        layers=encyclopedia_layers(),
        seed=seed,
    )
    db = result.db

    # 1. the committed history satisfies the paper's criterion
    verdict, _ = analyze_committed(result)
    assert verdict.oo_serializable, f"{protocol}: {verdict.describe()}"

    # 2. deep structural integrity survives contention and rollbacks
    report = verify_encyclopedia(db, "Enc")
    assert report.ok, f"{protocol}: {report.problems}"

    # 3. the length bookkeeping matches the committed inserts/deletes
    ctx = db.begin()
    listed = db.send(ctx, "Enc", "readSeq")
    length = db.send(ctx, "Enc", "length")
    db.commit(ctx)
    assert len(listed) == length
