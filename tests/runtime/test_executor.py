"""Tests of the interleaved executor: determinism, blocking, deadlocks,
restarts and end-state consistency."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.locking import OpenNestedLocking, PageLocking2PL
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.runtime import (
    InterleavedExecutor,
    TransactionProgram,
    run_sequential,
)
from repro.structures import Account, build_encyclopedia


class Keyed(DatabaseObject):
    commutativity = MatrixCommutativity(
        {
            ("get", "get"): True,
            ("get", "put"): lambda a, b: a.args[0] != b.args[0],
            ("put", "put"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "get"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "put"): lambda a, b: a.args[0] != b.args[0],
            ("erase", "erase"): lambda a, b: a.args[0] != b.args[0],
        }
    )

    def setup(self):
        pass

    @dbmethod
    def get(self, key):
        return self.data.get(key)

    @dbmethod(
        update=True,
        compensation=lambda args, result: (
            ("put", (args[0], result)) if result is not None else ("erase", (args[0],))
        ),
    )
    def put(self, key, value):
        old = self.data.get(key)
        self.data[key] = value
        return old

    @dbmethod(update=True)
    def erase(self, key):
        if key in self.data:
            del self.data[key]


def writer_program(label, oid, key, value, think=0):
    def body(api):
        api.send(oid, "put", key, value)
        if think:
            api.work(think)
        api.send(oid, "get", key)

    return TransactionProgram(label, body)


class TestSequential:
    def test_run_sequential_commits_everything(self):
        db = ObjectDatabase()
        oid = db.create(Keyed)
        outcomes = run_sequential(
            db, [writer_program(f"T{i}", oid, f"k{i}", i) for i in range(3)]
        )
        assert all(o.committed for o in outcomes)
        ctx = db.begin()
        for i in range(3):
            assert db.send(ctx, oid, "get", f"k{i}") == i
        db.commit(ctx)


class TestInterleaved:
    def test_empty_run(self):
        db = ObjectDatabase(scheduler=OpenNestedLocking())
        result = InterleavedExecutor(db).run([])
        assert result.outcomes == [] and result.makespan == 0

    def test_all_commit_with_open_nesting(self):
        db = ObjectDatabase(scheduler=OpenNestedLocking())
        oid = db.create(Keyed)
        programs = [writer_program(f"T{i}", oid, f"k{i}", i, think=2) for i in range(5)]
        result = InterleavedExecutor(db, seed=3).run(programs)
        assert result.all_committed
        assert result.makespan > 0
        ctx = db.begin()
        for i in range(5):
            assert db.send(ctx, oid, "get", f"k{i}") == i
        db.commit(ctx)

    def test_determinism_same_seed(self):
        def run_once(seed):
            db = ObjectDatabase(scheduler=PageLocking2PL())
            oid = db.create(Keyed)
            programs = [
                writer_program(f"T{i}", oid, f"k{i % 2}", i, think=1)
                for i in range(4)
            ]
            result = InterleavedExecutor(db, seed=seed).run(programs)
            return (
                result.makespan,
                result.total_restarts,
                sorted(result.committed_labels),
            )

        assert run_once(11) == run_once(11)

    def test_different_seeds_vary_interleavings(self):
        # the seed shuffles the within-round execution order, so traces
        # (the seq order of primitive actions) differ across seeds
        def trace(seed):
            db = ObjectDatabase(scheduler=PageLocking2PL())
            oid = db.create(Keyed)
            programs = [
                writer_program(f"T{i}", oid, f"k{i}", i, think=3) for i in range(4)
            ]
            InterleavedExecutor(db, seed=seed).run(programs)
            primitives = sorted(
                (a for a in db.system.all_actions() if a.is_primitive),
                key=lambda a: (a.seq, a.aid),
            )
            return tuple((a.top, a.aid) for a in primitives)

        traces = {trace(seed) for seed in range(6)}
        assert len(traces) > 1

    def test_2pl_blocks_but_completes(self):
        db = ObjectDatabase(scheduler=PageLocking2PL())
        oid = db.create(Keyed)
        programs = [writer_program(f"T{i}", oid, f"k{i}", i, think=2) for i in range(4)]
        result = InterleavedExecutor(db, seed=1).run(programs)
        assert result.all_committed
        assert db.scheduler.stats["waits"] > 0  # same page: writers queue

    def test_deadlock_victims_restart_and_finish(self):
        db = ObjectDatabase(scheduler=PageLocking2PL())
        a = db.create(Keyed, oid="A")
        b = db.create(Keyed, oid="B")

        def crosser(label, first, second):
            def body(api):
                api.send(first, "put", "x", label)
                api.work(4)
                api.send(second, "put", "x", label)

            return TransactionProgram(label, body)

        programs = [crosser("T1", a, b), crosser("T2", b, a)]
        result = InterleavedExecutor(db, seed=0).run(programs)
        assert result.all_committed
        assert result.total_restarts >= 1
        assert db.scheduler.stats["deadlocks"] >= 1

    def test_worker_error_is_surfaced_and_locks_released(self):
        db = ObjectDatabase(scheduler=PageLocking2PL())
        oid = db.create(Keyed)

        def buggy(api):
            api.send(oid, "put", "k", 1)
            raise ValueError("application bug")

        programs = [
            TransactionProgram("BUG", buggy),
            writer_program("OK", oid, "other", 2, think=1),
        ]
        with pytest.raises(ValueError, match="application bug"):
            InterleavedExecutor(db, seed=0).run(programs)
        # the buggy transaction's locks were released by the forced abort;
        # the healthy transaction committed and released too
        assert db.scheduler.table.lock_count == 0

    def test_wait_ticks_accounted(self):
        db = ObjectDatabase(scheduler=PageLocking2PL())
        oid = db.create(Keyed)
        programs = [
            writer_program("T1", oid, "a", 1, think=5),
            writer_program("T2", oid, "b", 2, think=5),
        ]
        result = InterleavedExecutor(db, seed=2).run(programs)
        total_waits = sum(
            o.final_ctx.stats.wait_ticks for o in result.committed if o.final_ctx
        )
        assert total_waits > 0


class TestEndStateConsistency:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_accounts_conserve_money(self, seed):
        db = ObjectDatabase(scheduler=OpenNestedLocking())
        accounts = [db.create(Account, 100.0) for _ in range(4)]

        def transfer(label, src, dst, amount):
            def body(api):
                api.send(src, "withdraw", amount)
                api.work(2)
                api.send(dst, "deposit", amount)

            return TransactionProgram(label, body)

        programs = [
            transfer(f"X{i}", accounts[i % 4], accounts[(i + 1) % 4], 10)
            for i in range(8)
        ]
        result = InterleavedExecutor(db, seed=seed).run(programs)
        assert result.all_committed
        ctx = db.begin()
        total = sum(db.send(ctx, acct, "balance") for acct in accounts)
        db.commit(ctx)
        assert total == 400.0

    @pytest.mark.parametrize("seed", [0, 5])
    def test_encyclopedia_under_contention(self, seed):
        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=64)
        enc = build_encyclopedia(db, order=4)

        def inserter(i):
            def body(api):
                api.send(enc, "insertItem", f"key{i:02d}", i)

            return TransactionProgram(f"I{i}", body)

        result = InterleavedExecutor(db, seed=seed).run(
            [inserter(i) for i in range(8)]
        )
        assert result.all_committed
        ctx = db.begin()
        assert db.send(ctx, enc, "length") == 8
        for i in range(8):
            assert db.send(ctx, enc, "search", f"key{i:02d}") == i
        db.commit(ctx)
