"""End-to-end protocol guarantees: the theorem tests.

Every concurrency-control protocol in the library claims to admit only
(oo-)serializable executions.  These tests run randomized workloads under
each protocol, project the trace onto the committed transactions, run the
full Definition 10-16 analysis on it — and demand a clean verdict — plus
deep structural integrity of the data structures afterwards.
"""

import functools

import pytest

from repro.analysis.compare import run_one
from repro.core.serializability import conventional_serializable
from repro.oodb.trace import analyze_committed, committed_projection
from repro.structures.verify import verify_encyclopedia
from repro.workloads import (
    EncyclopediaWorkload,
    IndexWorkload,
    build_encyclopedia_workload,
    build_index_workload,
    encyclopedia_layers,
    index_layers,
)

PROTOCOLS = ("page-2pl", "closed-nested", "multilevel", "open-nested-oo", "optimistic-oo")


def _enc_spec(seed):
    return EncyclopediaWorkload(
        n_transactions=6,
        ops_per_transaction=3,
        preload=12,
        key_space=30,
        keys_per_page=8,
        think_ticks=1,
        p_insert=0.3,
        p_search=0.3,
        p_change=0.3,
        p_readseq=0.1,
        seed=seed,
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", [0, 3])
def test_committed_projection_is_oo_serializable(protocol, seed):
    result = run_one(
        functools.partial(build_encyclopedia_workload, spec=_enc_spec(seed)),
        protocol,
        layers=encyclopedia_layers(),
        seed=seed,
    )
    assert result.all_committed or protocol == "optimistic-oo"
    verdict, _ = analyze_committed(result)
    assert verdict.oo_serializable, (
        f"{protocol} produced a non-oo-serializable committed history "
        f"(seed {seed}): {verdict.describe()}"
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_structures_intact_after_contended_run(protocol):
    result = run_one(
        functools.partial(build_encyclopedia_workload, spec=_enc_spec(7)),
        protocol,
        layers=encyclopedia_layers(),
        seed=7,
    )
    db = result.db
    report = verify_encyclopedia(db, "Enc")
    assert report.ok, f"{protocol}: {report.problems}"


@pytest.mark.parametrize("protocol", ("page-2pl", "closed-nested"))
def test_page_protocols_give_conventionally_serializable_histories(protocol):
    """Strict page-level 2PL admits only conflict-serializable schedules;
    the committed projection must pass even the conventional test."""
    spec = IndexWorkload(
        n_transactions=6,
        ops_per_transaction=3,
        p_insert=0.4,
        preload=20,
        key_space=60,
        keys_per_page=8,
        seed=5,
    )
    result = run_one(
        functools.partial(build_index_workload, spec=spec),
        protocol,
        layers=index_layers(),
        seed=2,
    )
    projection = committed_projection(result.db.system, result.committed_labels)
    assert conventional_serializable(projection)


def test_committed_projection_contents():
    result = run_one(
        functools.partial(build_encyclopedia_workload, spec=_enc_spec(1)),
        "open-nested-oo",
        layers=encyclopedia_layers(),
        seed=1,
    )
    projection = committed_projection(result.db.system, result.committed_labels)
    assert {t.label for t in projection.tops} == result.committed_labels
    # shared nodes: the projection sees the same seq stamps
    original = {id(a) for a in result.db.system.all_actions()}
    assert all(id(a) in original for a in projection.all_actions())
