"""Admission control in isolation: quotas, token buckets, explicit
rejections, and the request lifecycle bookkeeping."""

from repro.obs import MetricsRegistry
from repro.service.admission import (
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECT_SHUTTING_DOWN,
    REJECT_UNKNOWN_TENANT,
    Admission,
    AdmissionController,
    Rejection,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(0.0, 1, clock=FakeClock())
        assert all(bucket.try_take() for _ in range(100))
        assert bucket.seconds_until_token() == 0.0

    def test_burst_then_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.advance(0.5)  # one token at 2/s
        assert bucket.try_take() is True
        assert bucket.try_take() is False

    def test_retry_hint_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.try_take()
        assert abs(bucket.seconds_until_token() - 0.25) < 1e-9
        clock.advance(0.1)
        assert abs(bucket.seconds_until_token() - 0.15) < 1e-9

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        taken = sum(bucket.try_take() for _ in range(5))
        assert taken == 2


class TestAdmissionDecisions:
    def test_admits_within_quota(self):
        controller = AdmissionController(clock=FakeClock())
        ticket = controller.admit("a")
        assert isinstance(ticket, Admission) and ticket.admitted

    def test_queue_full_is_an_explicit_rejection_with_a_hint(self):
        quota = TenantQuota(max_inflight=2, max_queue_depth=2)
        controller = AdmissionController(quota, clock=FakeClock())
        assert isinstance(controller.admit("a"), Admission)
        assert isinstance(controller.admit("a"), Admission)
        rejection = controller.admit("a")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == REJECT_QUEUE_FULL
        assert rejection.retry_after_ms > 0
        assert not rejection.admitted

    def test_rate_limit_rejects_with_time_to_next_token(self):
        clock = FakeClock()
        quota = TenantQuota(
            max_inflight=100, max_queue_depth=100, rate=2.0, burst=1
        )
        controller = AdmissionController(quota, clock=clock)
        assert isinstance(controller.admit("a"), Admission)
        rejection = controller.admit("a")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == REJECT_RATE_LIMITED
        assert rejection.retry_after_ms == 500  # 1 token at 2/s
        clock.advance(0.5)
        assert isinstance(controller.admit("a"), Admission)

    def test_closed_registration_rejects_unknown_tenants(self):
        controller = AdmissionController(
            open_registration=False, clock=FakeClock()
        )
        controller.register("known")
        assert isinstance(controller.admit("known"), Admission)
        rejection = controller.admit("stranger")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == REJECT_UNKNOWN_TENANT

    def test_open_registration_applies_the_default_quota(self):
        quota = TenantQuota(max_inflight=1, max_queue_depth=1)
        controller = AdmissionController(quota, clock=FakeClock())
        assert isinstance(controller.admit("fresh"), Admission)
        assert isinstance(controller.admit("fresh"), Rejection)
        assert controller.quota_for("fresh") == quota

    def test_drain_rejects_everything(self):
        controller = AdmissionController(clock=FakeClock())
        controller.drain()
        rejection = controller.admit("a")
        assert isinstance(rejection, Rejection)
        assert rejection.reason == REJECT_SHUTTING_DOWN

    def test_tenants_are_isolated(self):
        quota = TenantQuota(max_inflight=1, max_queue_depth=1)
        controller = AdmissionController(quota, clock=FakeClock())
        assert isinstance(controller.admit("a"), Admission)
        assert isinstance(controller.admit("a"), Rejection)
        # Tenant b's budget is untouched by a's overload.
        assert isinstance(controller.admit("b"), Admission)


class TestLifecycle:
    def test_started_and_finished_release_slots(self):
        quota = TenantQuota(max_inflight=1, max_queue_depth=1)
        controller = AdmissionController(quota, clock=FakeClock())
        assert isinstance(controller.admit("a"), Admission)
        assert isinstance(controller.admit("a"), Rejection)
        controller.started("a")
        # queued freed but executing holds the inflight budget
        snap = controller.snapshot()["a"]
        assert (snap["queued"], snap["executing"]) == (0, 1)
        controller.finished("a")
        assert isinstance(controller.admit("a"), Admission)

    def test_finished_without_execution_releases_the_queue_slot(self):
        quota = TenantQuota(max_inflight=1, max_queue_depth=1)
        controller = AdmissionController(quota, clock=FakeClock())
        assert isinstance(controller.admit("a"), Admission)
        controller.finished("a", executed=False)
        snap = controller.snapshot()["a"]
        assert (snap["queued"], snap["executing"]) == (0, 0)

    def test_metrics_count_admissions_and_rejections_per_tenant(self):
        registry = MetricsRegistry()
        quota = TenantQuota(max_inflight=1, max_queue_depth=1)
        controller = AdmissionController(
            quota, clock=FakeClock(), metrics=registry
        )
        controller.admit("a")
        controller.admit("a")
        flat = registry.as_dict()
        assert flat['service_admitted_total{tenant="a"}'] == 1
        assert (
            flat['service_rejected_total{reason="queue-full",tenant="a"}'] == 1
        )
        assert flat['service_queue_depth{tenant="a"}'] == 1

    def test_quota_round_trip(self):
        quota = TenantQuota(max_inflight=7, rate=2.5, burst=9, max_queue_depth=3)
        assert TenantQuota.from_dict(quota.to_dict()) == quota
        assert TenantQuota.from_dict(None) == TenantQuota()
