"""The in-process service engine: batching, settlement, deadlines, the
ledger audit, and oracle certification of the whole service run."""

import threading

import pytest

from repro.oodb.session import DatabaseSession
from repro.service.admission import TenantQuota
from repro.service.service import (
    InvalidRequest,
    ServiceConfig,
    TransactionService,
)


def _ops(svc: TransactionService, n: int = 1, key: int = 0) -> list:
    oid = svc.oids[-1]
    method = svc.catalog()[oid]["methods"][0]
    return [["send", oid, method, key, 1] for _ in range(n)]


@pytest.fixture
def svc():
    service = TransactionService(
        ServiceConfig(protocol="page-2pl", seed=3, batch_max=4)
    )
    service.start()
    yield service
    service.stop()


class TestSessions:
    def test_labels_are_tenant_scoped_and_unique(self):
        session = DatabaseSession(None, "acme")
        labels = {session.next_label("txn") for _ in range(100)}
        assert len(labels) == 100
        assert all(label.startswith("acme/txn#") for label in labels)

    def test_ledger_tracks_admission_to_settlement(self):
        session = DatabaseSession(None, "acme")
        session.admit("acme/t#0")
        session.admit("acme/t#1")
        assert session.unsettled == {"acme/t#0", "acme/t#1"}
        session.settle("acme/t#0", "committed")
        session.settle("acme/t#1", "gave_up")
        assert session.unsettled == set()
        assert session.committed_labels == {"acme/t#0"}
        assert session.counts() == {
            "committed": 1, "gave_up": 1, "in_flight": 0,
        }


class TestEngine:
    def test_concurrent_tenants_commit_and_certify(self, svc):
        statuses = []

        def client(tenant):
            for i in range(4):
                response = svc.submit(tenant, _ops(svc, key=i % 3))
                statuses.append(response["status"])

        threads = [
            threading.Thread(target=client, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses.count("committed") == 12
        svc.stop()
        assert svc.audit()["ok"]
        assert not svc.certify().violation

    def test_response_carries_label_attempts_and_txn(self, svc):
        response = svc.submit("acme", _ops(svc), label="job")
        assert response["status"] == "committed"
        assert response["label"].startswith("acme/job#")
        assert response["attempts"] >= 1
        assert response["txn"].startswith("acme/job#")

    def test_impossible_deadline_maps_to_gave_up(self, svc):
        # Executing needs at least a few ticks; a 1-tick budget cannot.
        response = svc.submit(
            "acme", _ops(svc, n=3) + [["work", 50]], deadline_ticks=1
        )
        assert response["status"] == "gave_up"
        assert response["reason"] == "deadline"
        assert svc.audit()["ok"]  # still settled, nothing lost

    def test_invalid_requests_never_cost_admission(self, svc):
        for ops in ([], [["send", "ghost", "m", 0, 1]], [["frob", 1]],
                    [["send", svc.oids[0], "no_such_method", 0, 1]]):
            response = svc.submit("acme", ops)
            assert response["status"] == "invalid", ops
        assert "acme" not in svc.admission.snapshot()

    def test_validate_ops_raises_with_a_reason(self, svc):
        with pytest.raises(InvalidRequest, match="unknown object"):
            svc.validate_ops([["send", "ghost", "m", 0, 1]])

    def test_overload_rejections_are_explicit(self):
        quota = TenantQuota(max_inflight=1, max_queue_depth=1, rate=0.0)
        service = TransactionService(
            ServiceConfig(protocol="page-2pl", seed=3),
            quotas={"tight": quota},
        )
        # Engine not started: admitted requests sit in the queue, so the
        # second submit must see queue-full backpressure immediately.
        rejected, pending = service.submit_async("tight", _ops(service))
        assert rejected is None and pending is not None
        rejected2, _ = service.submit_async("tight", _ops(service))
        assert rejected2 is not None
        assert rejected2["status"] == "rejected"
        assert rejected2["reason"] == "queue-full"
        assert rejected2["retry_after_ms"] > 0
        # Drain cleanly: start the engine, settle the one admitted request.
        service.start()
        assert pending.wait(30)["status"] == "committed"
        service.stop()
        assert service.audit()["ok"]

    def test_global_queue_capacity_defends_the_engine(self):
        service = TransactionService(
            ServiceConfig(protocol="page-2pl", seed=3, queue_capacity=2)
        )
        pendings = []
        for i in range(2):
            rejected, pending = service.submit_async(f"t{i}", _ops(service))
            assert rejected is None
            pendings.append(pending)
        rejected, _ = service.submit_async("t9", _ops(service))
        assert rejected is not None and rejected["reason"] == "queue-full"
        service.start()
        for pending in pendings:
            assert pending.wait(30)["status"] == "committed"
        service.stop()

    def test_stop_drains_admitted_requests(self):
        service = TransactionService(
            ServiceConfig(protocol="page-2pl", seed=3)
        )
        results = []
        for i in range(3):
            rejected, pending = service.submit_async("acme", _ops(service))
            assert rejected is None
            results.append(pending)
        service.start()
        service.stop()
        # Graceful stop executes everything already admitted.
        assert [p.wait(1)["status"] for p in results] == ["committed"] * 3
        assert service.audit()["ok"]
        # And new submissions after the drain are explicitly refused.
        response = service.submit("acme", _ops(service))
        assert response["status"] == "rejected"
        assert response["reason"] == "shutting-down"

    def test_per_tenant_stats_combine_admission_and_outcomes(self, svc):
        svc.submit("acme", _ops(svc))
        stats = svc.stats()["acme"]
        assert stats["outcomes"]["committed"] == 1
        assert stats["admission"]["executing"] == 0


class TestAudit:
    def test_audit_flags_fabricated_lost_commit(self, svc):
        svc.submit("acme", _ops(svc))
        session = svc.session("acme")
        # Claim a commit the engine never executed: the audit must see it.
        session.settle("acme/phantom#0", "committed")
        audit = svc.audit()
        assert not audit["ok"]
        assert audit["lost_commits"] == ["acme/phantom#0"]

    def test_audit_flags_unsettled_admissions(self, svc):
        svc.session("acme").admit("acme/limbo#0")
        audit = svc.audit()
        assert not audit["ok"]
        assert audit["unsettled"] == ["acme/limbo#0"]

    def test_history_result_covers_every_settled_outcome(self, svc):
        for i in range(3):
            svc.submit("acme", _ops(svc, key=i))
        result = svc.history_result()
        assert len(result.outcomes) == 3
        assert len(result.committed_labels) == 3

    def test_certification_uses_protocol_strictness(self):
        from repro.fuzz.oracle import strictness_for

        for protocol in ("page-2pl", "open-nested-oo"):
            service = TransactionService(
                ServiceConfig(protocol=protocol, seed=3)
            ).start()
            service.submit("a", _ops(service))
            service.stop()
            report = service.certify()
            assert not report.violation
            # sanity: strictness helper agrees with the commit-duration set
            assert strictness_for(protocol) == (protocol != "open-nested-oo")
