"""The continuous service audit: per-batch online certification.

Every committed batch is fed to an :class:`OnlineCertifier` in commit
order, so ``certify()`` answers from the running certifier instead of
re-deriving the fixpoint — and the certification lag gauge proves the
audit never falls behind the history.
"""

import threading

import pytest

from repro.fuzz.oracle import check_history, strictness_for
from repro.service.admission import TenantQuota
from repro.service.service import ServiceConfig, TransactionService


def _ops(svc: TransactionService, n: int = 1, key: int = 0) -> list:
    oid = svc.oids[-1]
    method = svc.catalog()[oid]["methods"][0]
    return [["send", oid, method, key, 1] for _ in range(n)]


def _drive(svc: TransactionService, tenants: int = 3, each: int = 4) -> int:
    statuses = []

    def client(tenant):
        for i in range(each):
            statuses.append(svc.submit(tenant, _ops(svc, key=i % 3))["status"])

    threads = [
        threading.Thread(target=client, args=(f"t{i}",))
        for i in range(tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return statuses.count("committed")


@pytest.fixture
def svc():
    service = TransactionService(
        ServiceConfig(protocol="page-2pl", seed=3, batch_max=4)
    )
    service.start()
    yield service
    service.stop()


class TestOnlineAudit:
    def test_audit_keeps_up_and_matches_exact_oracle(self, svc):
        committed = _drive(svc)
        svc.stop()
        report = svc.certification()
        assert report is not None
        assert report.ok and not report.violation
        assert report.committed == committed
        # Quiesced service: the audit has consumed every commit.
        assert svc.db.metrics.get("service_certify_lag").value == 0
        assert svc.db.metrics.get("service_certified_total").value == committed
        # The running certifier's verdict is the exact oracle's.
        exact = check_history(
            svc.history_result(),
            strict_cross_object=strictness_for(svc.config.protocol),
        )
        assert svc.certify().oo_serializable == exact.oo_serializable

    def test_certify_answers_from_the_running_certifier(self, svc):
        _drive(svc, tenants=2, each=3)
        svc.stop()
        fast = svc.certify()
        exact = svc.certify(exact=True)
        assert fast.oo_serializable == exact.oo_serializable
        assert not fast.violation
        # Fast and exact commit tallies describe the same history.
        assert fast.committed == exact.committed

    def test_fast_and_exact_commit_split_is_accounted(self, svc):
        committed = _drive(svc, tenants=2, each=3)
        svc.stop()
        report = svc.certification()
        assert report.fast_commits + report.escalated_commits == committed
        assert report.actions > 0

    def test_online_certify_can_be_disabled(self):
        service = TransactionService(
            ServiceConfig(protocol="page-2pl", seed=3, online_certify=False)
        )
        service.start()
        try:
            _drive(service, tenants=1, each=2)
        finally:
            service.stop()
        assert service.certification() is None
        # certify() falls back to the exact oracle and still answers.
        assert not service.certify().violation

    def test_audit_runs_under_optimistic_validation(self):
        # The optimistic certifier extends committed trees during
        # validation; the online audit must survive (and stay correct
        # under) those externally-attached virtual duplicates.
        service = TransactionService(
            ServiceConfig(protocol="optimistic-oo", seed=5, batch_max=3)
        )
        service.start()
        try:
            committed = _drive(service, tenants=3, each=3)
        finally:
            service.stop()
        report = service.certification()
        assert report.committed == committed
        exact = check_history(
            service.history_result(),
            strict_cross_object=strictness_for("optimistic-oo"),
        )
        assert report.oo_serializable == exact.oo_serializable
        assert service.db.metrics.get("service_certify_lag").value == 0


class TestWeightedQuota:
    def test_weight_roundtrips_through_wire_dicts(self):
        quota = TenantQuota(max_inflight=2, weight=2.5)
        assert TenantQuota.from_dict(quota.to_dict()) == quota
        assert TenantQuota.from_dict({}).weight == 1.0
        assert TenantQuota.from_dict(None).weight == 1.0

    def test_service_reads_weight_from_tenant_quota(self):
        service = TransactionService(
            ServiceConfig(protocol="page-2pl", seed=3),
            quotas={"gold": TenantQuota(weight=4.0)},
        )
        assert service._weight_for("gold") == 4.0
        assert service._weight_for("stranger") == 1.0
