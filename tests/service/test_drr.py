"""Unit tests for the deficit round-robin batch scheduler.

The scheduler is plain arithmetic over sorted tenants, so every property
here is exact: proportional shares under contention, FIFO order within a
tenant, no credit accumulation while idle, and byte-determinism for a
fixed arrival order.
"""

from types import SimpleNamespace

from repro.service.service import DeficitRoundRobin


def _req(tenant: str, n: int):
    return SimpleNamespace(tenant=tenant, n=n)


def _drr(weights: dict[str, float]) -> DeficitRoundRobin:
    return DeficitRoundRobin(lambda tenant: weights.get(tenant, 1.0))


def _fill(drr: DeficitRoundRobin, tenant: str, count: int) -> None:
    for n in range(count):
        drr.offer(_req(tenant, n))


def _tenants(batch) -> list[str]:
    return [r.tenant for r in batch]


def test_equal_weights_round_robin():
    drr = _drr({})
    _fill(drr, "a", 4)
    _fill(drr, "b", 4)
    assert _tenants(drr.next_batch(4)) == ["a", "b", "a", "b"]
    assert drr.buffered == 4


def test_integer_weights_give_proportional_shares():
    drr = _drr({"a": 2.0, "b": 1.0})
    _fill(drr, "a", 20)
    _fill(drr, "b", 20)
    batch = drr.next_batch(12)
    assert _tenants(batch).count("a") == 8
    assert _tenants(batch).count("b") == 4


def test_fractional_weights_accumulate_deficit():
    # b earns a slot every other visit: the 2:1 share emerges over cycles
    # even though no single visit grants b a whole unit.
    drr = _drr({"a": 1.0, "b": 0.5})
    _fill(drr, "a", 20)
    _fill(drr, "b", 20)
    batch = drr.next_batch(12)
    assert _tenants(batch).count("a") == 8
    assert _tenants(batch).count("b") == 4


def test_fifo_within_tenant():
    drr = _drr({})
    _fill(drr, "a", 5)
    batch = drr.next_batch(5)
    assert [r.n for r in batch] == [0, 1, 2, 3, 4]


def test_nonpositive_weight_counts_as_one():
    drr = _drr({"a": 0.0, "b": -3.0})
    _fill(drr, "a", 3)
    _fill(drr, "b", 3)
    assert _tenants(drr.next_batch(4)) == ["a", "b", "a", "b"]


def test_idle_tenant_accumulates_no_credit():
    # b sits idle through several batches; when it finally has work it gets
    # its fair share of the *next* cycle, not a burst of banked deficit.
    drr = _drr({"a": 1.0, "b": 1.0})
    _fill(drr, "a", 12)
    for _ in range(3):
        drr.next_batch(2)
    _fill(drr, "b", 6)
    batch = drr.next_batch(6)
    assert _tenants(batch).count("b") == 3


def test_drained_tenant_resets_deficit():
    drr = _drr({"a": 5.0})
    _fill(drr, "a", 2)
    assert len(drr.next_batch(8)) == 2
    # The visit granted 5 units but only 2 were spendable; re-arrival must
    # not inherit the leftover 3.
    assert drr._deficits["a"] == 0.0
    _fill(drr, "a", 1)
    _fill(drr, "b", 1)
    assert _tenants(drr.next_batch(2)) == ["a", "b"]


def test_registration_mid_cycle_keeps_cursor_on_same_tenant():
    # After b's visit the cursor points at c; registering "bb" (which sorts
    # before c) must not let c lose its turn or bb jump the cycle.
    drr = _drr({})
    for tenant in ("b", "c"):
        _fill(drr, tenant, 2)
    assert _tenants(drr.next_batch(1)) == ["b"]  # cursor now at c
    _fill(drr, "bb", 2)
    assert _tenants(drr.next_batch(3)) == ["c", "b", "bb"]


def test_deterministic_for_fixed_arrival_order():
    def run():
        drr = _drr({"a": 2.0, "b": 1.0, "c": 0.5})
        for tenant in ("b", "a", "c"):
            _fill(drr, tenant, 10)
        out = []
        while drr.buffered:
            out.extend((r.tenant, r.n) for r in drr.next_batch(3))
        return out

    first = run()
    assert first == run()
    assert len(first) == 30


def test_buffered_counter_tracks_offers_and_takes():
    drr = _drr({})
    _fill(drr, "a", 3)
    _fill(drr, "b", 2)
    assert drr.buffered == 5
    drr.next_batch(4)
    assert drr.buffered == 1
    drr.next_batch(4)
    assert drr.buffered == 0
    assert drr.next_batch(4) == []
