"""The wire layer: JSONL sessions over real sockets, the session read
timeout against stalled clients, disconnect tolerance, and the live
Prometheus endpoint."""

import json
import socket
import time
import urllib.request

import pytest

from repro.service.admission import TenantQuota
from repro.service.client import LoadReport, ServiceClient, percentile, run_load
from repro.service.server import ServiceServer
from repro.service.service import ServiceConfig, TransactionService


@pytest.fixture(scope="module")
def server():
    service = TransactionService(
        ServiceConfig(protocol="closed-nested", seed=5),
        quotas={"acme": TenantQuota(max_inflight=2, max_queue_depth=2)},
    )
    with ServiceServer(service, session_read_timeout=0.4) as srv:
        yield srv


def _ops(server):
    catalog = server.service.catalog()
    oid = sorted(catalog)[0]
    return [["send", oid, catalog[oid]["methods"][0], 0, 1]]


class TestProtocol:
    def test_control_ops_roundtrip(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.ping()
            catalog = client.catalog()
            assert catalog and all("methods" in o for o in catalog.values())
            config = client.request({"op": "config"})["config"]
            assert config["protocol"] == "closed-nested"
            assert isinstance(client.stats(), dict)

    def test_submit_commits_over_the_wire(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            response = client.submit("acme", _ops(server), label="wire")
            assert response["status"] == "committed"
            assert response["label"].startswith("acme/wire#")

    def test_many_requests_share_one_connection(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            statuses = [
                client.submit("acme", _ops(server))["status"] for _ in range(3)
            ]
            assert statuses == ["committed"] * 3

    def test_malformed_json_line_is_answered_not_fatal(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
            assert reply["status"] == "invalid"
            # and the session survives to serve a well-formed request
            sock.sendall(b'{"op": "ping"}\n')
            assert json.loads(sock.makefile("rb").readline())["status"] == "ok"

    def test_non_object_and_unknown_op_are_invalid(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.request({"op": "frobnicate"})["status"] == "invalid"
            assert client.request([1, 2, 3])["status"] == "invalid"


class TestFaultTolerance:
    def test_stalled_session_is_dropped_by_the_read_timeout(self, server):
        metric = 'service_sessions_timed_out_total'
        before = server.service.db.metrics.as_dict().get(metric, 0)
        client = ServiceClient("127.0.0.1", server.port)
        client.stall()  # half a frame, then silence
        deadline = 50
        while deadline:
            if server.service.db.metrics.as_dict().get(metric, 0) > before:
                break
            deadline -= 1
            time.sleep(0.05)
        assert server.service.db.metrics.as_dict().get(metric, 0) > before
        # The client recovers by reconnecting on its next honest request.
        assert client.submit("acme", _ops(server))["status"] == "committed"
        client.close()

    def test_disconnect_after_submit_loses_no_commit(self, server):
        session = server.service.session("vanisher")
        before = len(session.committed_labels)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit_and_vanish("vanisher", _ops(server), label="gone")
        # The transaction settles on the engine even though nobody read
        # the response; the ledger, not the socket, is the truth.
        deadline = 100
        while deadline and len(session.committed_labels) == before:
            deadline -= 1
            time.sleep(0.05)
        assert len(session.committed_labels) == before + 1
        assert server.service.audit()["ok"]


class TestMetricsEndpoint:
    def test_metrics_exposition_is_live(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            client.submit("acme", _ops(server))
        url = f"http://127.0.0.1:{server.metrics_port}/metrics"
        body = urllib.request.urlopen(url, timeout=5).read().decode()
        assert "# TYPE service_batches_total counter" in body
        assert 'service_admitted_total{tenant="acme"}' in body

    def test_healthz_and_404(self, server):
        base = f"http://127.0.0.1:{server.metrics_port}"
        assert urllib.request.urlopen(f"{base}/healthz", timeout=5).read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/nope", timeout=5)
        assert excinfo.value.code == 404


class TestLoadDriver:
    def test_percentile_is_nearest_rank(self):
        values = [float(n) for n in range(1, 11)]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 99) == 10.0
        assert percentile([], 99) == 0.0

    def test_report_merge_accumulates(self):
        a = LoadReport(requests=2, committed=1, rejected={"queue-full": 1})
        b = LoadReport(requests=3, committed=3, faults={"client.slow": 2})
        a.merge(b)
        assert (a.requests, a.committed) == (5, 4)
        assert a.rejected == {"queue-full": 1}
        assert a.faults == {"client.slow": 2}
        assert a.total_rejections == 1

    def test_run_load_accounts_for_every_request(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            tenants=["lt-a", "lt-b"],
            clients_per_tenant=2,
            requests_per_client=4,
            seed=9,
        )
        assert report.requests == 16
        answered = (
            report.committed
            + report.gave_up
            + report.errors
            + report.invalid
            + report.rejected_final
        )
        assert answered == report.requests
        assert report.errors == 0
        assert report.committed > 0
        summary = report.summary()
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]
