"""Static partitioning: call components, the shard map, workload splits."""

from repro.fuzz.generator import GeneratorProfile, generate
from repro.shard import ShardMap, call_components, split_ops, split_programs

GROUPED = GeneratorProfile.smoke().grouped(2)


def _spec(seed=0, profile=GROUPED):
    return generate(seed, profile)


class TestCallComponents:
    def test_nested_call_targets_stay_with_their_root(self):
        spec = _spec()
        components = call_components(spec)
        by_object = {}
        for component in components:
            for name in component:
                by_object[name] = component
        # every object belongs to exactly one component
        assert sorted(by_object) == sorted(o.name for o in spec.objects)
        # a call in any method plan never crosses components
        for obj in spec.objects:
            for method in obj.methods:
                for op in method.plan:
                    if op[0] == "call":
                        assert by_object[op[1]] is by_object[obj.name], (
                            f"{obj.name} calls {op[1]} across components"
                        )

    def test_groups_are_separate_components(self):
        # grouped generation never calls across groups, so no component
        # mixes G0 and G1 names
        for component in call_components(_spec()):
            groups = {name.split("G")[1][0] for name in component}
            assert len(groups) == 1


class TestShardMap:
    def test_plan_covers_every_object_exactly_once(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 2)
        assert sorted(shard_map.assignment) == sorted(
            o.name for o in spec.objects
        )
        owned = [shard_map.owned(s, spec) for s in range(2)]
        assert sorted(o.name for shard in owned for o in shard) == sorted(
            o.name for o in spec.objects
        )

    def test_one_shard_owns_everything(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 1)
        assert all(shard == 0 for shard in shard_map.assignment.values())

    def test_round_trip(self):
        shard_map = ShardMap.plan(_spec(), 3)
        clone = ShardMap.from_dict(shard_map.to_dict())
        assert clone.assignment == shard_map.assignment
        assert clone.n_shards == shard_map.n_shards

    def test_call_components_never_split(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 2)
        for component in call_components(spec):
            shards = {shard_map.shard_of(name) for name in component}
            assert len(shards) == 1


class TestSplits:
    def test_split_ops_routes_by_owner(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 2)
        program = spec.programs[0]
        split = split_ops(program.ops, shard_map)
        for shard, ops in split.items():
            for op in ops:
                if op[0] == "send":
                    assert shard_map.shard_of(op[1]) == shard

    def test_split_preserves_every_send(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 2)
        for program in spec.programs:
            split = split_ops(program.ops, shard_map)
            sends = [op for op in program.ops if op[0] == "send"]
            routed = [
                op for ops in split.values() for op in ops if op[0] == "send"
            ]
            assert sorted(map(tuple, routed)) == sorted(map(tuple, sends))

    def test_multi_labels_are_programs_spanning_shards(self):
        spec = _spec()
        shard_map = ShardMap.plan(spec, 2)
        split = split_programs(spec, shard_map)
        for program in spec.programs:
            shards = {
                shard_map.shard_of(op[1])
                for op in program.ops
                if op[0] == "send"
            }
            if len(shards) > 1:
                assert split.multi[program.label] == tuple(sorted(shards))
            else:
                assert program.label not in split.multi

    def test_single_shard_split_has_no_multi(self):
        spec = _spec()
        split = split_programs(spec, ShardMap.plan(spec, 1))
        assert split.multi == {}
        assert sorted(p.label for p in split.branches[0]) == sorted(
            p.label for p in spec.programs
        )
