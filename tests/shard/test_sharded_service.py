"""The multi-tenant service running on the sharded runtime."""

import threading

import pytest

from repro.errors import DatabaseError
from repro.service.service import ServiceConfig, TransactionService
from repro.shard.service import ShardGroup


def _ops(svc: TransactionService, n: int = 1, key: int = 0) -> list:
    oid = svc.oids[-1]
    method = svc.catalog()[oid]["methods"][0]
    return [["send", oid, method, key, 1] for _ in range(n)]


def _cross_shard_ops(svc: TransactionService) -> list:
    """One send to an object on each shard — a distributed transaction."""
    group = svc.db
    by_shard = {}
    for oid in svc.oids:
        by_shard.setdefault(group.shard_map.shard_of(oid), oid)
    assert len(by_shard) == 2, "seed must spread objects over both shards"
    ops = []
    for shard in sorted(by_shard):
        oid = by_shard[shard]
        method = svc.catalog()[oid]["methods"][0]
        ops.append(["send", oid, method, 0, 1])
    return ops


@pytest.fixture
def svc():
    service = TransactionService(
        ServiceConfig(protocol="page-2pl", seed=3, shards=2, batch_max=4)
    )
    service.start()
    yield service
    service.stop()


class TestShardedService:
    def test_engine_runs_on_a_shard_group(self, svc):
        assert isinstance(svc.db, ShardGroup)
        assert svc.db.n_shards == 2
        assert svc.executor is None

    def test_concurrent_tenants_commit_audit_and_certify(self, svc):
        statuses = []

        def client(tenant):
            for i in range(4):
                response = svc.submit(tenant, _ops(svc, key=i % 3))
                statuses.append(response["status"])

        threads = [
            threading.Thread(target=client, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses.count("committed") == 12
        svc.stop()
        assert svc.audit()["ok"]
        assert not svc.certify().violation

    def test_cross_shard_requests_two_phase_commit(self, svc):
        responses = [
            svc.submit("acme", _cross_shard_ops(svc)) for _ in range(3)
        ]
        assert all(r["status"] == "committed" for r in responses)
        stats = svc.db.stats()
        assert stats["rounds"] > 0, "no coordinator round ran"
        svc.stop()
        assert svc.audit()["ok"]
        assert not svc.certify().violation

    def test_invalid_requests_are_rejected_up_front(self, svc):
        assert svc.submit("acme", [["send", "ghost", "m", 0, 1]])[
            "status"
        ] == "invalid"

    def test_shards_exclude_data_dir(self, tmp_path):
        with pytest.raises(DatabaseError, match="data-dir"):
            TransactionService(
                ServiceConfig(
                    protocol="page-2pl",
                    seed=3,
                    shards=2,
                    data_dir=str(tmp_path),
                )
            )

    def test_config_reports_shards(self, svc):
        assert svc.config.to_dict()["shards"] == 2
