"""The 2PC coordinator: Def 16 cycle aborts, crash/deadlock handling, and
the decide-before-broadcast durability order."""

import pytest

from repro.errors import SimulationError
from repro.oodb.wal import WriteAheadLog
from repro.shard import ABORT, COMMIT, Coordinator, canonical_cycle


def _report(shard, **kwargs):
    base = {
        "shard": shard,
        "status": "stalled",
        "advanced": True,
        "prepared": [],
        "failed": [],
        "committed_local": [],
        "edges": [],
        "crashed": False,
    }
    base.update(kwargs)
    return base


class TestCanonicalCycle:
    def test_rotates_smallest_node_first(self):
        assert canonical_cycle(["T2", "T0", "T1", "T2"]) == (
            "T0", "T1", "T2", "T0",
        )

    def test_rotation_invariant(self):
        assert canonical_cycle(["T1", "T0", "T1"]) == canonical_cycle(
            ["T0", "T1", "T0"]
        )


class TestCycleAborts:
    def test_cycle_closed_by_last_prepare_aborts_the_closer(self):
        """T0 commits first; T1's *last* prepare closes T1 -> T0 -> T1."""
        coordinator = Coordinator({"T0": (0, 1), "T1": (0, 1)})
        # Round 1: shard 0 prepared both, shard 1 only T0.  T0 has all its
        # votes and the one visible edge leads out of the candidate set,
        # so T0 commits.
        first = coordinator.round([
            _report(0, prepared=["T0", "T1"], edges=[["T0", "T1"]]),
            _report(1, prepared=["T0"]),
        ])
        assert first == {"T0": COMMIT}
        # Round 2: shard 1's prepare of T1 arrives with the back edge.
        # The insertion would close T0 -> T1 -> T0 against a transaction
        # that already committed, so T1 — the closer — must abort.
        second = coordinator.round([
            _report(0, prepared=["T0", "T1"], edges=[["T0", "T1"]]),
            _report(1, prepared=["T0", "T1"], edges=[["T1", "T0"]]),
        ])
        assert second == {"T1": ABORT}
        assert coordinator.cycle_aborts == 1
        assert coordinator.violations == []

    def test_same_round_cycle_aborts_smallest_and_commits_rest(self):
        coordinator = Coordinator({"T0": (0, 1), "T1": (0, 1)})
        new = coordinator.round([
            _report(0, prepared=["T0", "T1"], edges=[["T0", "T1"]]),
            _report(1, prepared=["T0", "T1"], edges=[["T1", "T0"]]),
        ])
        assert new == {"T0": ABORT, "T1": COMMIT}
        assert coordinator.cycle_aborts == 1

    def test_committed_only_cycle_is_a_recorded_violation(self):
        """A cycle discovered only after both ends committed cannot be
        aborted away any more — it is the protocol's failure, recorded."""
        coordinator = Coordinator({"T0": (0, 1), "T1": (0, 1)})
        first = coordinator.round([
            _report(0, prepared=["T0", "T1"], edges=[["T0", "T1"]]),
            _report(1, prepared=["T0", "T1"]),
        ])
        assert first == {"T0": COMMIT, "T1": COMMIT}
        coordinator.round([
            _report(0, prepared=["T0", "T1"], edges=[["T0", "T1"]]),
            _report(1, prepared=["T0", "T1"], edges=[["T1", "T0"]]),
        ])
        assert coordinator.violations == [("T0", "T1", "T0")]
        # rediscovering the same cycle next round must not duplicate it
        coordinator.round([
            _report(0, edges=[["T0", "T1"]]),
            _report(1, edges=[["T1", "T0"]]),
        ])
        assert len(coordinator.violations) == 1


class TestFailuresAndCrashes:
    def test_branch_failure_aborts_the_whole_transaction(self):
        coordinator = Coordinator({"T0": (0, 1)})
        new = coordinator.round([
            _report(0, prepared=["T0"]),
            _report(1, failed=["T0"]),
        ])
        assert new == {"T0": ABORT}

    def test_shard_crash_voids_its_transactions(self):
        coordinator = Coordinator({"T0": (0, 1), "T1": (1, 2)})
        new = coordinator.round([
            _report(0, prepared=["T0"]),
            _report(1, crashed=True),
            _report(2, prepared=["T1"]),
        ])
        assert new == {"T0": ABORT, "T1": ABORT}
        assert coordinator.crash_aborts == 2

    def test_crashed_shards_edges_are_ignored(self):
        coordinator = Coordinator({"T0": (0, 1)})
        new = coordinator.round([
            _report(0, prepared=["T0"], committed_local=["T2"]),
            _report(
                1,
                prepared=["T0"],
                crashed=True,
                edges=[["T0", "T2"], ["T2", "T0"]],
            ),
        ])
        # the crash itself aborts T0; the dead shard's edges never reach
        # the topology (no cycle abort on top of the crash abort)
        assert new == {"T0": ABORT}
        assert coordinator.cycle_aborts == 0


class TestDeadlockBreaker:
    def test_globally_wedged_aborts_smallest_voted(self):
        coordinator = Coordinator({"T0": (0, 1), "T1": (0, 1)})
        new = coordinator.round([
            _report(0, advanced=False, prepared=["T1"]),
            _report(1, advanced=False),
        ])
        assert new == {"T1": ABORT}
        assert coordinator.deadlock_aborts == 1

    def test_progress_elsewhere_suppresses_the_breaker(self):
        coordinator = Coordinator({"T0": (0, 1)})
        new = coordinator.round([
            _report(0, advanced=False, prepared=["T0"]),
            _report(1, advanced=True),
        ])
        assert new == {}
        assert coordinator.deadlock_aborts == 0

    def test_wedged_with_nothing_to_abort_is_an_error(self):
        coordinator = Coordinator({"T0": (0, 1)})
        with pytest.raises(SimulationError, match="wedged"):
            coordinator.round([
                _report(0, advanced=False),
                _report(1, advanced=False),
            ])


class TestDurability:
    def test_decide_records_are_forced_before_broadcast(self):
        wal = WriteAheadLog()
        coordinator = Coordinator({"T0": (0, 1)}, wal=wal)
        new = coordinator.round([
            _report(0, prepared=["T0"]),
            _report(1, prepared=["T0"]),
        ])
        assert new == {"T0": COMMIT}
        decides = [r for r in wal.records if r["t"] == "decide"]
        assert [(r["txn"], r["verdict"]) for r in decides] == [("T0", COMMIT)]

    def test_decisions_are_idempotent(self):
        wal = WriteAheadLog()
        coordinator = Coordinator({"T0": (0, 1)}, wal=wal)
        reports = [
            _report(0, prepared=["T0"]),
            _report(1, prepared=["T0"]),
        ]
        coordinator.round(reports)
        assert coordinator.round(reports) == {}  # nothing new
        assert len([r for r in wal.records if r["t"] == "decide"]) == 1

    def test_register_enrolls_later_transactions(self):
        coordinator = Coordinator({})
        coordinator.register({"T9": (0, 2)})
        new = coordinator.round([
            _report(0, prepared=["T9"]),
            _report(2, prepared=["T9"]),
        ])
        assert new == {"T9": COMMIT}
