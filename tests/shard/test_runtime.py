"""The sharded runtime end to end: byte identity at one shard, merged-trace
determinism, in-process vs multiprocess parity, composed-oracle verdicts."""

import pytest

from repro.fuzz import FUZZ_PROTOCOLS
from repro.fuzz.generator import GeneratorProfile, generate
from repro.shard import run_sharded_cell, single_core_text

SMOKE = GeneratorProfile.smoke()
GROUPED = SMOKE.grouped(2)


class TestOneShardByteIdentity:
    @pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
    def test_one_shard_matches_single_core(self, protocol):
        spec = generate(11, SMOKE)
        sharded = run_sharded_cell(spec, protocol, 1, collect_events=True)
        assert sharded.canonical_text() == single_core_text(spec, protocol)

    def test_one_shard_never_coordinates(self):
        spec = generate(11, SMOKE)
        result = run_sharded_cell(spec, "page-2pl", 1)
        assert result.coordinator["rounds"] == 0
        assert result.decisions == {}


class TestDeterminism:
    def test_merged_trace_is_stable_across_three_runs(self):
        spec = generate(7, GROUPED)
        texts = {
            run_sharded_cell(
                spec, "page-2pl", 2, collect_events=True
            ).canonical_text()
            for _ in range(3)
        }
        assert len(texts) == 1

    def test_in_process_and_multiprocess_agree(self):
        spec = generate(7, GROUPED)
        in_proc = run_sharded_cell(spec, "page-2pl", 2, collect_events=True)
        multi_proc = run_sharded_cell(
            spec, "page-2pl", 2, mp=True, collect_events=True
        )
        assert in_proc.canonical_text() == multi_proc.canonical_text()
        assert in_proc.decisions == multi_proc.decisions

    def test_merged_events_are_tick_ordered(self):
        spec = generate(7, GROUPED)
        result = run_sharded_cell(spec, "page-2pl", 2, collect_events=True)
        ticks = [event.get("tick", 0) for event in result.events]
        assert ticks == sorted(ticks)


class TestComposedOracle:
    @pytest.mark.parametrize("protocol", ["page-2pl", "optimistic-oo"])
    def test_cross_shard_smoke_cells_are_clean(self, protocol):
        coordinated = 0
        for seed in range(3):
            spec = generate(seed, GROUPED)
            result = run_sharded_cell(spec, protocol, 2)
            assert result.ok, (
                f"seed {seed} {protocol}: {result.report.description}"
            )
            assert not result.atomicity_violations
            coordinated += len(result.decisions)
        # the sweep must actually exercise the 2PC path somewhere
        assert coordinated > 0

    def test_atomicity_every_decision_is_respected(self):
        from repro.shard import ABORT, COMMIT

        spec = generate(7, GROUPED)
        result = run_sharded_cell(spec, "page-2pl", 2)
        committed = set(result.committed)
        for base, verdict in result.decisions.items():
            if verdict == COMMIT:
                assert base in committed
            else:
                assert verdict == ABORT
                assert base not in committed
