"""Presumed-abort resolution of per-shard WAL segments.

The critical window: a shard crashes *after* voting (durable prepare
record) but *before* applying the coordinator's verdict.  Recovery must
honor a durable decide-commit (a sibling shard may already have exposed
the transaction's effects) and presume abort for everything undecided.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.fuzz.generator import GeneratorProfile, generate
from repro.oodb.wal import WriteAheadLog
from repro.shard import (
    ShardedRuntime,
    in_doubt_attempts,
    load_decisions,
    resolve_segments,
)
from repro.shard.coordinator import COMMIT

GROUPED = GeneratorProfile.smoke().grouped(2)


class TestInDoubt:
    def test_prepare_without_verdict_is_in_doubt(self):
        wal = WriteAheadLog()
        wal.append({"t": "prepare", "txn": "T5.r0"})
        wal.append({"t": "prepare", "txn": "T6.r1"})
        wal.append({"t": "commit", "txn": "T6.r1"})
        wal.sync()
        assert in_doubt_attempts(wal) == ["T5.r0"]

    def test_aborted_branches_are_not_in_doubt(self):
        wal = WriteAheadLog()
        wal.append({"t": "prepare", "txn": "T5.r0"})
        wal.append({"t": "abort", "txn": "T5.r0"})
        wal.sync()
        assert in_doubt_attempts(wal) == []

    def test_an_unsynced_prepare_never_counts(self):
        # a vote is only a vote once it is durable
        wal = WriteAheadLog()
        wal.append({"t": "prepare", "txn": "T5.r0"})
        assert in_doubt_attempts(wal) == []


class TestCrashBetweenPrepareAndCommit:
    @pytest.fixture
    def crashed_run(self, tmp_path):
        """Seed 11's 2-shard run with shard 0 crashing at its first 2PC
        commit application — after the coordinator's decide record and the
        shard's own prepare record are durable."""
        data_dir = str(tmp_path / "segments")
        spec = generate(11, GROUPED)
        runtime = ShardedRuntime(
            spec,
            "page-2pl",
            2,
            data_dir=data_dir,
            faults_for=lambda shard: (
                FaultPlan.crash_plan("2pc.commit", 0) if shard == 0 else None
            ),
        )
        result = runtime.run()
        return spec, data_dir, result

    def test_crash_is_witnessed_and_excused(self, crashed_run):
        _, _, result = crashed_run
        summaries = {s.shard: s for s in result.summaries}
        assert summaries[0].crashed
        assert not summaries[1].crashed
        # the crash must not turn into an oracle violation: the dead
        # shard's branches are resolved from its WAL segment instead
        assert result.ok, result.report.description

    def test_decided_commit_is_honored_on_the_crashed_segment(
        self, crashed_run
    ):
        spec, data_dir, result = crashed_run
        decisions = load_decisions(data_dir)
        committed_bases = {
            base for base, verdict in decisions.items() if verdict == COMMIT
        }
        # the fault site only fires on a commit verdict, so at least one
        # distributed transaction was decided commit before the crash
        assert committed_bases
        report = resolve_segments(spec, 2, data_dir, protocol="page-2pl")
        by_shard = {r.shard: r for r in report.shards}
        # the crashed shard's in-doubt branch resolved to commit
        resolved = {
            attempt.split(".")[0]
            for attempt in by_shard[0].resolved_commits
        }
        assert resolved & committed_bases
        # after resolution, every decided-commit transaction is a durable
        # winner, and nothing presumed-aborted had a commit verdict
        assert committed_bases <= report.winners
        for resolution in report.shards:
            for attempt in resolution.presumed_aborts:
                base = attempt.split(".")[0]
                assert decisions.get(base) != COMMIT

    def test_resolution_is_idempotent(self, crashed_run):
        spec, data_dir, _ = crashed_run
        first = resolve_segments(spec, 2, data_dir, protocol="page-2pl")
        second = resolve_segments(spec, 2, data_dir, protocol="page-2pl")
        assert first.winners == second.winners
        assert [r.digest for r in first.shards] == [
            r.digest for r in second.shards
        ]

    def test_live_shard_recovers_its_own_commits(self, crashed_run):
        spec, data_dir, result = crashed_run
        report = resolve_segments(spec, 2, data_dir, protocol="page-2pl")
        live = {s.shard: s for s in result.summaries}[1]
        # everything the surviving shard committed in memory is durable
        assert set(live.committed) <= report.winners
