"""The fuzz campaign driver on the sharded runtime (``--shards``)."""

from repro.fuzz.driver import run_campaign
from repro.fuzz.generator import GeneratorProfile

SMOKE = GeneratorProfile.smoke()


class TestShardedCampaign:
    def test_two_shard_smoke_campaign_is_clean(self):
        campaign = run_campaign(
            seeds=[0, 1], profile=SMOKE, shards=2
        )
        assert campaign.ok
        assert not campaign.violations
        header, rows = campaign.table()
        assert header[1] == "shards"
        assert all(row[1] == 2 for row in rows)

    def test_one_shard_report_is_byte_identical_to_single_core(self):
        sharded = run_campaign(seeds=[0, 1], profile=SMOKE, shards=1)
        plain = run_campaign(seeds=[0, 1], profile=SMOKE)
        assert sharded.table() == plain.table()
        assert sharded.ok == plain.ok

    def test_jobs_compose_with_shards(self):
        serial = run_campaign(seeds=[0, 1], profile=SMOKE, shards=2)
        parallel = run_campaign(seeds=[0, 1], profile=SMOKE, shards=2, jobs=2)
        assert serial.table() == parallel.table()
