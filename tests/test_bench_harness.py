"""The standalone bench runner must fail loudly, not import quietly."""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def _harness():
    spec = importlib.util.spec_from_file_location(
        "_harness", BENCH_DIR / "_harness.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_direct_benchmark_stub_runs_callables():
    harness = _harness()
    stub = harness.DirectBenchmark()
    assert stub(lambda: 41) == 41
    assert stub.pedantic(lambda x: x + 1, args=(1,), rounds=2, iterations=1) == 2


def test_runner_passes_on_a_healthy_bench(capsys):
    harness = _harness()
    assert harness.run_benchmarks(["fig2"]) == 0
    assert harness.main(["fig2"]) == 0
    assert "PASS bench_fig2_structure.py" in capsys.readouterr().out


def test_runner_exits_nonzero_when_verification_fails(monkeypatch, capsys):
    harness = _harness()

    def boom(path):
        raise AssertionError("internal verification failed")

    monkeypatch.setattr(harness, "_load_module", boom)
    assert harness.run_benchmarks(["fig2"]) == 1
    assert harness.main(["fig2"]) == 1
    assert "FAIL bench_fig2_structure.py" in capsys.readouterr().err


def test_runner_counts_every_failing_module(monkeypatch):
    harness = _harness()
    monkeypatch.setattr(
        harness, "_load_module", lambda path: (_ for _ in ()).throw(RuntimeError())
    )
    assert harness.run_benchmarks(["fig2", "fig5"]) == 2


def _run_harness(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(BENCH_DIR.parent / "src")
    return subprocess.run(
        [sys.executable, str(BENCH_DIR / "_harness.py"), *argv],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )


def test_jobs_transcript_matches_serial():
    """``--jobs`` shards modules across processes but must print the same
    transcript in the same (sorted) module order."""
    serial = _run_harness("fig2", "fig4")
    parallel = _run_harness("fig2", "fig4", "--jobs", "2")
    assert serial.returncode == parallel.returncode == 0
    assert "PASS bench_fig2_structure.py" in serial.stdout
    assert "PASS bench_fig4_example1.py" in serial.stdout
    assert serial.stdout == parallel.stdout
