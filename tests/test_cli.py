"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main


def run_cli(*argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


def test_compare_encyclopedia_two_protocols():
    code, output = run_cli(
        "compare",
        "--workload", "encyclopedia",
        "--protocols", "page-2pl", "open-nested-oo",
        "--transactions", "4",
        "--seeds", "0",
    )
    assert code == 0
    assert "page-2pl" in output and "open-nested-oo" in output
    assert "tput/1k" in output


def test_compare_banking():
    code, output = run_cli(
        "compare", "--workload", "banking", "--protocols", "open-nested-oo",
        "--transactions", "4", "--seeds", "0",
    )
    assert code == 0
    assert "banking workload" in output


def test_compare_editing_and_index():
    for workload in ("editing", "index"):
        code, output = run_cli(
            "compare", "--workload", workload, "--protocols", "page-2pl",
            "--transactions", "3", "--seeds", "0",
        )
        assert code == 0, workload
        assert "page-2pl" in output


def test_census():
    code, output = run_cli("census")
    assert code == 0
    assert "two leaves, distinct keys" in output
    assert "oo-only" in output


def test_figures():
    code, output = run_cli("figures")
    assert code == 0
    assert "Example 4 / Figure 8" in output
    assert "serial order: ['T1', 'T2', 'T3', 'T4']" in output


def test_figures_verbose_provenance():
    code, output = run_cli("figures", "--verbose")
    assert code == 0
    assert "Definition 10" in output


def test_fuzz_jobs_output_is_byte_identical():
    """--jobs must be invisible in the rendered report."""
    argv = ("fuzz", "--smoke", "--seeds", "6")
    code_serial, serial = run_cli(*argv, "--jobs", "1")
    code_parallel, parallel = run_cli(*argv, "--jobs", "2")
    assert code_serial == code_parallel == 0
    assert serial == parallel


def test_fuzz_crash_smoke():
    code, output = run_cli(
        "fuzz", "--crash", "--smoke", "--seeds", "1",
        "--protocols", "open-nested-oo",
    )
    assert code == 0
    assert "crash campaign" in output
    assert "no crash-oracle violations" in output


def test_fuzz_crash_ablate_self_test():
    # recovery without compensation replay must be caught (exit 0 = caught)
    code, output = run_cli(
        "fuzz", "--crash-ablate", "--smoke", "--seeds", "2",
        "--protocols", "multilevel", "open-nested-oo",
    )
    assert code == 0
    assert "ablation detected" in output


def test_recover_command(tmp_path):
    import json

    from repro.faults import FaultPlan
    from repro.fuzz.crash import _build_db, crash_census
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.oodb.wal import WriteAheadLog
    from repro.runtime.executor import InterleavedExecutor

    spec = generate(0, GeneratorProfile.smoke())
    census = crash_census(spec, "open-nested-oo")
    plan = FaultPlan.crash_plan(
        "page-write.after", census["page-write.after"] - 1
    )
    wal = WriteAheadLog()
    db, programs = _build_db(spec, "open-nested-oo", wal=wal, faults=plan)
    result = InterleavedExecutor(db, seed=spec.seed, faults=plan).run(programs)
    assert result.crashed
    path = tmp_path / "crashed.wal"
    with open(path, "w") as fh:
        for rec in wal.to_list():
            fh.write(json.dumps(rec, sort_keys=True) + "\n")

    code, output = run_cli("recover", str(path), "--seed", "0", "--smoke")
    assert code == 0
    assert "recovered" in output
    assert "page-store digest:" in output


def test_fuzz_crash_durable_smoke():
    code, output = run_cli(
        "fuzz", "--crash", "--smoke", "--seeds", "1", "--durable",
        "--protocols", "open-nested-oo",
    )
    assert code == 0
    assert "[durable store]" in output
    assert "no crash-oracle violations" in output


def test_recover_data_dir_round_trip(tmp_path):
    from repro.fuzz.crash import _build_db, _durable_store, DurableConfig
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.oodb.wal import WriteAheadLog
    from repro.runtime.executor import InterleavedExecutor

    spec = generate(0, GeneratorProfile.smoke())
    data_dir = tmp_path / "data"
    data_dir.mkdir()
    wal = WriteAheadLog(str(data_dir / "wal.jsonl"))
    store = _durable_store(spec, str(data_dir), DurableConfig(frames=8))
    db, programs = _build_db(
        spec, "open-nested-oo", wal=wal, store=store, checkpoint_every=32
    )
    InterleavedExecutor(db, seed=spec.seed).run(programs)
    # abrupt stop: synced but never checkpointed/closed cleanly
    wal.sync()
    wal.close()

    code, output = run_cli(
        "recover", "--data-dir", str(data_dir), "--seed", "0", "--smoke"
    )
    assert code == 0
    assert "recovered" in output
    assert f"data dir {data_dir} recovered and checkpointed" in output

    # idempotent: a second recovery has nothing left to redo
    code, second = run_cli(
        "recover", "--data-dir", str(data_dir), "--seed", "0", "--smoke"
    )
    assert code == 0
    assert "redo 0" in second
    digest = [l for l in output.splitlines() if "digest" in l]
    assert digest == [l for l in second.splitlines() if "digest" in l]


def test_trace_emits_valid_chrome_trace(tmp_path):
    import json

    from repro.obs import validate_chrome_trace

    out = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    code, output = run_cli(
        "trace", "--seed", "3", "--protocol", "open-nested-oo", "--smoke",
        "--out", str(out), "--events", str(events),
    )
    assert code == 0
    assert f"wrote {out}" in output
    trace = json.loads(out.read_text())
    assert trace["traceEvents"]
    assert validate_chrome_trace(trace) == []

    from repro.obs import events_from_jsonl

    loaded = events_from_jsonl(events.read_text())
    assert loaded
    assert loaded[0].kind == "txn-begin"


def test_trace_to_stdout_is_json(tmp_path):
    import json

    code, output = run_cli(
        "trace", "--seed", "0", "--protocol", "page-2pl", "--smoke",
    )
    assert code == 0
    assert json.loads(output)["displayTimeUnit"] == "ms"


def test_trace_render_shows_call_tree():
    code, output = run_cli(
        "trace", "--seed", "3", "--protocol", "open-nested-oo", "--smoke",
        "--render",
    )
    assert code == 0
    assert "txn." in output
    assert ".insert" in output or ".read" in output


def test_stats_table_has_uniform_scheduler_keys():
    from repro.obs import STAT_KEYS

    code, output = run_cli(
        "stats", "--seed", "0", "--protocol", "optimistic-oo", "--smoke",
    )
    assert code == 0
    for key in STAT_KEYS:
        assert f"scheduler_{key}_total" in output


def test_stats_prometheus_format():
    code, output = run_cli(
        "stats", "--seed", "0", "--protocol", "page-2pl", "--smoke",
        "--format", "prometheus",
    )
    assert code == 0
    assert "# TYPE scheduler_acquired_total counter" in output
    assert 'page_lock_requests_total{mode="read"}' in output


def test_fuzz_trace_dir_dumps_traces_without_perturbing_report(tmp_path):
    import json

    from repro.obs import validate_chrome_trace

    argv = ("fuzz", "--smoke", "--seed", "16")
    code_plain, plain = run_cli(*argv)
    code_traced, traced = run_cli(*argv, "--trace-dir", str(tmp_path))
    assert code_plain == code_traced == 0
    assert plain == traced  # tracing only observes

    # Seed 16's open-nested/optimistic cells give up a transaction, so
    # their traces are the interesting ones the campaign dumps.
    dumped = sorted(p.name for p in tmp_path.iterdir())
    assert dumped == [
        "seed16_open-nested-oo.trace.json",
        "seed16_optimistic-oo.trace.json",
    ]
    for name in dumped:
        trace = json.loads((tmp_path / name).read_text())
        assert validate_chrome_trace(trace) == []


def test_certify_clean_cell_with_diff_exits_0():
    code, output = run_cli(
        "certify", "--seed", "3", "--protocol", "page-2pl", "--smoke",
        "--diff",
    )
    assert code == 0
    assert "certify seed 3 under page-2pl: ok" in output
    assert "diff: certifier verdict and witness match the exact oracle" in output


def test_certify_ablated_violation_exits_1():
    code, output = run_cli(
        "certify", "--seed", "4", "--protocol", "open-nested-oo", "--smoke",
        "--ablate", "--diff",
    )
    assert code == 1
    assert "VIOLATION" in output
    assert "oo-serializable=False" in output  # the exact witness is printed
    assert "diff: certifier verdict and witness match the exact oracle" in output


def test_certify_missing_args_exits_2(capsys):
    code, _ = run_cli("certify", "--seed", "3")
    assert code == 2
    assert "--protocol" in capsys.readouterr().err


def test_certify_timeout_exits_124(capsys):
    code, _ = run_cli(
        "certify", "--seed", "0", "--protocol", "page-2pl", "--timeout",
        "0.01",
    )
    assert code == 124
    assert "timed out after" in capsys.readouterr().err


def test_certify_replay_counterexample(tmp_path):
    import json

    from repro.fuzz.generator import GeneratorProfile, generate

    spec = generate(3, GeneratorProfile.smoke())
    # The fields `repro fuzz --replay` reads; a shrunk counterexample file
    # is a superset of this.
    payload = {
        "workload": spec.to_dict(),
        "protocol": "page-2pl",
        "exec_seed": 3,
        "ablation": None,
    }
    path = tmp_path / "cex.json"
    path.write_text(json.dumps(payload) + "\n")
    code, output = run_cli("certify", "--replay", str(path), "--diff")
    assert code == 0
    assert f"certify {path} under page-2pl" in output


def test_fuzz_certify_flag_matches_plain_verdict():
    argv = ("fuzz", "--smoke", "--seeds", "4")
    code_plain, plain = run_cli(*argv)
    code_cert, certified = run_cli(*argv, "--certify")
    assert code_plain == code_cert == 0
    assert "[certified]" in certified and "[certified]" not in plain
    assert "no oracle violations" in certified


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- the service commands and the uniform exit-code convention --------------


def test_exit_code_constants_pinned():
    from repro.cli import EXIT_FAILURE, EXIT_OK, EXIT_OPERATIONAL, EXIT_TIMEOUT

    assert (EXIT_OK, EXIT_FAILURE, EXIT_OPERATIONAL, EXIT_TIMEOUT) == (
        0, 1, 2, 124,
    )


def test_fuzz_service_smoke_campaign():
    code, output = run_cli(
        "fuzz", "--service", "--seeds", "1",
        "--protocols", "page-2pl", "open-nested-oo",
        "--requests-per-client", "3",
    )
    assert code == 0
    assert "service campaign" in output
    assert "no oracle violations, no lost admitted commits" in output


def test_serve_timeout_exits_124(capsys):
    code, output = run_cli(
        "serve", "--port", "0", "--metrics-port", "0", "--timeout", "0.3",
    )
    assert code == 124
    assert "serving protocol=page-2pl" in output
    assert "audit=ok" in output
    assert "timed out after" in capsys.readouterr().err


def test_load_against_unreachable_server_exits_2(capsys):
    # Port 1 is never listening; the failure is operational, not a verdict.
    code, _ = run_cli("load", "--port", "1", "--tenants", "1")
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_fuzz_timeout_flag_exits_124(capsys):
    code, _ = run_cli("fuzz", "--smoke", "--seeds", "4", "--timeout", "0.01")
    assert code == 124
    assert "timed out after" in capsys.readouterr().err


def test_serve_fuzz_load_share_a_timeout_flag():
    # The shared flag is documented on every long-running command.
    for command in ("serve", "fuzz", "load", "certify"):
        buffer = io.StringIO()
        with pytest.raises(SystemExit), redirect_stdout(buffer):
            main([command, "--help"])
        assert "--timeout" in buffer.getvalue(), command


def test_serve_load_roundtrip_over_sockets():
    """End-to-end through real sockets: serve, load with faults, metrics."""
    import threading
    import urllib.request

    from repro.service import (
        ServiceConfig,
        ServiceServer,
        TenantQuota,
        TransactionService,
    )

    service = TransactionService(
        ServiceConfig(seed=2, protocol="closed-nested"),
        quotas={"t0": TenantQuota(max_inflight=2, max_queue_depth=3)},
    )
    server = ServiceServer(service, session_read_timeout=0.5)
    server.start()
    try:
        code, output = run_cli(
            "load", "--port", str(server.port), "--tenants", "2",
            "--clients-per-tenant", "2", "--requests-per-client", "3",
            "--faults", "--json",
        )
        assert code == 0
        import json

        summary = json.loads(output)
        assert summary["requests"] > 0
        assert summary["committed"] > 0
        metrics = urllib.request.urlopen(
            f"http://127.0.0.1:{server.metrics_port}/metrics", timeout=5
        ).read().decode()
        assert "service_admitted_total" in metrics
        assert "# TYPE service_batches_total counter" in metrics
    finally:
        server.stop()
    assert service.audit()["ok"]
    assert not service.certify().violation


def test_shard_one_shard_is_byte_identical_to_single():
    argv = ["shard", "--seed", "11", "--smoke", "--shards", "1"]
    code_sharded, sharded = run_cli(*argv)
    code_single, single = run_cli(*argv, "--single")
    assert code_sharded == 0 and code_single == 0
    assert sharded == single
    assert "shards=1" in sharded


def test_shard_two_shards_reports_coordination():
    code, output = run_cli("shard", "--seed", "11", "--smoke", "--shards", "2")
    assert code == 0
    assert "shards=2" in output
    assert "coordinator: rounds=" in output


def test_fuzz_shards_reject_single_core_modes(capsys):
    code, _ = run_cli(
        "fuzz", "--smoke", "--seeds", "1", "--shards", "2", "--certify"
    )
    assert code == 2
    assert "--shards" in capsys.readouterr().err


def test_stats_shards_merges_per_shard_registries():
    code, output = run_cli(
        "stats", "--seed", "7", "--protocol", "page-2pl", "--smoke",
        "--shards", "2",
    )
    assert code == 0
    assert "2 shards" in output
    assert "scheduler_acquired_total" in output


def test_load_shards_mismatch_is_operational(capsys):
    from repro.service import ServiceConfig, ServiceServer, TransactionService

    service = TransactionService(ServiceConfig(seed=3, shards=2))
    server = ServiceServer(service, session_read_timeout=0.5)
    server.start()
    try:
        code, _ = run_cli(
            "load", "--port", str(server.port), "--tenants", "1",
            "--clients-per-tenant", "1", "--requests-per-client", "1",
            "--shards", "3",
        )
        assert code == 2
        assert "shards=2" in capsys.readouterr().err
        code, _ = run_cli(
            "load", "--port", str(server.port), "--tenants", "1",
            "--clients-per-tenant", "1", "--requests-per-client", "2",
            "--shards", "2",
        )
        assert code == 0
    finally:
        server.stop()
    assert service.audit()["ok"]
