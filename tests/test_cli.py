"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main


def run_cli(*argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


def test_compare_encyclopedia_two_protocols():
    code, output = run_cli(
        "compare",
        "--workload", "encyclopedia",
        "--protocols", "page-2pl", "open-nested-oo",
        "--transactions", "4",
        "--seeds", "0",
    )
    assert code == 0
    assert "page-2pl" in output and "open-nested-oo" in output
    assert "tput/1k" in output


def test_compare_banking():
    code, output = run_cli(
        "compare", "--workload", "banking", "--protocols", "open-nested-oo",
        "--transactions", "4", "--seeds", "0",
    )
    assert code == 0
    assert "banking workload" in output


def test_compare_editing_and_index():
    for workload in ("editing", "index"):
        code, output = run_cli(
            "compare", "--workload", workload, "--protocols", "page-2pl",
            "--transactions", "3", "--seeds", "0",
        )
        assert code == 0, workload
        assert "page-2pl" in output


def test_census():
    code, output = run_cli("census")
    assert code == 0
    assert "two leaves, distinct keys" in output
    assert "oo-only" in output


def test_figures():
    code, output = run_cli("figures")
    assert code == 0
    assert "Example 4 / Figure 8" in output
    assert "serial order: ['T1', 'T2', 'T3', 'T4']" in output


def test_figures_verbose_provenance():
    code, output = run_cli("figures", "--verbose")
    assert code == 0
    assert "Definition 10" in output


def test_fuzz_jobs_output_is_byte_identical():
    """--jobs must be invisible in the rendered report."""
    argv = ("fuzz", "--smoke", "--seeds", "6")
    code_serial, serial = run_cli(*argv, "--jobs", "1")
    code_parallel, parallel = run_cli(*argv, "--jobs", "2")
    assert code_serial == code_parallel == 0
    assert serial == parallel


def test_fuzz_crash_smoke():
    code, output = run_cli(
        "fuzz", "--crash", "--smoke", "--seeds", "1",
        "--protocols", "open-nested-oo",
    )
    assert code == 0
    assert "crash campaign" in output
    assert "no crash-oracle violations" in output


def test_fuzz_crash_ablate_self_test():
    # recovery without compensation replay must be caught (exit 0 = caught)
    code, output = run_cli(
        "fuzz", "--crash-ablate", "--smoke", "--seeds", "2",
        "--protocols", "multilevel", "open-nested-oo",
    )
    assert code == 0
    assert "ablation detected" in output


def test_recover_command(tmp_path):
    import json

    from repro.faults import FaultPlan
    from repro.fuzz.crash import _build_db, crash_census
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.oodb.wal import WriteAheadLog
    from repro.runtime.executor import InterleavedExecutor

    spec = generate(0, GeneratorProfile.smoke())
    census = crash_census(spec, "open-nested-oo")
    plan = FaultPlan.crash_plan(
        "page-write.after", census["page-write.after"] - 1
    )
    wal = WriteAheadLog()
    db, programs = _build_db(spec, "open-nested-oo", wal=wal, faults=plan)
    result = InterleavedExecutor(db, seed=spec.seed, faults=plan).run(programs)
    assert result.crashed
    path = tmp_path / "crashed.wal"
    with open(path, "w") as fh:
        for rec in wal.to_list():
            fh.write(json.dumps(rec, sort_keys=True) + "\n")

    code, output = run_cli("recover", str(path), "--seed", "0", "--smoke")
    assert code == 0
    assert "recovered" in output
    assert "page-store digest:" in output


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
