"""The span tracer: the paper's Example 1 call tree, pinned.

Example 1 / Figure 4 of the paper is the canonical open nested
transaction: ``T`` sends ``insert`` to the B-tree object ``TA``, which
sends ``insert`` to a leaf object, which reads and writes its page.  The
tracer must materialize exactly that tree from the event stream of a real
executed run under the open-nested protocol.
"""

from repro.locking.open_nested import OpenNestedLocking
from repro.obs import SpanTracer
from repro.obs.events import (
    EventBus,
    LockBlock,
    LockGrant,
    MethodDispatch,
    MethodReturn,
    PageAccess,
    TxnAbort,
    TxnBegin,
    TxnCommit,
    TxnRestart,
)
from repro.oodb import ObjectDatabase
from repro.structures import build_bptree


def _shape(span):
    return (span.label, [_shape(child) for child in span.children])


def _traced_example1():
    db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=128)
    tracer = SpanTracer(db.bus)
    tree = build_bptree(db, 4)
    for label, key in (("T1", "k1"), ("T2", "k2")):
        ctx = db.begin(label)
        db.send(ctx, tree, "insert", key, key.upper())
        db.commit(ctx)
    tracer.finish()
    return tracer


class TestExample1CallTree:
    def test_span_tree_is_the_papers_call_tree(self):
        tracer = _traced_example1()
        roots = tracer.trees()
        assert [root.txn for root in roots] == ["T1", "T2"]

        root = roots[0]
        assert root.label == "txn.T1"
        assert root.status == "committed"

        # T -> TA.insert (the B-tree layer)
        (tree_insert,) = root.children
        assert tree_insert.label == "BpTree.insert"
        assert "released-early" in tree_insert.notes  # open nesting

        # TA.insert reads its page to find the leaf, then sends l.insert
        tree_read, leaf_insert = tree_insert.children
        assert tree_read.obj.startswith("Page")
        assert tree_read.method == "read"
        assert leaf_insert.label == "TreeLeaf1.insert"
        assert "released-early" in leaf_insert.notes

        # l.insert is a burst of primitive accesses on the leaf's page
        accesses = leaf_insert.children
        assert [span.method for span in accesses] == [
            "read", "read", "write", "read", "read",
        ]
        assert len({span.obj for span in accesses}) == 1
        assert all(span.obj.startswith("Page") for span in accesses)
        assert {span.obj for span in accesses} != {tree_read.obj}
        assert all(span.duration == 0 for span in accesses)
        assert all(span.status == "ok" for span in accesses)

    def test_commuting_inserts_produce_identical_shapes(self):
        roots = _traced_example1().trees()
        assert _shape(roots[0].children[0]) == _shape(roots[1].children[0])

    def test_tree_for_and_render(self):
        tracer = _traced_example1()
        assert tracer.tree_for("T2") is tracer.trees()[1]
        assert tracer.tree_for("T9") is None
        rendered = tracer.render()
        assert "txn.T1" in rendered
        assert "  BpTree.insert" in rendered
        assert "<released-early>" in rendered


class TestTracerMechanics:
    """Deterministic event sequences exercise the edge cases directly."""

    def test_lock_wait_is_bracketed_onto_the_blocked_span(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(
            MethodDispatch(txn="T1", aid=("T1", 1), obj="O", method="m", tick=1)
        )
        bus.emit(LockBlock(txn="T1", obj="P", method="w", tick=3))
        bus.emit(LockGrant(txn="T1", obj="P", method="w", waited=6, tick=9))
        bus.emit(
            MethodReturn(txn="T1", aid=("T1", 1), obj="O", method="m", tick=10)
        )
        bus.emit(TxnCommit(txn="T1", tick=11))
        (root,) = tracer.trees()
        (span,) = root.children
        assert span.waits == [("P", 3, 9)]
        assert "waited=6" in span.tree_lines()[0]

    def test_grant_without_block_records_no_wait(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(LockGrant(txn="T1", obj="P", method="w", tick=2))
        bus.emit(TxnCommit(txn="T1", tick=3))
        (root,) = tracer.trees()
        assert root.waits == []

    def test_exception_unwound_frames_close_at_enclosing_return(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(
            MethodDispatch(txn="T1", aid=("T1", 1), obj="A", method="a", tick=1)
        )
        bus.emit(
            MethodDispatch(txn="T1", aid=("T1", 2), obj="B", method="b", tick=2)
        )
        # B.b dies by exception: no return of its own; A.a's return closes it
        bus.emit(
            MethodReturn(txn="T1", aid=("T1", 1), obj="A", method="a", tick=5)
        )
        bus.emit(TxnCommit(txn="T1", tick=6))
        (root,) = tracer.trees()
        (outer,) = root.children
        (inner,) = outer.children
        assert outer.end == inner.end == 5

    def test_abort_marks_root_and_unwinds_open_frames(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(
            MethodDispatch(txn="T1", aid=("T1", 1), obj="A", method="a", tick=1)
        )
        bus.emit(TxnAbort(txn="T1", reason="deadlock", tick=4))
        (root,) = tracer.trees()
        assert root.status == "aborted"
        assert "abort:deadlock" in root.notes
        (inner,) = root.children
        assert inner.status == "unwound"
        assert inner.end == 4

    def test_restart_annotates_the_aborted_attempt(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(TxnAbort(txn="T1", reason="deadlock", tick=2))
        bus.emit(TxnRestart(txn="T1", attempt=1, tick=2))
        (root,) = tracer.trees()
        assert "restarts-as-attempt:2" in root.notes

    def test_finish_closes_crashed_runs(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(TxnBegin(txn="T1", tick=0))
        bus.emit(
            MethodDispatch(txn="T1", aid=("T1", 1), obj="A", method="a", tick=1)
        )
        tracer.finish(7)
        (root,) = tracer.trees()
        assert root.status == "unfinished"
        assert root.end == 7
        assert root.children[0].status == "unwound"

    def test_events_before_begin_synthesize_a_root(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        bus.emit(
            PageAccess(txn="T1", aid=("T1", 1), obj="P", method="read", tick=4)
        )
        bus.emit(TxnCommit(txn="T1", tick=5))
        (root,) = tracer.trees()
        assert root.txn == "T1"
        assert root.children[0].label == "P.read"

    def test_detach_stops_observing(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        tracer.detach()
        assert not bus.active
        bus.emit(TxnBegin(txn="T1", tick=0))
        assert tracer.trees() == []
