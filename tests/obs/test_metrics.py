"""The metrics registry, and the uniform scheduler stats keyset."""

import pytest

from repro.analysis.compare import make_scheduler
from repro.fuzz.driver import FUZZ_PROTOCOLS
from repro.obs import STAT_KEYS, MetricsRegistry

#: the layer assignment the multilevel protocol needs to instantiate
_LAYERS = {"BpTree": 2, "TreeLeaf": 1, "Page": 0}


def _fresh_scheduler(protocol):
    return make_scheduler(protocol, _LAYERS)


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.get("a_total") is registry.counter("a_total")
        assert registry.get("missing") is None

    def test_counter_inc_and_samples(self):
        counter = MetricsRegistry().counter("a_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert list(counter.samples()) == [("a_total", {}, 5)]

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(9)
        assert gauge.value == 9

    def test_family_caches_children_per_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", labelnames=("mode",))
        child = family.labels(mode="read")
        assert family.labels(mode="read") is child
        assert family.labels(mode="write") is not child

    def test_collect_yields_in_name_order(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        names = [metric.name for metric, _ in registry.collect()]
        assert names == ["a_total", "z_total"]

    def test_as_dict_flattens_labels(self):
        registry = MetricsRegistry()
        registry.counter("f_total", "", labelnames=("mode",)).labels(
            mode="read"
        ).inc()
        assert registry.as_dict() == {'f_total{mode="read"}': 1}


class TestSchedulerStats:
    @pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
    def test_every_protocol_starts_with_the_uniform_keyset(self, protocol):
        """No more silent-empty fallbacks: every key exists, pre-zeroed."""
        stats = _fresh_scheduler(protocol).stats
        assert set(STAT_KEYS) <= set(stats)
        assert all(value == 0 for value in stats.values())

    @pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
    def test_stats_mirror_the_registry_counters(self, protocol):
        scheduler = _fresh_scheduler(protocol)
        counter = scheduler.metrics.get("scheduler_acquired_total")
        counter.inc(7)
        assert scheduler.stats["acquired"] == 7

    def test_protocol_extras_ride_on_the_same_keyset(self):
        assert "certification_cache_resets" in _fresh_scheduler(
            "optimistic-oo"
        ).stats
        assert "level_consistent_acquires" in _fresh_scheduler(
            "multilevel"
        ).stats
        for protocol in ("page-2pl", "closed-nested", "open-nested-oo"):
            stats = _fresh_scheduler(protocol).stats
            assert "lock_inheritances" in stats
            assert "early_releases" in stats
