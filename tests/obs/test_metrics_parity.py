"""Metrics/event parity over real fuzz cells: 20 seeds x five protocols.

The counters and the event stream are two independent renderings of the
same run; wherever an instrumentation site pairs a counter bump with an
event emission, the totals must agree exactly.  This is the test that
keeps the two from drifting apart as instrumentation evolves.
"""

from collections import Counter as TallyCounter

import pytest

from repro.fuzz.driver import FUZZ_PROTOCOLS, execute_cell
from repro.fuzz.generator import GeneratorProfile, generate
from repro.obs import STAT_KEYS, EventBus, EventLog

SEEDS = range(20)


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_counters_agree_with_the_event_stream(protocol):
    profile = GeneratorProfile.smoke()
    for seed in SEEDS:
        spec = generate(seed, profile)
        bus = EventBus()
        log = EventLog(bus)
        result = execute_cell(spec, protocol, bus=bus)
        stats = result.scheduler_stats
        kinds = TallyCounter(event.kind for event in log)

        # The uniform keyset: every protocol reports every key.
        assert set(STAT_KEYS) <= set(stats), (protocol, seed)

        # Counter bumps paired 1:1 with event emissions.
        assert stats["acquired"] == kinds["lock-grant"], (protocol, seed)
        assert stats["deadlocks"] == kinds["deadlock"], (protocol, seed)
        assert stats["wounds"] == kinds["wound"], (protocol, seed)

        # "waits" counts conflict re-checks, the block event only the
        # start of each blocked episode — so it can only be larger.
        assert stats["waits"] >= kinds["lock-block"], (protocol, seed)

        # Every blocked episode ends in a grant (observed by the wait
        # histogram) or in a deadlock abort.
        hist = result.db.metrics.get("lock_wait_ticks")
        assert hist.count <= kinds["lock-block"], (protocol, seed)
        assert hist.count + kinds["deadlock"] >= kinds["lock-block"], (
            protocol,
            seed,
        )

        # The executor-reported stats are the registry, verbatim.
        registry = result.db.metrics
        for key in STAT_KEYS:
            counter = registry.get(f"scheduler_{key}_total")
            assert counter.value == stats[key], (protocol, seed, key)

        # Every transaction attempt that began also ended.
        assert kinds["txn-begin"] == kinds["txn-commit"] + kinds["txn-abort"], (
            protocol,
            seed,
        )
        assert kinds["txn-commit"] >= len(result.committed), (protocol, seed)
