"""Exporter round-trips: JSONL events, Chrome traces, Prometheus text."""

import json

from repro.fuzz.driver import execute_cell
from repro.fuzz.generator import GeneratorProfile, generate
from repro.obs import (
    EventBus,
    EventLog,
    MetricsRegistry,
    SpanTracer,
    chrome_trace,
    events_from_jsonl,
    events_to_jsonl,
    prometheus_text,
    validate_chrome_trace,
)
from repro.obs.export import TICK_US


def _traced_cell(seed=3, protocol="open-nested-oo"):
    spec = generate(seed, GeneratorProfile.smoke())
    bus = EventBus()
    log = EventLog(bus)
    tracer = SpanTracer(bus)
    result = execute_cell(spec, protocol, bus=bus)
    tracer.finish(result.makespan)
    return result, log, tracer


class TestJsonl:
    def test_real_event_stream_round_trips_exactly(self):
        _, log, _ = _traced_cell()
        assert len(log) > 0
        text = events_to_jsonl(log)
        assert events_from_jsonl(text) == list(log)

    def test_blank_lines_are_ignored(self):
        _, log, _ = _traced_cell()
        text = "\n\n" + events_to_jsonl(log) + "\n\n"
        assert events_from_jsonl(text) == list(log)


class TestChromeTrace:
    def test_real_run_validates_clean(self):
        _, _, tracer = _traced_cell()
        trace = chrome_trace(tracer.trees())
        assert trace["traceEvents"]
        assert validate_chrome_trace(trace) == []

    def test_trace_is_json_serializable(self):
        _, _, tracer = _traced_cell()
        trace = chrome_trace(tracer.trees())
        assert json.loads(json.dumps(trace)) == trace

    def test_every_transaction_becomes_a_named_thread(self):
        _, _, tracer = _traced_cell()
        trace = chrome_trace(tracer.trees())
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {root.txn for root in tracer.trees()}

    def test_nesting_reproduces_the_call_tree(self):
        """Each child span's interval lies inside its parent's."""
        _, _, tracer = _traced_cell()
        for root in tracer.trees():
            for span in root.iter_spans():
                end = span.end if span.end is not None else span.start
                for child in span.children:
                    child_end = (
                        child.end if child.end is not None else child.start
                    )
                    assert span.start <= child.start
                    assert child_end <= end

    def test_ticks_scale_to_trace_microseconds(self):
        _, _, tracer = _traced_cell()
        trace = chrome_trace(tracer.trees())
        root = tracer.trees()[0]
        starts = [
            event["ts"]
            for event in trace["traceEvents"]
            if event["ph"] == "X" and event["name"] == root.label
        ]
        assert root.start * TICK_US in starts

    def test_validator_rejects_partial_overlap(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert len(problems) == 1
        assert "partial overlap" in problems[0]

    def test_validator_rejects_non_integer_timestamps(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.5, "dur": 10, "pid": 1, "tid": 1},
            ]
        }
        assert validate_chrome_trace(trace) == [
            "X event without int ts/dur: a"
        ]

    def test_validator_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]


class TestPrometheusText:
    def test_renders_help_type_and_samples(self):
        registry = MetricsRegistry()
        counter = registry.counter("widgets_total", "widgets made")
        counter.inc(3)
        gauge = registry.gauge("depth", "current depth")
        gauge.set(2)
        text = prometheus_text(registry)
        assert "# HELP widgets_total widgets made" in text
        assert "# TYPE widgets_total counter" in text
        assert "widgets_total 3" in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_labelled_family_renders_sorted_labels(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "requests_total", "requests", labelnames=("mode", "obj")
        )
        family.labels(mode="read", obj="P1").inc(2)
        family.labels(mode="write", obj="P1").inc()
        text = prometheus_text(registry)
        assert 'requests_total{mode="read",obj="P1"} 2' in text
        assert 'requests_total{mode="write",obj="P1"} 1' in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "latency", bounds=(1, 10))
        for value in (0, 5, 50):
            hist.observe(value)
        text = prometheus_text(registry)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 55" in text
        assert "lat_count 3" in text

    def test_real_run_registry_renders(self):
        result, _, _ = _traced_cell(seed=0, protocol="page-2pl")
        text = prometheus_text(result.db.metrics)
        assert "# TYPE scheduler_acquired_total counter" in text
        assert 'page_lock_requests_total{mode="read"}' in text
        assert "# TYPE lock_wait_ticks histogram" in text
