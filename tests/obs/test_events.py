"""The typed event bus: activity flag, clock, and serialization."""

import json
from dataclasses import fields

from repro.obs.events import (
    EVENT_TYPES,
    EventBus,
    EventLog,
    LockGrant,
    TxnBegin,
    event_from_dict,
    event_to_dict,
)

#: a non-default sample per field type, so round-trips exercise real values
_SAMPLES = {int: 7, str: "x", bool: False, tuple: ("a", ("b", 2))}


def _sample_event(cls):
    return cls(
        **{spec.name: _SAMPLES[type(spec.default)] for spec in fields(cls)}
    )


class TestEventBus:
    def test_inactive_until_subscribed(self):
        bus = EventBus()
        assert not bus.active
        log = EventLog(bus)
        assert bus.active
        bus.unsubscribe(log.events.append)
        assert not bus.active

    def test_active_while_any_subscriber_remains(self):
        bus = EventBus()
        first, second = EventLog(bus), EventLog(bus)
        bus.unsubscribe(first.events.append)
        assert bus.active
        bus.unsubscribe(second.events.append)
        assert not bus.active

    def test_emit_reaches_every_subscriber_in_order(self):
        bus = EventBus()
        first, second = EventLog(bus), EventLog(bus)
        event = TxnBegin(txn="T1", tick=3)
        bus.emit(event)
        assert first.events == [event]
        assert second.events == [event]

    def test_now_is_zero_without_a_clock(self):
        assert EventBus().now() == 0

    def test_now_reads_the_bound_clock(self):
        bus = EventBus()
        ticks = iter((5, 9))
        bus.clock = lambda: next(ticks)
        assert bus.now() == 5
        assert bus.now() == 9


class TestSerialization:
    def test_kinds_are_unique_and_registered(self):
        assert len(EVENT_TYPES) == 18
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_every_event_round_trips_through_json(self):
        for cls in EVENT_TYPES.values():
            event = _sample_event(cls)
            payload = json.loads(json.dumps(event_to_dict(event)))
            assert event_from_dict(payload) == event, cls

    def test_nested_tuples_are_refrozen(self):
        event = LockGrant(txn="T1", obj="O", method="m", waited=4, tick=2)
        restored = event_from_dict(event_to_dict(event))
        assert restored == event

    def test_unknown_fields_are_ignored_on_load(self):
        payload = event_to_dict(TxnBegin(txn="T1"))
        payload["added_in_a_future_version"] = 1
        assert event_from_dict(payload) == TxnBegin(txn="T1")


class TestEventLog:
    def test_collects_in_arrival_order(self):
        bus = EventBus()
        log = EventLog(bus)
        events = [TxnBegin(txn=f"T{i}", tick=i) for i in range(3)]
        for event in events:
            bus.emit(event)
        assert list(log) == events
        assert len(log) == 3
