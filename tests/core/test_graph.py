"""Unit tests for the directed-graph toolkit, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.core.graph import DirectedGraph


def test_empty_graph_is_acyclic():
    graph = DirectedGraph()
    assert graph.is_acyclic()
    assert graph.find_cycle() is None
    assert graph.topological_order() == []


def test_add_edge_and_queries():
    graph = DirectedGraph([("a", "b"), ("b", "c")])
    assert graph.has_edge("a", "b")
    assert not graph.has_edge("b", "a")
    assert graph.successors("a") == {"b"}
    assert graph.predecessors("c") == {"b"}
    assert graph.nodes == {"a", "b", "c"}
    assert len(graph) == 3
    assert set(graph) == {"a", "b", "c"}


def test_add_node_without_edges():
    graph = DirectedGraph()
    graph.add_node("solo")
    assert "solo" in graph
    assert graph.edges == set()


def test_add_edge_is_idempotent():
    graph = DirectedGraph()
    graph.add_edge("a", "b")
    graph.add_edge("a", "b")
    assert graph.edges == {("a", "b")}


def test_self_loop_is_a_cycle():
    graph = DirectedGraph([("a", "a")])
    cycle = graph.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1] == "a"


def test_simple_cycle_detected():
    graph = DirectedGraph([("a", "b"), ("b", "c"), ("c", "a")])
    cycle = graph.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    # the witness must actually be a cycle in the graph
    for src, dst in zip(cycle, cycle[1:]):
        assert graph.has_edge(src, dst)


def test_dag_has_no_cycle():
    graph = DirectedGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    assert graph.is_acyclic()


def test_topological_order_respects_edges():
    graph = DirectedGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    order = graph.topological_order()
    position = {node: i for i, node in enumerate(order)}
    for src, dst in graph.edges:
        assert position[src] < position[dst]


def test_topological_order_raises_on_cycle():
    graph = DirectedGraph([("a", "b"), ("b", "a")])
    with pytest.raises(ValueError):
        graph.topological_order()


def test_reachable_from():
    graph = DirectedGraph([("a", "b"), ("b", "c"), ("x", "y")])
    assert graph.reachable_from("a") == {"b", "c"}
    assert graph.reachable_from("c") == set()


def test_reachable_from_includes_self_on_cycle():
    graph = DirectedGraph([("a", "b"), ("b", "a")])
    assert "a" in graph.reachable_from("a")


def test_transitive_closure():
    graph = DirectedGraph([("a", "b"), ("b", "c")])
    closure = graph.transitive_closure()
    assert closure.has_edge("a", "c")
    assert closure.has_edge("a", "b")
    assert not closure.has_edge("c", "a")


def test_union_merges_edges_and_nodes():
    first = DirectedGraph([("a", "b")])
    second = DirectedGraph([("b", "c")])
    second.add_node("lonely")
    merged = first.union(second)
    assert merged.edges == {("a", "b"), ("b", "c")}
    assert "lonely" in merged
    # union must not mutate the inputs
    assert first.edges == {("a", "b")}


def test_copy_is_independent():
    graph = DirectedGraph([("a", "b")])
    clone = graph.copy()
    clone.add_edge("b", "c")
    assert not graph.has_edge("b", "c")


@pytest.mark.parametrize("seed", range(8))
def test_cycle_detection_matches_networkx(seed):
    import random

    rng = random.Random(seed)
    nodes = list(range(12))
    edges = set()
    for _ in range(25):
        src, dst = rng.sample(nodes, 2)
        edges.add((src, dst))
    ours = DirectedGraph(edges)
    theirs = nx.DiGraph(edges)
    assert ours.is_acyclic() == nx.is_directed_acyclic_graph(theirs)


@pytest.mark.parametrize("seed", range(8))
def test_reachability_matches_networkx(seed):
    import random

    rng = random.Random(seed + 100)
    nodes = list(range(10))
    edges = {tuple(rng.sample(nodes, 2)) for _ in range(20)}
    ours = DirectedGraph(edges)
    theirs = nx.DiGraph(edges)
    theirs.add_nodes_from(nodes)
    for node in ours.nodes:
        expected = set(nx.descendants(theirs, node))
        # nx.descendants always excludes the source; ours includes it when
        # the source lies on a cycle — compare modulo the source node.
        assert ours.reachable_from(node) - {node} == expected - {node}


def test_unsortable_nodes_are_supported():
    class Anchor:  # identity-hashed, unorderable
        pass

    a, b = Anchor(), Anchor()
    graph = DirectedGraph([(a, b), (b, a)])
    assert not graph.is_acyclic()
