"""Unit tests for the Definition 5 extension (Example 3 / Figure 6)."""

import pytest

from repro.core.extension import extend_system, find_offending_action
from repro.core.identifiers import is_virtual, original_object_id
from repro.core.transactions import TransactionSystem
from repro.scenarios import blink_split_system


def test_no_cycle_means_no_change():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    t1.call("A", "x").call("B", "y")
    result = extend_system(system)
    assert not result.was_extended
    assert result.summary() == "no call cycles; system unchanged"


def test_find_offending_action_detects_ancestor_on_same_object():
    scenario = blink_split_system()
    offender = find_offending_action(scenario.system)
    assert offender is scenario.rearrange


def test_blink_split_moves_rearrange_to_virtual_node():
    scenario = blink_split_system()
    result = extend_system(scenario.system)
    assert result.was_extended
    assert scenario.rearrange.obj == "Node6′"
    assert is_virtual(scenario.rearrange.obj)
    assert original_object_id(scenario.rearrange.obj) == "Node6"
    assert result.virtual_objects == {"Node6′": "Node6"}


def test_blink_split_duplicates_bystanders():
    scenario = blink_split_system()
    result = extend_system(scenario.system)
    # Node6.insert (T1) and Node6.search (T2) each get a virtual duplicate.
    originals = {dup.original for dup in result.duplicates}
    assert originals == {scenario.node_insert, scenario.bystander}
    for dup in result.duplicates:
        assert dup.virtual
        assert dup.obj == "Node6′"
        assert dup.parent is dup.original
        assert dup.seq == dup.original.seq  # Axiom 1 order replayed
        assert dup in dup.original.children


def test_extension_is_idempotent():
    scenario = blink_split_system()
    extend_system(scenario.system)
    second = extend_system(scenario.system)
    assert not second.was_extended


def test_extended_system_has_no_offenders():
    scenario = blink_split_system()
    extend_system(scenario.system)
    assert find_offending_action(scenario.system) is None


def test_virtual_object_joins_obj_set():
    scenario = blink_split_system()
    extend_system(scenario.system)
    assert "Node6′" in scenario.system.objects


def test_chain_of_cycles_gets_fresh_virtual_objects():
    # t -> m -> a, all three on O: two offenders, two virtual objects.
    system = TransactionSystem()
    t1 = system.transaction("T1")
    t = t1.call("O", "t")
    m = t.call("O", "m")
    a = m.call("O", "a")
    result = extend_system(system)
    assert find_offending_action(system) is None
    virtuals = {node.obj for node in (m, a)}
    assert all(is_virtual(v) for v in virtuals)
    assert len(virtuals) == 2  # distinct generations
    assert t.obj == "O"  # the shallowest action stays
    assert len(result.virtual_objects) == 2


def test_two_transactions_cycling_on_one_object():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    x = t1.call("O", "x")
    deep1 = x.call("P", "p").call("O", "deep1")
    t2 = system.transaction("T2")
    y = t2.call("O", "y")
    deep2 = y.call("Q", "q").call("O", "deep2")
    result = extend_system(system)
    assert find_offending_action(system) is None
    assert deep1.obj != "O" and deep2.obj != "O"
    # each break duplicated the then-current bystanders on O
    assert result.duplicates


def test_duplicate_makes_original_non_primitive_but_replays_order():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    outer = t1.call("O", "outer")
    deep = outer.call("P", "p").call("O", "deep")
    t2 = system.transaction("T2")
    bystander = t2.call("O", "bystander")
    assert bystander.is_primitive
    result = extend_system(system)
    assert not bystander.is_primitive  # it now calls its duplicate
    dup = bystander.children[0]
    assert dup.virtual and dup.is_primitive
    assert dup.seq == bystander.seq
    assert result.moved == [deep]
