"""Unit tests for dependency inheritance (Axiom 1, Definitions 10-11).

These tests pin down the paper's Example 1 behaviour: the page-level
dependency is inherited to the leaf level, stops at commuting leaf inserts,
and climbs to the top for same-key conflicts.
"""

from repro.core import analyze_system
from repro.core.dependency import DependencyAnalysis, order_by_seq
from repro.core.transactions import TransactionSystem
from repro.scenarios import (
    encyclopedia_registry,
    scenario_commuting_inserts,
    scenario_same_key_conflict,
)


def edges_by_label(graph):
    return {(src.label, dst.label) for src, dst in graph.edges}


class TestBootstrap:
    def test_conflicting_primitives_ordered_by_execution(self):
        system = TransactionSystem()
        w = system.transaction("T1").call("Page1", "write")
        r = system.transaction("T2").call("Page1", "read")
        system.order_primitives([w, r])
        analysis = DependencyAnalysis(system, encyclopedia_registry())
        sched = analysis.schedule("Page1")
        assert sched.action_dep.has_edge(w, r)
        assert not sched.action_dep.has_edge(r, w)

    def test_commuting_primitives_get_no_edge(self):
        system = TransactionSystem()
        r1 = system.transaction("T1").call("Page1", "read")
        r2 = system.transaction("T2").call("Page1", "read")
        analysis = DependencyAnalysis(system, encyclopedia_registry())
        sched = analysis.schedule("Page1")
        assert not sched.action_dep.has_edge(r1, r2)
        assert not sched.action_dep.has_edge(r2, r1)

    def test_same_transaction_sequential_primitives_commute(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        w1 = t1.call("Page1", "write")
        w2 = t1.call("Page1", "write")
        analysis = DependencyAnalysis(system, encyclopedia_registry())
        sched = analysis.schedule("Page1")
        # same process: no conflict edge, only the program-precedence edge
        assert sched.action_dep.has_edge(w1, w2)
        assert not sched.txn_dep.edges

    def test_mixed_primitive_nonprimitive_conflict_uses_execution_order(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        nonprim = t1.call("Doc", "edit", ("s1",))
        nonprim.call("Page1", "write")
        t2 = system.transaction("T2")
        prim = t2.call("Doc", "edit", ("s1",))  # same section: conflicts
        from repro.core.commutativity import CommutativityRegistry, MatrixCommutativity, ReadWriteCommutativity

        registry = CommutativityRegistry()
        registry.register_prefix("Page", ReadWriteCommutativity())
        registry.register(
            "Doc",
            MatrixCommutativity({("edit", "edit"): lambda a, b: a.args[0] != b.args[0]}),
        )
        analysis = DependencyAnalysis(system, registry)
        sched = analysis.schedule("Doc")
        assert sched.action_dep.has_edge(nonprim, prim)


class TestInheritance:
    def test_page_dependency_inherited_to_leaf_level(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        leaf1, leaf2 = scenario.leaf_actions
        # the Page4712 txn dep becomes an action dep at Leaf11
        assert schedules["Leaf11"].action_dep.has_edge(leaf1, leaf2)

    def test_inheritance_stops_at_commuting_actions(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        # the leaf inserts commute (different keys): no txn dep at Leaf11,
        # nothing propagates to BpTree
        assert schedules["Leaf11"].txn_dep.edges == set()
        assert schedules["BpTree"].action_dep.edges == set()
        assert schedules["BpTree"].txn_dep.edges == set()

    def test_conflicting_actions_propagate_to_top(self):
        scenario = scenario_same_key_conflict()
        verdict, schedules = analyze_system(scenario.system, scenario.registry)
        leaf3, leaf4 = scenario.leaf_actions
        assert schedules["Leaf11"].txn_dep.edges  # insert vs search conflict
        assert schedules["BpTree"].action_dep.edges
        # the dependency reaches the top-level transactions
        assert ("T3", "T4") in verdict.top_order_constraints

    def test_commuting_case_imposes_no_top_constraint(self):
        scenario = scenario_commuting_inserts()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert verdict.top_order_constraints == set()

    def test_dependency_direction_follows_execution_order(self):
        scenario = scenario_same_key_conflict()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        # T3's write ran first, so T3 must precede T4 — not the reverse.
        assert ("T3", "T4") in verdict.top_order_constraints
        assert ("T4", "T3") not in verdict.top_order_constraints


class TestCrossObjectClosure:
    def _system(self):
        """T1 updates X deep and Y shallow; T2 the other way around, so the
        dependencies meet only through cross-object pairs."""
        from repro.core.commutativity import CommutativityRegistry, ReadWriteCommutativity

        system = TransactionSystem()
        t1 = system.transaction("T1")
        mid1 = t1.call("M1", "work")
        w_x1 = mid1.call("X", "write")
        w_y1 = t1.call("Y", "write")
        t2 = system.transaction("T2")
        w_y2 = t2.call("Y", "write")
        mid2 = t2.call("M2", "work")
        w_x2 = mid2.call("X", "write")
        system.order_primitives([w_x1, w_y2, w_y1, w_x2])
        registry = CommutativityRegistry()
        registry.register("X", ReadWriteCommutativity())
        registry.register("Y", ReadWriteCommutativity())
        registry.register_prefix("M", ReadWriteCommutativity())
        return system, registry

    def test_closure_detects_cross_object_cycle(self):
        system, registry = self._system()
        verdict, _ = analyze_system(system, registry)
        # X orders T1 < T2 (via the mid-level callers), Y orders T2 < T1.
        assert not verdict.oo_serializable

    def test_literal_mode_misses_it(self):
        system, registry = self._system()
        verdict, _ = analyze_system(system, registry, propagate_cross_object=False)
        # Documented gap of the literal Definition 15/16 reading: the
        # call-depth asymmetry hides the contradiction from the per-object
        # action-level acyclicity checks.
        assert verdict.oo_serializable


def test_order_by_seq():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    a = t1.call("O", "a")
    b = t1.call("O", "b")
    system.order_primitives([b, a])
    assert order_by_seq([a, b]) == [b, a]
