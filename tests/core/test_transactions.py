"""Unit tests for transaction systems (Definitions 4 and 6)."""

import pytest

from repro.core.identifiers import SYSTEM_OBJECT
from repro.core.transactions import TransactionSystem
from repro.errors import ModelError


def test_transaction_roots_live_on_system_object():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    assert t1.root.obj == SYSTEM_OBJECT
    assert t1.root.aid == (1,)
    assert system.transaction().label == "T2"  # auto-label continues


def test_duplicate_labels_rejected():
    system = TransactionSystem()
    system.transaction("T1")
    with pytest.raises(ModelError):
        system.transaction("T1")


def test_top_lookup():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    assert system.top("T1") is t1
    with pytest.raises(ModelError):
        system.top("T9")


def test_objects_contains_accessed_and_declared():
    system = TransactionSystem()
    system.declare_object("Ghost")
    txn = system.transaction("T1")
    txn.call("Enc", "insertItem", ("k",))
    assert {"Ghost", "Enc", SYSTEM_OBJECT} <= system.objects


def test_seq_is_global_across_transactions():
    system = TransactionSystem()
    a = system.transaction("T1").call("O", "a")
    b = system.transaction("T2").call("O", "b")
    assert b.seq > a.seq


def test_actions_on_returns_seq_order():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    t2 = system.transaction("T2")
    first = t1.call("O", "x")
    second = t2.call("O", "y")
    third = t1.call("O", "z")
    assert system.actions_on("O") == [first, second, third]


def test_primitive_actions_on():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    outer = t1.call("O", "outer")
    outer.call("P", "inner")
    leaf = t1.call("O", "leaf")
    assert system.primitive_actions_on("O") == [leaf]


def test_transactions_on_are_direct_callers():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    tree_action = t1.call("BpTree", "insert", ("k",))
    tree_action.call("Leaf11", "insert", ("k",))
    callers = system.transactions_on("Leaf11")
    assert callers == [tree_action]
    # the root is the caller for actions the transaction sends directly
    assert system.transactions_on("BpTree") == [t1.root]


def test_transactions_on_deduplicates_callers():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    leaf_insert = t1.call("Leaf11", "insert", ("k",))
    leaf_insert.call("Page1", "read")
    leaf_insert.call("Page1", "write")
    assert system.transactions_on("Page1") == [leaf_insert]


def test_order_primitives_assigns_listed_order():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    t2 = system.transaction("T2")
    a = t1.call("P", "read")
    b = t2.call("P", "write")
    system.order_primitives([b, a])
    assert b.seq < a.seq
    assert system.actions_on("P") == [b, a]


def test_order_primitives_rejects_non_primitive():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    outer = t1.call("O", "outer")
    outer.call("P", "inner")
    with pytest.raises(ModelError):
        system.order_primitives([outer])


def test_all_actions_spans_transactions():
    system = TransactionSystem()
    system.transaction("T1").call("A", "x")
    system.transaction("T2").call("B", "y")
    methods = {a.method for a in system.all_actions()}
    assert {"T1", "T2", "x", "y"} == methods


def test_pretty_renders_all_tops():
    system = TransactionSystem()
    system.transaction("T1").call("A", "x")
    system.transaction("T2")
    text = system.pretty()
    assert "T1" in text and "T2" in text and "A.x()" in text
