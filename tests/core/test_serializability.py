"""Unit tests for Definitions 12-16 and the conventional baseline."""

import pytest

from repro.core import analyze_system
from repro.core.dependency import DependencyAnalysis
from repro.core.serializability import (
    conventional_constraints,
    conventional_serializable,
    conventional_serialization_graph,
    equivalent,
    judge_object,
)
from repro.core.transactions import TransactionSystem
from repro.scenarios import (
    encyclopedia_registry,
    example4_system,
    scenario_commuting_inserts,
    scenario_same_key_conflict,
)


class TestExample1Verdicts:
    def test_commuting_inserts_oo_serializable(self):
        scenario = scenario_commuting_inserts()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert verdict.oo_serializable
        assert verdict.top_order_constraints == set()
        assert verdict.serial_order is not None

    def test_same_key_conflict_still_serializable_but_constrained(self):
        scenario = scenario_same_key_conflict()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert verdict.oo_serializable
        assert verdict.top_order_constraints == {("T3", "T4")}
        assert verdict.serial_order == ["T3", "T4"]

    def test_oo_constraints_are_a_subset_of_conventional(self):
        for build in (scenario_commuting_inserts, scenario_same_key_conflict):
            scenario = build()
            verdict, _ = analyze_system(scenario.system, scenario.registry)
            conventional = conventional_constraints(scenario.system)
            assert verdict.top_order_constraints <= conventional

    def test_headline_claim_fewer_constraints(self):
        scenario = scenario_commuting_inserts()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        conventional = conventional_constraints(scenario.system)
        assert len(verdict.top_order_constraints) < len(conventional)


class TestExample4:
    def test_consistent_variant_is_oo_serializable(self):
        scenario = example4_system()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert verdict.oo_serializable
        assert verdict.serial_order == ["T1", "T2", "T3", "T4"]

    def test_consistent_variant_constraints(self):
        scenario = example4_system()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert verdict.top_order_constraints == {
            ("T1", "T2"),
            ("T1", "T4"),
            ("T2", "T3"),
            ("T2", "T4"),
        }

    def test_added_dependencies_recorded_at_both_objects(self):
        scenario = example4_system()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        # Item8's callers live on Enc and LinkedList: the write->read
        # dependency must appear in both objects' added relations.
        for oid in ("Enc", "LinkedList"):
            added = schedules[oid].added_dep.edges
            assert added, f"expected added dependencies at {oid}"

    def test_anomalous_variant_rejected_by_closure(self):
        scenario = example4_system(anomalous=True)
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        assert not verdict.oo_serializable
        assert ("T2", "T4") in verdict.top_order_constraints
        assert ("T4", "T2") in verdict.top_order_constraints

    def test_anomalous_variant_accepted_by_literal_reading(self):
        scenario = example4_system(anomalous=True)
        verdict, _ = analyze_system(
            scenario.system, scenario.registry, propagate_cross_object=False
        )
        assert verdict.oo_serializable  # the documented Definition 15/16 gap

    def test_anomalous_variant_not_conventionally_serializable(self):
        scenario = example4_system(anomalous=True)
        assert not conventional_serializable(scenario.system)

    def test_describe_mentions_every_object(self):
        scenario = example4_system()
        verdict, _ = analyze_system(scenario.system, scenario.registry)
        text = verdict.describe()
        for oid in ("Enc", "BpTree", "Leaf11", "Item8"):
            assert oid in text
        assert "system oo-serializable: True" in text


class TestJudgeObject:
    def test_verdict_fields_for_clean_schedule(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        verdict = judge_object(schedules["Page4712"])
        assert verdict.oid == "Page4712"
        assert verdict.conform
        assert verdict.action_dep_acyclic
        assert verdict.serial_equivalent_exists
        assert verdict.combined_acyclic
        assert verdict.oo_serializable
        assert verdict.action_cycle is None

    def test_cycle_witness_reported(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        # build a write/write ping-pong on one page: w1 < w2' < w1' < w2
        a1 = t1.call("Page1", "write")
        b1 = t2.call("Page1", "write")
        a2 = t1.call("Page1", "write")
        b2 = t2.call("Page1", "write")
        system.order_primitives([a1, b1, a2, b2])
        analysis = DependencyAnalysis(system, encyclopedia_registry())
        sched = analysis.schedule("Page1")
        verdict = judge_object(sched)
        assert not verdict.serial_equivalent_exists
        assert verdict.top_cycle is not None


class TestEquivalence:
    def test_schedule_equivalent_to_itself(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        assert equivalent(schedules["Page4712"], schedules["Page4712"])

    def test_different_interleavings_same_dependencies_are_equivalent(self):
        # Two executions of the commuting scenario with opposite page orders
        # have *different* txn deps at the page (direction flips) — but the
        # re-executed same order is equivalent by labels.
        first = scenario_commuting_inserts()
        second = scenario_commuting_inserts()
        _, s1 = analyze_system(first.system, first.registry)
        _, s2 = analyze_system(second.system, second.registry)
        assert equivalent(s1["Page4712"], s2["Page4712"])
        assert equivalent(s1["Leaf11"], s2["Leaf11"])

    def test_opposite_order_is_not_equivalent_at_the_page(self):
        first = scenario_commuting_inserts()
        _, s1 = analyze_system(first.system, first.registry)

        second = scenario_commuting_inserts()
        # flip the page-level interleaving: T2 before T1
        prims = sorted(
            (a for a in second.system.all_actions() if a.is_primitive),
            key=lambda a: a.seq,
        )
        t2_first = [p for p in prims if p.top == "T2"] + [
            p for p in prims if p.top == "T1"
        ]
        second.system.order_primitives(t2_first)
        _, s2 = analyze_system(second.system, second.registry)
        assert not equivalent(s1["Page4712"], s2["Page4712"])


class TestConventionalBaseline:
    def test_serial_history_is_serializable(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        t1.call("Page1", "write")
        t1.call("Page2", "write")
        t2.call("Page1", "write")
        t2.call("Page2", "write")
        assert conventional_serializable(system)

    def test_write_cycle_is_not_serializable(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        a = t1.call("Page1", "write")
        b = t2.call("Page2", "write")
        c = t1.call("Page2", "write")
        d = t2.call("Page1", "write")
        system.order_primitives([a, b, c, d])
        assert not conventional_serializable(system)

    def test_reads_do_not_conflict(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        a = t1.call("Page1", "read")
        b = t2.call("Page1", "read")
        system.order_primitives([a, b])
        graph = conventional_serialization_graph(system)
        assert graph.edges == set()

    def test_intra_transaction_pairs_ignored(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t1.call("Page1", "write")
        t1.call("Page1", "write")
        graph = conventional_serialization_graph(system)
        assert graph.edges == set()

    def test_only_primitive_actions_considered(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        outer = t1.call("Doc", "edit")  # non-primitive wrapper
        outer.call("Page1", "write")
        t2 = system.transaction("T2")
        t2.call("Doc", "edit").call("Page2", "write")
        graph = conventional_serialization_graph(system)
        # the Doc.edit wrappers are not primitive; no shared page -> no edge
        assert graph.edges == set()


def test_analyze_system_skips_extension_on_request():
    scenario = scenario_commuting_inserts()
    verdict, schedules = analyze_system(
        scenario.system, scenario.registry, extend=False
    )
    assert verdict.oo_serializable
    assert all("′" not in oid for oid in schedules)
