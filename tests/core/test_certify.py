"""Unit and adversarial tests for the Vbox-style black-box certifier.

The adversarial half mutates executed histories *after* the fact —
swapping effect stamps so the committed order and the object schedules
disagree — and demands two things of the certifier: it must never take
the fast path past a suspicious stamp (escalation), and whatever path it
takes must reach exactly the exact engine's verdict (parity).
"""

import random

import pytest

from repro.core.certify import (
    ESCALATE_CONFLICT,
    ESCALATE_NONMONOTONE,
    ESCALATE_WINDOW,
    CertificationReport,
    certify_history,
    judge_history,
)
from repro.fuzz.driver import execute_cell
from repro.fuzz.generator import GeneratorProfile, generate
from repro.fuzz.oracle import check_history, strictness_for


def _fast_report(ok: bool = True) -> CertificationReport:
    return CertificationReport(
        ok=ok,
        committed=7,
        actions=120,
        fast_commits=7 if ok else 5,
        escalated_commits=0 if ok else 2,
        stragglers_scanned=3,
        escalated=not ok,
        escalation_reason=None if ok else ESCALATE_CONFLICT,
    )


class TestReport:
    def test_fast_acceptance_description(self):
        report = _fast_report()
        assert report.oo_serializable and not report.violation
        assert "certified oo-serializable" in report.description
        assert "fast path" in report.description

    def test_escalated_description_names_the_reason(self):
        report = _fast_report(ok=False)
        assert report.violation
        assert ESCALATE_CONFLICT in report.description
        assert "NOT oo-serializable" in report.description

    def test_as_oracle_report_mirrors_the_verdict(self):
        for ok in (True, False):
            oracle = _fast_report(ok=ok).as_oracle_report()
            assert oracle.oo_serializable is ok
            assert oracle.conventional_serializable is ok
            assert oracle.committed == 7
            assert oracle.oo_constraints == 0


def _committed_primitive_groups(result):
    """Non-virtual primitive actions of committed trees, grouped by object."""
    committed = result.committed_labels
    groups: dict = {}
    for txn in result.db.system.tops:
        if txn.label not in committed:
            continue
        for action in txn.actions():
            if action.is_primitive and not action.virtual:
                groups.setdefault(action.obj, []).append(action)
    return groups


def _long_cell(seed: int = 0, protocol: str = "page-2pl"):
    return execute_cell(generate(seed, GeneratorProfile.long(40)), protocol)


def _parity(result, protocol) -> CertificationReport:
    """Certify, then cross-check verdict and witness against the oracle."""
    strict = strictness_for(protocol)
    report = certify_history(result, strict_cross_object=strict)
    exact = check_history(result, strict_cross_object=strict)
    assert report.oo_serializable == exact.oo_serializable
    if report.violation:
        assert report.description == exact.description
        assert report.as_oracle_report().description == exact.description
    return report


class TestFastPath:
    def test_long_conflict_sparse_history_certifies_all_fast(self):
        result = _long_cell()
        report = certify_history(
            result, strict_cross_object=strictness_for("page-2pl")
        )
        assert report.ok and not report.escalated
        assert report.committed > 0
        assert report.fast_commits == report.committed
        assert report.escalated_commits == 0

    def test_judge_history_agrees_with_oracle(self):
        for protocol in ("page-2pl", "open-nested-oo"):
            result = execute_cell(
                generate(2, GeneratorProfile.smoke()), protocol
            )
            strict = strictness_for(protocol)
            assert judge_history(
                result, strict_cross_object=strict
            ) == check_history(
                result, strict_cross_object=strict
            ).violation


class TestAdversarialMutations:
    def test_swapped_cross_top_conflicting_stamps_escalate(self):
        # In an all-fast history every conflicting cross-transaction pair's
        # stamp order matches commit order; swapping one such pair plants a
        # backward conflicting straggler the screen must refuse to certify.
        protocol = "page-2pl"
        result = _long_cell(protocol=protocol)
        registry = result.db.commutativity_registry()
        pair = None
        for _, actions in sorted(_committed_primitive_groups(result).items()):
            actions.sort(key=lambda a: a.seq)
            pair = next(
                (
                    (a, b)
                    for i, a in enumerate(actions)
                    for b in actions[i + 1 :]
                    if a.top is not b.top and registry.in_conflict(a, b)
                ),
                None,
            )
            if pair is not None:
                break
        assert pair is not None, "workload has no conflicting cross-top pair"
        a, b = pair
        a.seq, b.seq = b.seq, a.seq
        report = _parity(result, protocol)
        assert report.escalated
        assert report.escalation_reason in (
            ESCALATE_CONFLICT,
            ESCALATE_WINDOW,
            ESCALATE_NONMONOTONE,
        )

    def test_nonmonotone_stamps_inside_one_tree_escalate(self):
        protocol = "page-2pl"
        result = _long_cell(seed=1, protocol=protocol)
        mutated = False
        for txn in result.db.system.tops:
            if txn.label not in result.committed_labels:
                continue
            per_obj: dict = {}
            for action in txn.actions():
                if action.is_primitive and not action.virtual:
                    per_obj.setdefault(action.obj, []).append(action)
            pair = next(
                (acts[:2] for acts in per_obj.values() if len(acts) >= 2
                 and acts[0].seq != acts[1].seq),
                None,
            )
            if pair is not None:
                first, second = pair  # DFS order
                hi, lo = max(first.seq, second.seq), min(first.seq, second.seq)
                first.seq, second.seq = hi, lo
                mutated = True
                break
        assert mutated, "no tree touches one object twice"
        report = _parity(result, protocol)
        assert report.escalated

    @pytest.mark.parametrize("protocol", ["page-2pl", "open-nested-oo"])
    def test_random_stamp_swaps_never_diverge(self, protocol):
        # Whatever a mutation does — escalate, violate, or stay benign —
        # the certifier's verdict must equal the exact engine's, and any
        # witness must be byte-identical.
        rng = random.Random(0xC14)
        for seed in (0, 3):
            result = execute_cell(
                generate(seed, GeneratorProfile.smoke()), protocol
            )
            pool = [
                actions
                for actions in _committed_primitive_groups(result).values()
                if len(actions) >= 2
            ]
            for actions in pool[:2]:
                a, b = rng.sample(actions, 2)
                a.seq, b.seq = b.seq, a.seq
            _parity(result, protocol)
