"""Unit tests for object and action identifiers."""

import pytest

from repro.core.identifiers import (
    SYSTEM_OBJECT,
    format_action_id,
    is_call_ancestor,
    is_virtual,
    original_object_id,
    parse_action_id,
    virtual_object_id,
)


def test_virtual_object_id_first_generation():
    assert virtual_object_id("Node6") == "Node6′"


def test_virtual_object_id_later_generation():
    assert virtual_object_id("Node6", 3) == "Node6′′′"


def test_virtual_object_id_rejects_bad_generation():
    with pytest.raises(ValueError):
        virtual_object_id("Node6", 0)


def test_is_virtual():
    assert not is_virtual("Node6")
    assert is_virtual(virtual_object_id("Node6"))


def test_original_object_id_strips_all_markers():
    assert original_object_id(virtual_object_id("Leaf11", 2)) == "Leaf11"
    assert original_object_id("Leaf11") == "Leaf11"


def test_format_and_parse_roundtrip():
    aid = (1, 1, 2)
    assert format_action_id(aid) == "1.1.2"
    assert parse_action_id("1.1.2") == aid


def test_parse_action_id_rejects_empty():
    with pytest.raises(ValueError):
        parse_action_id("")


def test_is_call_ancestor_proper_prefix():
    assert is_call_ancestor((1,), (1, 2))
    assert is_call_ancestor((1, 2), (1, 2, 7))
    assert not is_call_ancestor((1, 2), (1, 2))  # not reflexive
    assert not is_call_ancestor((1, 2), (1, 3, 1))
    assert not is_call_ancestor((2,), (1, 2))


def test_system_object_is_reserved_looking():
    assert SYSTEM_OBJECT.startswith("$")
