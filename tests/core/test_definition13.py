"""Cross-validation of the Definition 13(i) reading against the letter.

DESIGN.md (reconstruction decision 3) implements "there exists an
equivalent serial object schedule" as acyclicity of the transaction
dependency relation over the object's callers.  These tests validate that
reading by brute force on small systems: enumerate every *serial* execution
(top-level transactions contiguous, per Definition 8), compute its
transaction dependency relation per object (Definition 12 equivalence), and
compare with the implemented verdict.

The exact claim checked: for every enumerated interleaving of the small
scenario families,

    caller-level acyclicity at every object  <=>  for every object there is
    a serial execution whose dependency relation matches (Definition 12)

— modulo the dependency *directions* that a serial execution fixes: a
serial schedule realizes one global order, so per-object relations are
compared as sets of (caller-aid, caller-aid) pairs.
"""

from __future__ import annotations

import itertools

from repro.core.serializability import analyze_system
from repro.scenarios.schedule_space import (
    single_leaf_commuting,
    two_leaf_commuting,
    two_leaf_same_key,
)
from repro.core.enumerate import interleavings


def serial_relations(build):
    """Per-object txn-dep relations of every *serial* execution."""
    probe, _ = build()
    n = len(probe.tops)
    relations = []
    for order in itertools.permutations(range(n)):
        system, registry = build()
        streams = [
            [a for a in txn.actions() if a.is_primitive] for txn in system.tops
        ]
        sequence = [prim for index in order for prim in streams[index]]
        system.order_primitives(sequence)
        _, schedules = analyze_system(system, registry)
        relations.append(
            {
                oid: frozenset(
                    (src.aid, dst.aid) for src, dst in sched.txn_dep.edges
                )
                for oid, sched in schedules.items()
            }
        )
    return relations


def interleaved_runs(build):
    """Yield (verdict, per-object relations) for every interleaving."""
    probe, _ = build()
    counts = [
        sum(1 for a in txn.actions() if a.is_primitive) for txn in probe.tops
    ]
    for order in interleavings(counts):
        system, registry = build()
        streams = [
            [a for a in txn.actions() if a.is_primitive] for txn in system.tops
        ]
        positions = [0] * len(streams)
        sequence = []
        for stream in order:
            sequence.append(streams[stream][positions[stream]])
            positions[stream] += 1
        system.order_primitives(sequence)
        verdict, schedules = analyze_system(system, registry)
        relations = {
            oid: frozenset((src.aid, dst.aid) for src, dst in sched.txn_dep.edges)
            for oid, sched in schedules.items()
        }
        yield verdict, relations


def check_family(build):
    serial = serial_relations(build)
    for verdict, relations in interleaved_runs(build):
        # literal Def 13(i), object by object: some serial execution has
        # the same dependency relation at this object (Def 12)
        literal_ok = all(
            any(reference[oid] == relation for reference in serial)
            for oid, relation in relations.items()
        )
        implemented_ok = all(
            v.serial_equivalent_exists for v in verdict.object_verdicts.values()
        )
        assert implemented_ok == literal_ok, (
            "caller-acyclicity disagrees with the literal 'exists equivalent "
            f"serial schedule' reading: implemented={implemented_ok} "
            f"literal={literal_ok}"
        )


def test_single_leaf_family():
    check_family(single_leaf_commuting)


def test_two_leaf_commuting_family():
    check_family(two_leaf_commuting)


def test_two_leaf_same_key_family():
    check_family(two_leaf_same_key)
