"""Tests for dependency provenance (why each edge exists)."""

from repro.core import analyze_system
from repro.scenarios import example4_system, scenario_commuting_inserts


def test_axiom1_reason_recorded():
    scenario = scenario_commuting_inserts()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    page = schedules["Page4712"]
    (edge,) = [
        (s, d) for s, d in page.action_dep.edges if s.top != d.top
    ][:1] or [None]
    src, dst = edge
    assert "Axiom 1" in page.explain("action", src, dst)


def test_inheritance_reason_recorded():
    scenario = scenario_commuting_inserts()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    leaf = schedules["Leaf11"]
    leaf1, leaf2 = scenario.leaf_actions
    assert "Definition 11: inherited from Page4712" == leaf.explain(
        "action", leaf1, leaf2
    )


def test_lift_reason_recorded():
    scenario = example4_system()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    item8 = schedules["Item8"]
    assert item8.txn_dep.edges
    src, dst = next(iter(item8.txn_dep.edges))
    assert item8.explain("txn", src, dst).startswith("Definition 10")


def test_added_reason_recorded():
    scenario = example4_system()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    enc = schedules["Enc"]
    assert enc.added_dep.edges
    src, dst = next(iter(enc.added_dep.edges))
    assert enc.explain("added", src, dst).startswith("Definition 15")


def test_program_precedence_reason():
    scenario = example4_system()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    enc = schedules["Enc"]
    insert = scenario.named["T2.Enc.insertItem"]
    change = scenario.named["T2.Enc.changeItem"]
    assert enc.action_dep.has_edge(insert, change)
    assert "Definition 7" in enc.explain("action", insert, change)


def test_verbose_describe_includes_reasons():
    scenario = example4_system()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    text = schedules["Item8"].describe(verbose=True)
    assert "Definition 10" in text


def test_unknown_edge_explained_gracefully():
    scenario = scenario_commuting_inserts()
    _, schedules = analyze_system(scenario.system, scenario.registry)
    leaf = schedules["Leaf11"]
    leaf1, leaf2 = scenario.leaf_actions
    assert leaf.explain("txn", leaf1, leaf2) == "(unknown)"
