"""Property-based tests for the core model (hypothesis).

The generators build random transaction systems over a small universe of
objects with mixed read/write and key-based semantics, then check the
paper's structural invariants:

- serial executions are always oo-serializable and conventionally
  serializable;
- oo-serializability admits a superset of the conventionally serializable
  schedules (whenever the conventional criterion accepts, so does ours,
  given semantics at least as permissive as read/write);
- the Definition 5 extension terminates, is idempotent and leaves no
  offending action;
- the dependency fixpoint is deterministic.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze_system
from repro.core.commutativity import (
    CommutativityRegistry,
    MatrixCommutativity,
    ReadWriteCommutativity,
)
from repro.core.extension import extend_system, find_offending_action
from repro.core.serializability import conventional_serializable
from repro.core.transactions import TransactionSystem

PAGES = [f"Page{i}" for i in range(4)]
CONTAINERS = [f"Box{i}" for i in range(3)]
KEYS = ["a", "b", "c"]


def registry() -> CommutativityRegistry:
    reg = CommutativityRegistry()
    reg.register_prefix("Page", ReadWriteCommutativity())
    reg.register_prefix(
        "Box",
        MatrixCommutativity(
            {
                ("get", "get"): True,
                ("get", "put"): lambda a, b: a.args[0] != b.args[0],
                ("put", "put"): lambda a, b: a.args[0] != b.args[0],
            }
        ),
    )
    return reg


@st.composite
def transaction_programs(draw):
    """A list of transaction programs; each program is a list of operations.

    An operation is either a direct page access or a container operation
    that spans one or two page accesses underneath.
    """
    n_txns = draw(st.integers(min_value=1, max_value=4))
    programs = []
    for _ in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=4))
        ops = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["page", "container"]))
            if kind == "page":
                ops.append(
                    (
                        "page",
                        draw(st.sampled_from(PAGES)),
                        draw(st.sampled_from(["read", "write"])),
                    )
                )
            else:
                ops.append(
                    (
                        "container",
                        draw(st.sampled_from(CONTAINERS)),
                        draw(st.sampled_from(["get", "put"])),
                        draw(st.sampled_from(KEYS)),
                        draw(st.sampled_from(PAGES)),
                    )
                )
        programs.append(ops)
    return programs


def build_system(programs, interleave_seed=None):
    """Instantiate the programs; optionally shuffle the primitive order."""
    system = TransactionSystem()
    primitives = []
    for program in programs:
        txn = system.transaction()
        for op in program:
            if op[0] == "page":
                _, page, method = op
                primitives.append(txn.call(page, method))
            else:
                _, box, method, key, page = op
                container_action = txn.call(box, method, (key,))
                primitives.append(
                    container_action.call(
                        page, "read" if method == "get" else "write"
                    )
                )
    if interleave_seed is not None:
        rng = random.Random(interleave_seed)
        by_txn: dict[str, list] = {}
        for prim in primitives:
            by_txn.setdefault(prim.top, []).append(prim)
        # merge per-transaction streams in random order (preserving each
        # transaction's program order)
        merged = []
        streams = [list(v) for v in by_txn.values()]
        while streams:
            stream = rng.choice(streams)
            merged.append(stream.pop(0))
            if not stream:
                streams.remove(stream)
        system.order_primitives(merged)
    return system


@settings(max_examples=60, deadline=None)
@given(transaction_programs())
def test_serial_execution_always_serializable(programs):
    system = build_system(programs)  # construction order == serial order
    verdict, schedules = analyze_system(system, registry())
    assert conventional_serializable(system)
    assert verdict.oo_serializable
    for sched in schedules.values():
        assert sched.is_conform()


@settings(max_examples=60, deadline=None)
@given(transaction_programs(), st.integers(min_value=0, max_value=2**16))
def test_conventionally_serializable_implies_oo_serializable(programs, seed):
    system = build_system(programs, interleave_seed=seed)
    if conventional_serializable(system):
        verdict, _ = analyze_system(system, registry())
        assert verdict.oo_serializable, (
            "oo-serializability must admit every conventionally "
            "serializable schedule"
        )


@settings(max_examples=60, deadline=None)
@given(transaction_programs(), st.integers(min_value=0, max_value=2**16))
def test_oo_constraints_subset_of_conventional(programs, seed):
    from repro.core.serializability import conventional_constraints

    system = build_system(programs, interleave_seed=seed)
    verdict, _ = analyze_system(system, registry())
    conventional = conventional_constraints(system)
    # Each oo top-level constraint must have a conventional counterpart:
    # semantic reasoning can only drop constraints, never invent them.
    assert verdict.top_order_constraints <= conventional


@settings(max_examples=40, deadline=None)
@given(transaction_programs(), st.integers(min_value=0, max_value=2**16))
def test_analysis_is_deterministic(programs, seed):
    system1 = build_system(programs, interleave_seed=seed)
    system2 = build_system(programs, interleave_seed=seed)
    verdict1, s1 = analyze_system(system1, registry())
    verdict2, s2 = analyze_system(system2, registry())
    assert verdict1.oo_serializable == verdict2.oo_serializable
    assert verdict1.top_order_constraints == verdict2.top_order_constraints
    assert {o: s.txn_dep_pairs() for o, s in s1.items()} == {
        o: s.txn_dep_pairs() for o, s in s2.items()
    }


@st.composite
def cyclic_call_trees(draw):
    """Random call trees where children may reuse ancestor objects."""
    system = TransactionSystem()
    objects = [f"O{i}" for i in range(draw(st.integers(1, 3)))]
    for _ in range(draw(st.integers(1, 3))):
        txn = system.transaction()
        frontier = [txn.root]
        for _ in range(draw(st.integers(1, 6))):
            parent = draw(st.sampled_from(frontier))
            child = parent.call(draw(st.sampled_from(objects)), "m")
            frontier.append(child)
    return system


@settings(max_examples=60, deadline=None)
@given(cyclic_call_trees())
def test_extension_terminates_and_clears_offenders(system):
    result = extend_system(system)
    assert find_offending_action(system) is None
    # idempotence
    second = extend_system(system)
    assert not second.was_extended
    # every duplicate hangs off its original and shares its seq stamp
    for dup in result.duplicates:
        assert dup.parent is dup.original
        assert dup.seq == dup.original.seq


@settings(max_examples=40, deadline=None)
@given(cyclic_call_trees())
def test_extension_preserves_action_multiset_per_original_object(system):
    from repro.core.identifiers import SYSTEM_OBJECT, original_object_id

    before = {}
    for action in system.all_actions():
        if action.obj != SYSTEM_OBJECT:
            before[original_object_id(action.obj)] = (
                before.get(original_object_id(action.obj), 0) + 1
            )
    extend_system(system)
    after = {}
    for action in system.all_actions():
        if action.virtual or action.obj == SYSTEM_OBJECT:
            continue  # duplicates are new; originals must all survive
        after[original_object_id(action.obj)] = (
            after.get(original_object_id(action.obj), 0) + 1
        )
    assert before == after
