"""Tests of the exhaustive schedule-space enumeration."""

import pytest

from repro.core.enumerate import (
    classify_schedules,
    count_interleavings,
    interleavings,
)
from repro.scenarios.schedule_space import (
    single_leaf_commuting,
    three_txn_ring,
    two_leaf_commuting,
    two_leaf_same_key,
)


class TestInterleavings:
    def test_counts_match_multinomial(self):
        for counts in ([2, 2], [1, 1, 1], [3, 1], [2, 2, 2]):
            generated = list(interleavings(counts))
            assert len(generated) == count_interleavings(counts)
            assert len(set(generated)) == len(generated)  # all distinct

    def test_each_interleaving_respects_stream_lengths(self):
        for order in interleavings([2, 1]):
            assert order.count(0) == 2 and order.count(1) == 1

    def test_single_stream(self):
        assert list(interleavings([3])) == [(0, 0, 0)]

    def test_empty(self):
        assert list(interleavings([])) == [()]


class TestClassification:
    def test_single_leaf_criteria_coincide(self):
        space = classify_schedules(single_leaf_commuting)
        assert space.total == 6
        assert space.oo_only == 0
        assert space.conventional_only == 0
        assert space.conventional_ok == space.oo_ok == 2

    def test_two_leaf_commuting_full_admission(self):
        space = classify_schedules(two_leaf_commuting)
        assert space.total == 6
        assert space.oo_ok == 6  # every per-object-atomic schedule admitted
        assert space.conventional_ok == 2
        assert space.oo_only == 4
        assert space.gain == pytest.approx(2.0)

    def test_same_keys_close_the_gap(self):
        space = classify_schedules(two_leaf_same_key)
        assert space.oo_only == 0
        assert space.conventional_ok == space.oo_ok

    def test_ring_census(self):
        space = classify_schedules(three_txn_ring)
        assert space.total == 90
        assert space.conventional_only == 0
        assert space.oo_ok == 90
        assert space.conventional_ok < space.oo_ok

    def test_limit_caps_enumeration(self):
        space = classify_schedules(three_txn_ring, limit=10)
        assert space.total == 10

    def test_examples_recorded(self):
        space = classify_schedules(two_leaf_commuting)
        assert "both" in space.examples
        assert "oo_only" in space.examples

    def test_row_and_headers_align(self):
        space = classify_schedules(single_leaf_commuting)
        assert len(space.row()) == len(space.headers())
