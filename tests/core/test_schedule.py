"""Unit tests for object schedules: conformity and seriality (Defs 6-8)."""

from repro.core import analyze_system
from repro.core.schedule import ObjectSchedule, program_precedes
from repro.core.transactions import TransactionSystem
from repro.scenarios import (
    encyclopedia_registry,
    figure5_tree,
    scenario_commuting_inserts,
)


class TestProgramPrecedes:
    def test_sibling_order(self):
        tree = figure5_tree()
        assert program_precedes(tree.a111, tree.a112)
        assert not program_precedes(tree.a112, tree.a111)

    def test_inherited_from_ancestor_action_set(self):
        tree = figure5_tree()
        # a11 precedes a12, therefore a113 precedes a121 (Definition 7's
        # "actions must follow the precedence given for their calling
        # transactions as well").
        assert program_precedes(tree.a113, tree.a121)

    def test_caller_precedes_callee(self):
        tree = figure5_tree()
        assert program_precedes(tree.a11, tree.a111)
        assert not program_precedes(tree.a111, tree.a11)

    def test_parallel_branches_unordered(self):
        tree = figure5_tree(parallel_branches=True)
        assert not program_precedes(tree.a113, tree.a121)
        assert not program_precedes(tree.a121, tree.a113)

    def test_across_transactions_no_precedence(self):
        system = TransactionSystem()
        x = system.transaction("T1").call("O", "x")
        y = system.transaction("T2").call("O", "y")
        assert not program_precedes(x, y)


def _single_object_schedule(actions, system):
    sched = ObjectSchedule(system=system, oid=actions[0].obj)
    sched.actions = sorted(actions, key=lambda a: a.seq)
    return sched


class TestConform:
    def test_execution_in_program_order_is_conform(self):
        tree = figure5_tree()
        # all leaves on one object for the check
        system = TransactionSystem()
        txn = system.transaction("T1")
        first = txn.call("P", "one")
        second = txn.call("P", "two")
        sched = _single_object_schedule([first, second], system)
        assert sched.is_conform()

    def test_execution_against_program_order_is_not_conform(self):
        system = TransactionSystem()
        txn = system.transaction("T1")
        first = txn.call("P", "one")
        second = txn.call("P", "two")
        system.order_primitives([second, first])  # run them backwards
        sched = _single_object_schedule([first, second], system)
        assert not sched.is_conform()

    def test_parallel_actions_any_order_is_conform(self):
        system = TransactionSystem()
        txn = system.transaction("T1")
        first = txn.call("P", "one")
        second = txn.call("P", "two", parallel=True)
        system.order_primitives([second, first])
        sched = _single_object_schedule([first, second], system)
        assert sched.is_conform()


class TestSerial:
    def _schedule(self, order):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        t2 = system.transaction("T2")
        a1 = t1.call("P", "a1")
        a2 = t1.call("P", "a2")
        b1 = t2.call("P", "b1")
        b2 = t2.call("P", "b2")
        by_name = {"a1": a1, "a2": a2, "b1": b1, "b2": b2}
        system.order_primitives([by_name[name] for name in order])
        return _single_object_schedule([a1, a2, b1, b2], system)

    def test_serial_execution(self):
        assert self._schedule(["a1", "a2", "b1", "b2"]).is_serial()
        assert self._schedule(["b1", "b2", "a1", "a2"]).is_serial()

    def test_interleaved_execution_not_serial(self):
        assert not self._schedule(["a1", "b1", "a2", "b2"]).is_serial()

    def test_single_transaction_is_serial(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        actions = [t1.call("P", "x"), t1.call("P", "y")]
        assert _single_object_schedule(actions, system).is_serial()


class TestViews:
    def test_describe_lists_dependencies(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        text = schedules["Page4712"].describe()
        assert "Page4712" in text
        assert "txn-dep" in text

    def test_txn_dep_pairs_are_labels(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        pairs = schedules["Page4712"].txn_dep_pairs()
        assert any("Leaf11.insert" in src for src, _ in pairs)

    def test_top_level_projection_drops_intra_transaction_edges(self):
        system = TransactionSystem()
        t1 = system.transaction("T1")
        a = t1.call("P", "write")
        b = t1.call("P", "write")
        registry = encyclopedia_registry()
        _, schedules = analyze_system(system, registry)
        projection = schedules["P"].top_level_projection()
        assert projection.edges == set()

    def test_combined_dependencies_unions_added(self):
        scenario = scenario_commuting_inserts()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        sched = schedules["Leaf11"]
        combined = sched.combined_dependencies()
        assert sched.action_dep.edges <= combined.edges
