"""Tests of the scenario constructors (the paper's examples as code)."""

from repro.core import analyze_system
from repro.core.extension import find_offending_action
from repro.scenarios import (
    blink_split_system,
    encyclopedia_registry,
    example4_system,
    figure5_tree,
    scenario_commuting_inserts,
    scenario_same_key_conflict,
)
from repro.scenarios.schedule_space import (
    single_leaf_commuting,
    three_txn_ring,
    two_leaf_commuting,
    two_leaf_same_key,
)
from repro.scenarios.specs import (
    enc_spec,
    item_spec,
    key_based_spec,
    linked_list_spec,
)
from repro.core.actions import Invocation


class TestSpecs:
    def test_key_based_spec(self):
        spec = key_based_spec()
        assert spec.commutes(
            Invocation("L", "insert", ("a",)), Invocation("L", "insert", ("b",))
        )
        assert spec.conflicts(
            Invocation("L", "insert", ("a",)), Invocation("L", "search", ("a",))
        )
        assert spec.commutes(
            Invocation("L", "search", ("a",)), Invocation("L", "search", ("a",))
        )

    def test_enc_spec_phantom(self):
        spec = enc_spec()
        assert spec.conflicts(
            Invocation("Enc", "insertItem", ("a", 1)), Invocation("Enc", "readSeq")
        )
        assert spec.commutes(
            Invocation("Enc", "readSeq"), Invocation("Enc", "readSeq")
        )

    def test_item_spec(self):
        spec = item_spec()
        assert spec.commutes(Invocation("I", "read"), Invocation("I", "read"))
        assert spec.conflicts(Invocation("I", "read"), Invocation("I", "change", (1,)))

    def test_linked_list_spec(self):
        spec = linked_list_spec()
        assert spec.commutes(
            Invocation("L", "insert", ("i1",)), Invocation("L", "insert", ("i2",))
        )
        assert spec.conflicts(
            Invocation("L", "insert", ("i1",)), Invocation("L", "readSeq")
        )

    def test_registry_lookup(self):
        registry = encyclopedia_registry()
        assert registry.for_object("Page4712").commutes(
            Invocation("Page4712", "read"), Invocation("Page4712", "read")
        )
        assert registry.for_object("Leaf11") is not registry.default


class TestScenarioShapes:
    def test_example1_scenarios_have_two_tops(self):
        for build in (scenario_commuting_inserts, scenario_same_key_conflict):
            scenario = build()
            assert len(scenario.system.tops) == 2
            assert scenario.description

    def test_example4_has_four_tops_and_named_actions(self):
        scenario = example4_system()
        assert [t.label for t in scenario.system.tops] == ["T1", "T2", "T3", "T4"]
        assert "T2.Item8.change" in scenario.named
        assert scenario.named["T4.LinkedList.readSeq"].obj == "LinkedList"

    def test_blink_split_offends_definition5(self):
        scenario = blink_split_system()
        assert find_offending_action(scenario.system) is scenario.rearrange

    def test_figure5_precedence_shape(self):
        tree = figure5_tree()
        assert tree.a11.precedes_sibling(tree.a12)
        assert len(list(tree.transaction.actions())) == 8  # root + 2 + 5

    def test_schedule_space_builders_are_deterministic(self):
        for build in (
            single_leaf_commuting,
            two_leaf_commuting,
            two_leaf_same_key,
            three_txn_ring,
        ):
            s1, _ = build()
            s2, _ = build()
            a1 = [(a.top, a.aid, a.obj, a.method) for a in s1.all_actions()]
            a2 = [(a.top, a.aid, a.obj, a.method) for a in s2.all_actions()]
            assert a1 == a2

    def test_all_scenarios_analyzable(self):
        for build in (
            scenario_commuting_inserts,
            scenario_same_key_conflict,
        ):
            scenario = build()
            verdict, _ = analyze_system(scenario.system, scenario.registry)
            assert verdict.oo_serializable
