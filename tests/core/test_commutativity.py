"""Unit tests for commutativity specifications (Definition 9)."""

import pytest

from repro.core.actions import Invocation
from repro.core.commutativity import (
    CommutativityRegistry,
    ConflictAll,
    EscrowCommutativity,
    MatrixCommutativity,
    PredicateCommutativity,
    ReadWriteCommutativity,
)
from repro.core.identifiers import virtual_object_id
from repro.core.transactions import TransactionSystem
from repro.errors import CommutativityError


def inv(method, *args, obj="O", state=None):
    return Invocation(obj, method, args, state=state)


class TestConflictAll:
    def test_everything_conflicts(self):
        spec = ConflictAll()
        assert not spec.commutes(inv("read"), inv("read"))
        assert spec.conflicts(inv("a"), inv("b"))


class TestReadWrite:
    def test_read_read_commutes(self):
        spec = ReadWriteCommutativity()
        assert spec.commutes(inv("read"), inv("read"))

    def test_read_write_conflicts(self):
        spec = ReadWriteCommutativity()
        assert spec.conflicts(inv("read"), inv("write"))
        assert spec.conflicts(inv("write"), inv("write"))

    def test_unknown_method_is_a_write(self):
        spec = ReadWriteCommutativity()
        assert spec.conflicts(inv("read"), inv("compact"))

    def test_custom_read_set(self):
        spec = ReadWriteCommutativity(read_methods=("read", "peek"))
        assert spec.commutes(inv("peek"), inv("read"))


class TestMatrix:
    @pytest.fixture
    def spec(self):
        return MatrixCommutativity(
            {
                ("insert", "insert"): lambda a, b: a.args[0] != b.args[0],
                ("insert", "search"): lambda a, b: a.args[0] != b.args[0],
                ("search", "search"): True,
            }
        )

    def test_boolean_entry(self, spec):
        assert spec.commutes(inv("search", "x"), inv("search", "y"))

    def test_predicate_entry_differs_by_key(self, spec):
        assert spec.commutes(inv("insert", "DBMS"), inv("insert", "DBS"))
        assert spec.conflicts(inv("insert", "DBS"), inv("insert", "DBS"))

    def test_entry_is_symmetric(self, spec):
        assert spec.conflicts(inv("search", "DBS"), inv("insert", "DBS"))
        assert spec.conflicts(inv("insert", "DBS"), inv("search", "DBS"))
        assert spec.commutes(inv("search", "A"), inv("insert", "B"))

    def test_missing_entry_falls_back_to_default(self, spec):
        assert spec.conflicts(inv("insert", "k"), inv("compact"))
        permissive = MatrixCommutativity({}, default=True)
        assert permissive.commutes(inv("a"), inv("b"))

    def test_conflicting_duplicate_entries_rejected(self):
        with pytest.raises(CommutativityError):
            MatrixCommutativity(
                {("a", "b"): True, ("b", "a"): False}
            )


class TestPredicate:
    def test_predicate_applied_symmetrically(self):
        spec = PredicateCommutativity(
            lambda a, b: a.method == "read" and b.method == "append"
        )
        # predicate true in one direction suffices
        assert spec.commutes(inv("append"), inv("read"))
        assert spec.commutes(inv("read"), inv("append"))
        assert spec.conflicts(inv("append"), inv("append"))


class TestEscrow:
    @pytest.fixture
    def spec(self):
        return EscrowCommutativity(low=0.0, high=None)

    def test_deposits_commute(self, spec):
        assert spec.commutes(inv("deposit", 10), inv("deposit", 20))

    def test_reads_commute_with_reads_only(self, spec):
        assert spec.commutes(inv("balance"), inv("balance"))
        assert spec.conflicts(inv("balance"), inv("deposit", 5))

    def test_withdrawals_conflict_without_state(self, spec):
        assert spec.conflicts(inv("withdraw", 10), inv("withdraw", 20))

    def test_withdrawals_commute_with_sufficient_balance(self, spec):
        a = inv("withdraw", 10, state=100.0)
        b = inv("withdraw", 20, state=100.0)
        assert spec.commutes(a, b)

    def test_withdrawals_conflict_near_the_bound(self, spec):
        a = inv("withdraw", 60, state=100.0)
        b = inv("withdraw", 50, state=100.0)
        assert spec.conflicts(a, b)

    def test_mixed_ops_check_both_orders(self, spec):
        # balance 10: withdraw 15 then deposit 20 dips below zero in one order
        dep = inv("deposit", 20, state=10.0)
        wdr = inv("withdraw", 15, state=10.0)
        assert spec.conflicts(dep, wdr)
        # balance 100: both orders stay in bounds
        dep2 = inv("deposit", 20, state=100.0)
        wdr2 = inv("withdraw", 15, state=100.0)
        assert spec.commutes(dep2, wdr2)

    def test_upper_bound_restricts_deposits(self):
        capped = EscrowCommutativity(low=0.0, high=100.0)
        a = inv("deposit", 60, state=50.0)
        b = inv("deposit", 50, state=50.0)
        assert capped.conflicts(a, b)
        assert capped.commutes(inv("deposit", 10, state=0.0), inv("deposit", 20, state=0.0))

    def test_unknown_method_conflicts(self, spec):
        assert spec.conflicts(inv("audit"), inv("deposit", 1))


class TestRegistry:
    def test_lookup_order_exact_then_prefix_then_default(self):
        registry = CommutativityRegistry(default=ConflictAll())
        rw = ReadWriteCommutativity()
        matrix = MatrixCommutativity({("search", "search"): True})
        registry.register_prefix("Page", rw)
        registry.register("PageDirectory", matrix)
        assert registry.for_object("Page4712") is rw
        assert registry.for_object("PageDirectory") is matrix
        assert isinstance(registry.for_object("Unknown"), ConflictAll)

    def test_longest_prefix_wins(self):
        registry = CommutativityRegistry()
        generic = ReadWriteCommutativity()
        specific = MatrixCommutativity({})
        registry.register_prefix("Leaf", generic)
        registry.register_prefix("Leaf1", specific)
        assert registry.for_object("Leaf11") is specific
        assert registry.for_object("Leaf2") is generic

    def test_virtual_objects_inherit_spec(self):
        registry = CommutativityRegistry()
        rw = ReadWriteCommutativity()
        registry.register("Node6", rw)
        assert registry.for_object(virtual_object_id("Node6")) is rw

    def test_in_conflict_applies_same_process_rule(self):
        system = TransactionSystem()
        txn = system.transaction("T1")
        first = txn.call("Page1", "write")
        second = txn.call("Page1", "write")
        registry = CommutativityRegistry()
        registry.register_prefix("Page", ReadWriteCommutativity())
        # same process: sequential actions of one transaction never conflict
        assert not registry.in_conflict(first, second)

    def test_in_conflict_between_transactions(self):
        system = TransactionSystem()
        a = system.transaction("T1").call("Page1", "write")
        b = system.transaction("T2").call("Page1", "read")
        registry = CommutativityRegistry()
        registry.register_prefix("Page", ReadWriteCommutativity())
        assert registry.in_conflict(a, b)

    def test_in_conflict_rejects_different_objects(self):
        system = TransactionSystem()
        a = system.transaction("T1").call("Page1", "write")
        b = system.transaction("T2").call("Page2", "read")
        registry = CommutativityRegistry()
        with pytest.raises(CommutativityError):
            registry.in_conflict(a, b)
