"""Property-based tests of the commutativity specifications (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Invocation
from repro.core.commutativity import (
    EscrowCommutativity,
    MatrixCommutativity,
    ReadWriteCommutativity,
)

METHODS = ("alpha", "beta", "gamma")


@st.composite
def random_matrices(draw):
    matrix = {}
    for i, first in enumerate(METHODS):
        for second in METHODS[i:]:
            kind = draw(st.sampled_from(["true", "false", "keyed", "absent"]))
            if kind == "absent":
                continue
            if kind == "keyed":
                matrix[(first, second)] = lambda a, b: a.args[:1] != b.args[:1]
            else:
                matrix[(first, second)] = kind == "true"
    return MatrixCommutativity(matrix, default=draw(st.booleans()))


@st.composite
def invocations(draw):
    return Invocation(
        "O",
        draw(st.sampled_from(METHODS)),
        (draw(st.integers(0, 3)),),
    )


@settings(max_examples=200, deadline=None)
@given(spec=random_matrices(), a=invocations(), b=invocations())
def test_matrix_commutativity_is_symmetric(spec, a, b):
    assert spec.commutes(a, b) == spec.commutes(b, a)


@settings(max_examples=200, deadline=None)
@given(a=invocations(), b=invocations())
def test_read_write_symmetry(a, b):
    spec = ReadWriteCommutativity(read_methods=("alpha",))
    assert spec.commutes(a, b) == spec.commutes(b, a)


@st.composite
def escrow_invocations(draw):
    method = draw(st.sampled_from(["deposit", "withdraw", "balance"]))
    amount = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    state = draw(st.one_of(st.none(), st.floats(0, 500, allow_nan=False)))
    args = () if method == "balance" else (amount,)
    return Invocation("A", method, args, state=state)


@settings(max_examples=200, deadline=None)
@given(a=escrow_invocations(), b=escrow_invocations())
def test_escrow_symmetry(a, b):
    spec = EscrowCommutativity(low=0.0, high=None)
    assert spec.commutes(a, b) == spec.commutes(b, a)


@settings(max_examples=200, deadline=None)
@given(a=escrow_invocations(), b=escrow_invocations())
def test_escrow_soundness_both_orders_safe(a, b):
    """If escrow says two updates commute and a state is known, applying
    them in either order keeps the balance within bounds."""
    spec = EscrowCommutativity(low=0.0, high=None)
    if a.method == "balance" or b.method == "balance":
        return
    state = a.state if a.state is not None else b.state
    if state is None or not spec.commutes(a, b):
        return
    deltas = [
        (inv.args[0] if inv.method == "deposit" else -inv.args[0])
        for inv in (a, b)
    ]
    for order in (deltas, deltas[::-1]):
        running = float(state)
        for delta in order:
            running += delta
            assert running >= -1e-9


@settings(max_examples=100, deadline=None)
@given(
    reads=st.frozensets(st.sampled_from(METHODS)),
    a=invocations(),
    b=invocations(),
)
def test_read_write_commutes_iff_both_read(reads, a, b):
    spec = ReadWriteCommutativity(read_methods=reads)
    expected = a.method in reads and b.method in reads
    assert spec.commutes(a, b) == expected
