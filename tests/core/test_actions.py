"""Unit tests for actions, call trees, precedence and processes (Defs 1-3, 9)."""

import pytest

from repro.core.actions import (
    ActionNode,
    Invocation,
    lowest_common_ancestor,
    same_process,
)
from repro.core.transactions import TransactionSystem
from repro.errors import ModelError


@pytest.fixture
def tree():
    system = TransactionSystem()
    txn = system.transaction("T1")
    a = txn.call("O1", "a")
    b = txn.call("O2", "b")
    a1 = a.call("P1", "a1")
    a2 = a.call("P2", "a2")
    return txn, a, b, a1, a2


def test_call_builds_hierarchical_numbering(tree):
    txn, a, b, a1, a2 = tree
    assert txn.root.aid == (1,)
    assert a.aid == (1, 1)
    assert b.aid == (1, 2)
    assert a1.aid == (1, 1, 1)
    assert a2.aid == (1, 1, 2)


def test_top_label_propagates(tree):
    _, a, b, a1, _ = tree
    assert a.top == b.top == a1.top == "T1"


def test_primitive_actions_are_leaves(tree):
    txn, a, b, a1, a2 = tree
    assert not a.is_primitive
    assert b.is_primitive
    assert a1.is_primitive and a2.is_primitive


def test_sequential_children_get_precedence(tree):
    txn, a, b, a1, a2 = tree
    assert a1.precedes_sibling(a2)
    assert not a2.precedes_sibling(a1)
    assert a.precedes_sibling(b)


def test_parallel_child_is_unordered():
    system = TransactionSystem()
    txn = system.transaction("T1")
    first = txn.call("O1", "first")
    second = txn.call("O2", "second", parallel=True)
    assert not first.ordered_with_sibling(second)


def test_add_precedence_between_siblings():
    system = TransactionSystem()
    txn = system.transaction("T1")
    first = txn.call("O1", "first")
    second = txn.call("O2", "second", parallel=True)
    txn.root.add_precedence(second, first)
    assert second.precedes_sibling(first)


def test_add_precedence_rejects_non_siblings(tree):
    txn, a, b, a1, _ = tree
    with pytest.raises(ModelError):
        txn.root.add_precedence(a, a1)


def test_add_precedence_rejects_self(tree):
    txn, a, _, _, _ = tree
    with pytest.raises(ModelError):
        txn.root.add_precedence(a, a)


def test_precedence_closure_is_transitive():
    system = TransactionSystem()
    txn = system.transaction("T1")
    a = txn.call("O", "a")
    b = txn.call("O", "b")
    c = txn.call("O", "c")
    # builder chained a < b < c; closure must give a < c
    assert a.precedes_sibling(c)


def test_calls_and_transitive_calls(tree):
    txn, a, b, a1, _ = tree
    assert txn.root.calls(a)
    assert not txn.root.calls(a1)
    assert txn.root.calls_transitively(a1)
    assert a.calls(a1)
    assert not a.calls_transitively(b)


def test_iter_subtree_and_descendants(tree):
    txn, a, b, a1, a2 = tree
    labels = [node.method for node in txn.root.iter_subtree()]
    assert labels == ["T1", "a", "a1", "a2", "b"]
    assert [n.method for n in a.descendants()] == ["a1", "a2"]


def test_ancestors(tree):
    _, a, _, a1, _ = tree
    assert [n.method for n in a1.ancestors()] == ["a", "T1"]


def test_root_and_depth(tree):
    txn, a, _, a1, _ = tree
    assert a1.root is txn.root
    assert txn.root.depth == 0
    assert a.depth == 1
    assert a1.depth == 2


def test_sibling_index(tree):
    txn, a, b, _, _ = tree
    assert a.sibling_index() == 0
    assert b.sibling_index() == 1
    with pytest.raises(ModelError):
        txn.root.sibling_index()


def test_lowest_common_ancestor(tree):
    txn, a, b, a1, a2 = tree
    assert lowest_common_ancestor(a1, a2) is a
    assert lowest_common_ancestor(a1, b) is txn.root
    assert lowest_common_ancestor(a, a1) is a
    assert lowest_common_ancestor(a1, a1) is a1


def test_lca_across_transactions_is_none():
    system = TransactionSystem()
    t1 = system.transaction("T1")
    t2 = system.transaction("T2")
    x = t1.call("O", "x")
    y = t2.call("O", "y")
    assert lowest_common_ancestor(x, y) is None


class TestSameProcess:
    def test_identical_action(self, tree):
        _, a, _, _, _ = tree
        assert same_process(a, a)

    def test_ancestor_descendant(self, tree):
        _, a, _, a1, _ = tree
        assert same_process(a, a1)
        assert same_process(a1, a)

    def test_sequenced_siblings(self, tree):
        _, a, b, _, _ = tree
        assert same_process(a, b)

    def test_sequenced_cousins(self, tree):
        _, _, b, a1, _ = tree
        # a precedes b, so a's child a1 is sequenced with b.
        assert same_process(a1, b)

    def test_parallel_branches_are_different_processes(self):
        system = TransactionSystem()
        txn = system.transaction("T1")
        left = txn.call("O1", "left")
        right = txn.call("O2", "right", parallel=True)
        child = left.call("P", "child")
        assert not same_process(left, right)
        assert not same_process(child, right)

    def test_different_transactions_are_different_processes(self):
        system = TransactionSystem()
        x = system.transaction("T1").call("O", "x")
        y = system.transaction("T2").call("O", "y")
        assert not same_process(x, y)


def test_invocation_rendering():
    inv = Invocation("Leaf11", "insert", ("DBS",))
    assert str(inv) == "Leaf11.insert('DBS')"


def test_action_label_and_pretty(tree):
    txn, a, _, _, _ = tree
    assert "O1.a()" in a.label
    listing = txn.pretty()
    assert "O1.a()" in listing and "P2.a2()" in listing
    assert listing.splitlines()[0].startswith("$SYSTEM.T1")


def test_explicit_seq_override():
    system = TransactionSystem()
    txn = system.transaction("T1")
    action = txn.call("O", "m", seq=999)
    assert action.seq == 999


def test_standalone_action_node_seq_counter():
    root = ActionNode(aid=(1,), obj="O", method="root", top="T")
    child1 = root.call("P", "one")
    child2 = root.call("P", "two")
    assert child2.seq > child1.seq
