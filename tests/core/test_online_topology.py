"""Unit tests for the Pearce–Kelly online topological order.

The incremental dependency engine watches every relation with an
:class:`~repro.core.graph.OnlineTopology`; these tests pin the two
properties the engine relies on: the cycle verdict is independent of edge
insertion order (cross-checked against networkx on random graphs), and the
first cycle is reported *at the insertion that closes it*, as a genuine
witness path.
"""

import random

import networkx as nx
import pytest

from repro.core.graph import OnlineTopology


def _insert_all(edges):
    topo = OnlineTopology()
    first_report = None
    for i, (src, dst) in enumerate(edges):
        report = topo.add_edge_checked(src, dst)
        if report is not None and first_report is None:
            first_report = (i, report)
    return topo, first_report


def _check_order_consistent(topo, edges):
    """After acyclic insertions the maintained order must respect every edge."""
    for src, dst in edges:
        assert topo._index[src] < topo._index[dst], (src, dst)


def test_empty_and_single_edge():
    topo = OnlineTopology()
    assert not topo.has_cycle
    assert topo.add_edge_checked("a", "b") is None
    assert not topo.has_cycle
    assert len(topo) == 2


def test_duplicate_edges_are_ignored():
    topo = OnlineTopology()
    assert topo.add_edge_checked("a", "b") is None
    assert topo.add_edge_checked("a", "b") is None
    assert not topo.has_cycle


def test_self_loop_is_reported_immediately():
    topo = OnlineTopology()
    cycle = topo.add_edge_checked("a", "a")
    assert cycle == ["a", "a"]
    assert topo.has_cycle


def test_back_edge_closes_cycle_with_witness():
    topo = OnlineTopology()
    assert topo.add_edge_checked("a", "b") is None
    assert topo.add_edge_checked("b", "c") is None
    cycle = topo.add_edge_checked("c", "a")
    assert cycle is not None
    # Witness shape: the new edge followed by an existing path back.
    assert cycle[0] == "c" and cycle[-1] == "c"
    edges = {("a", "b"), ("b", "c"), ("c", "a")}
    for src, dst in zip(cycle, cycle[1:]):
        assert (src, dst) in edges


def test_cycle_is_permanent_and_witness_is_kept():
    topo = OnlineTopology()
    topo.add_edge_checked("a", "b")
    first = topo.add_edge_checked("b", "a")
    assert first is not None
    witness = list(topo.cycle)
    # Later insertions no longer search, and keep the original witness.
    assert topo.add_edge_checked("x", "y") is None
    assert topo.add_edge_checked("y", "x") is None
    assert topo.cycle == witness


def test_forward_edge_in_order_is_cheap_and_correct():
    topo = OnlineTopology()
    # Insert in an order where every new edge already agrees with ord.
    for src, dst in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]:
        assert topo.add_edge_checked(src, dst) is None
    _check_order_consistent(topo, [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")])


def test_reordering_pass_restores_consistency():
    topo = OnlineTopology()
    # Force the affected-region pass: create nodes in an order that puts
    # the edge target after the source in ord, repeatedly.
    edges = [("d", "e"), ("c", "d"), ("b", "c"), ("a", "b")]
    for src, dst in edges:
        assert topo.add_edge_checked(src, dst) is None
    _check_order_consistent(topo, edges)


@pytest.mark.parametrize("trial", range(20))
def test_random_graphs_match_networkx(trial):
    """The verdict equals networkx's, for every insertion order tried."""
    rng = random.Random(7700 + trial)
    nodes = list(range(rng.randint(3, 14)))
    candidates = [(a, b) for a in nodes for b in nodes if a != b]
    edges = rng.sample(candidates, min(len(candidates), rng.randint(2, 28)))
    reference = nx.DiGraph(edges)
    expected = not nx.is_directed_acyclic_graph(reference)

    for shuffle_seed in range(4):
        order = list(edges)
        random.Random(shuffle_seed).shuffle(order)
        topo, first_report = _insert_all(order)
        assert topo.has_cycle == expected, (edges, order)
        if expected:
            # The witness must be a real cycle over inserted edges.
            assert first_report is not None
            cycle = topo.cycle
            assert cycle[0] == cycle[-1]
            assert len(cycle) >= 2
            inserted = set(edges)
            for src, dst in zip(cycle, cycle[1:]):
                assert (src, dst) in inserted
        else:
            assert first_report is None
            _check_order_consistent(topo, edges)


@pytest.mark.parametrize("trial", range(10))
def test_incremental_prefix_verdicts_match_networkx(trial):
    """After *every* insertion, has_cycle equals the batch answer so far —
    the property the certifier's early-exit and the oracle fast path use."""
    rng = random.Random(9100 + trial)
    nodes = list(range(rng.randint(3, 10)))
    candidates = [(a, b) for a in nodes for b in nodes if a != b]
    edges = rng.sample(candidates, min(len(candidates), rng.randint(4, 20)))
    topo = OnlineTopology()
    reference = nx.DiGraph()
    for src, dst in edges:
        topo.add_edge_checked(src, dst)
        reference.add_edge(src, dst)
        assert topo.has_cycle == (not nx.is_directed_acyclic_graph(reference))
