"""Smoke tests: every example script runs to completion.

Each example is executed in-process (fresh module namespace) and its output
is checked for the headline lines — examples are documentation, so a
silently broken one is a bug.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart.py")
    assert "oo-serializable: True" in output
    assert "committed: ['T0', 'T1', 'T2', 'T3']" in output


def test_paper_example1():
    output = run_example("paper_example1.py")
    assert "Scenario A" in output and "Scenario B" in output
    assert "[('T3', 'T4')]" in output


def test_cooperative_editing():
    output = run_example("cooperative_editing.py")
    assert "page-2pl" in output and "open-nested-oo" in output
    assert "per-author blocking" in output


def test_banking_escrow():
    output = run_example("banking_escrow.py")
    assert "sum 2000.0" in output
    assert "540.0" in output


def test_schedule_explorer():
    output = run_example("schedule_explorer.py")
    assert "exhaustive schedule census" in output
    assert "only by oo-serializability" in output


def test_index_concurrency():
    output = run_example("index_concurrency.py")
    assert "structure check: OK" in output
    assert "committed history oo-serializable: True" in output
