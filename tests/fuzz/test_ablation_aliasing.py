"""Regression: the oracle's ablation must never poison a live registry.

``Ablation.apply`` used to call ``registry.register(...)`` on whatever
``db.commutativity_registry()`` returned.  With the registry now cached on
the database, in-place mutation would leak the broken entry into the
scheduler's own commutativity decisions and into every later judgement
sharing the database — an ablated cell would contaminate the clean cell
after it.  ``apply`` must mutate a copy.
"""

from repro.core.commutativity import CommutativityRegistry, ReadWriteCommutativity
from repro.fuzz.driver import execute_cell
from repro.fuzz.generator import generate
from repro.fuzz.oracle import Ablation, BrokenSpec, check_history, strictness_for


def test_apply_returns_a_copy():
    registry = CommutativityRegistry()
    spec = ReadWriteCommutativity()
    registry.register("Leaf-1", spec)
    broken = Ablation(object_name="Leaf-1").apply(registry)
    assert broken is not registry
    assert isinstance(broken.for_object("Leaf-1"), BrokenSpec)
    # The input registry is untouched.
    assert registry.for_object("Leaf-1") is spec


def test_registry_copy_is_independent():
    registry = CommutativityRegistry()
    registry.register_prefix("Page", ReadWriteCommutativity())
    clone = registry.copy()
    clone.register("Page-7", BrokenSpec(clone.for_object("Page-7"), None))
    assert isinstance(clone.for_object("Page-7"), BrokenSpec)
    assert isinstance(registry.for_object("Page-7"), ReadWriteCommutativity)


def test_two_cells_sharing_a_db_are_not_cross_contaminated():
    """An ablated judgement followed by a clean one on the same database:
    the clean one must see the pristine (cached) registry."""
    spec = generate(3)
    protocol = "multilevel"
    result = execute_cell(spec, protocol)
    db = result.db
    target = spec.leaf_objects[0].name
    before = db.commutativity_registry().for_object(target)

    clean_first = check_history(
        result, None, strict_cross_object=strictness_for(protocol)
    )
    ablated = check_history(
        result,
        Ablation(object_name=target),
        strict_cross_object=strictness_for(protocol),
    )
    clean_second = check_history(
        result, None, strict_cross_object=strictness_for(protocol)
    )

    # The db's registry still hands out the original spec object...
    assert db.commutativity_registry().for_object(target) is before
    assert not isinstance(
        db.commutativity_registry().for_object(target), BrokenSpec
    )
    # ...and the clean judgement is bit-for-bit unaffected by the ablated
    # one that ran in between.
    assert clean_first == clean_second
    # Sanity: the ablation really did judge with a different registry.
    assert isinstance(
        Ablation(object_name=target)
        .apply(db.commutativity_registry())
        .for_object(target),
        BrokenSpec,
    )
    del ablated
