"""Differential suite: the fast certifier vs the exact oracle, byte for byte.

Over fuzz-generated histories under every protocol, the certifier's
verdict must equal :func:`check_history`'s ``oo_serializable`` bit, and on
violation the attached witness report must be byte-identical — so a
campaign judged with ``--certify`` reproduces, shrinks, and replays
exactly like one judged by the oracle alone.
"""

import pytest

from repro.core.certify import certify_history
from repro.errors import ReproError
from repro.fuzz.driver import FUZZ_PROTOCOLS, execute_cell
from repro.fuzz.generator import GeneratorProfile, generate
from repro.fuzz.oracle import Ablation, check_history, strictness_for

#: ≥50 seeds per protocol (ISSUE 8 acceptance criterion)
SEEDS = range(50)


def _both(result, *, strict, ablation=None):
    cert = certify_history(result, ablation, strict_cross_object=strict)
    exact = check_history(result, ablation, strict_cross_object=strict)
    return cert, exact


def _assert_agreement(cert, exact, context):
    assert cert.oo_serializable == exact.oo_serializable, context
    assert cert.violation == exact.violation, context
    if cert.violation:
        assert cert.description == exact.description, context
        oracle = cert.as_oracle_report()
        assert oracle.description == exact.description, context
        assert oracle.oo_serializable == exact.oo_serializable, context
        assert (
            oracle.conventional_serializable == exact.conventional_serializable
        ), context


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_certifier_matches_oracle(protocol):
    strict = strictness_for(protocol)
    checked = 0
    for seed in SEEDS:
        spec = generate(seed)
        try:
            result = execute_cell(spec, protocol)
        except ReproError:
            continue
        cert, exact = _both(result, strict=strict)
        _assert_agreement(cert, exact, (protocol, seed))
        checked += 1
    assert checked >= 40


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_certifier_matches_oracle_under_ablation(protocol):
    """The violating leg: ablations force cycles, exercising escalation,
    the attached canonical report, and the witness byte-pin."""
    strict = strictness_for(protocol)
    for seed in range(20):
        spec = generate(seed)
        ablation = Ablation(object_name=spec.leaf_objects[0].name)
        try:
            result = execute_cell(spec, protocol)
        except ReproError:
            continue
        cert, exact = _both(result, strict=strict, ablation=ablation)
        _assert_agreement(cert, exact, (protocol, seed, "ablated"))
    # Not every protocol/seed yields a violation; the pinned test below
    # guarantees the violating path runs even in isolation.


def test_pinned_ablated_violation_witness_bytes():
    spec = generate(4, GeneratorProfile.smoke())
    ablation = Ablation(object_name=spec.leaf_objects[0].name)
    result = execute_cell(spec, "open-nested-oo")
    strict = strictness_for("open-nested-oo")
    cert, exact = _both(result, strict=strict, ablation=ablation)
    assert cert.violation and exact.violation
    assert cert.escalated
    _assert_agreement(cert, exact, "pinned seed 4")


@pytest.mark.parametrize("protocol", ["page-2pl", "optimistic-oo"])
def test_certifier_matches_oracle_on_long_histories(protocol):
    """The C14 regime: conflict-sparse long cells, where the fast path
    must carry most commits and still agree with the oracle."""
    strict = strictness_for(protocol)
    result = execute_cell(generate(0, GeneratorProfile.long(40)), protocol)
    cert, exact = _both(result, strict=strict)
    _assert_agreement(cert, exact, (protocol, "long"))
    assert cert.fast_commits + cert.escalated_commits == cert.committed
    if not cert.escalated:
        assert cert.fast_commits == cert.committed
