"""Parallel campaign execution must be invisible in the results.

``run_campaign``/``run_crash_campaign`` with ``jobs > 1`` shard seeds
across worker processes; the campaign report is required to be identical
to a serial run over the same seeds — same tallies, same violations, same
errors, same early-stop point.  These tests run both modes and compare
the results structurally (the CLI layer then renders identical bytes).
"""

from repro.fuzz.crash import run_crash_campaign, run_seed_crash_cells
from repro.fuzz.driver import run_campaign, run_seed_cells
from repro.fuzz.generator import GeneratorProfile
from repro.fuzz.parallel import iter_seed_results

SMOKE = GeneratorProfile.smoke()


def _campaign_digest(campaign):
    return (
        campaign.seeds_run,
        campaign.table(),
        campaign.errors,
        [
            (v.seed, v.protocol, v.report, v.spec.to_dict(), v.ablation)
            for v in campaign.violations
        ],
    )


def test_iter_seed_results_preserves_seed_order():
    seeds = [9, 3, 7, 1, 8]
    serial = list(iter_seed_results(_double, seeds, jobs=1))
    parallel = list(iter_seed_results(_double, seeds, jobs=2))
    assert serial == parallel == [(s, s * 2) for s in seeds]


def _double(seed):  # module-level: picklable for the pool
    return seed * 2


def test_fuzz_campaign_parallel_equals_serial():
    kwargs = dict(
        seeds=list(range(8)),
        protocols=("page-2pl", "open-nested-oo"),
        profile=SMOKE,
    )
    serial = run_campaign(jobs=1, **kwargs)
    parallel = run_campaign(jobs=2, **kwargs)
    assert serial.ok
    assert _campaign_digest(serial) == _campaign_digest(parallel)


def test_fuzz_campaign_parallel_early_stop_equals_serial():
    """An ablated campaign stops mid-sweep at max_violations; the parallel
    fold must stop at exactly the same seed with the same accounting."""
    kwargs = dict(
        seeds=list(range(10)),
        protocols=("open-nested-oo",),
        profile=SMOKE,
        ablate_first_leaf=True,
        max_violations=1,
    )
    serial = run_campaign(jobs=1, **kwargs)
    parallel = run_campaign(jobs=3, **kwargs)
    assert serial.violations, "ablation produced no violation to stop on"
    assert serial.seeds_run < len(kwargs["seeds"])
    assert _campaign_digest(serial) == _campaign_digest(parallel)


def test_crash_campaign_parallel_equals_serial():
    kwargs = dict(
        seeds=[0, 1],
        protocols=("open-nested-oo",),
        profile=SMOKE,
        sites=("commit.before", "page-write.after"),
        max_violations=1,
    )
    serial = run_crash_campaign(jobs=1, **kwargs)
    parallel = run_crash_campaign(jobs=2, **kwargs)
    assert serial.seeds_run == parallel.seeds_run
    assert serial.tallies == parallel.tallies
    assert serial.errors == parallel.errors
    assert serial.site_crashes == parallel.site_crashes
    assert [
        (v.seed, v.protocol, v.site, v.outcome, v.counterexample)
        for v in serial.violations
    ] == [
        (v.seed, v.protocol, v.site, v.outcome, v.counterexample)
        for v in parallel.violations
    ]


def test_seed_workers_are_deterministic():
    """The per-seed workers the pool ships around must be pure functions of
    the seed: same seed, same outcome objects."""
    assert run_seed_cells(3, profile=SMOKE) == run_seed_cells(3, profile=SMOKE)
    assert run_seed_crash_cells(
        0,
        protocols=("open-nested-oo",),
        profile=SMOKE,
        sites=("commit.before",),
    ) == run_seed_crash_cells(
        0,
        protocols=("open-nested-oo",),
        profile=SMOKE,
        sites=("commit.before",),
    )
