"""Differential suite: the incremental engine is byte-identical to batch.

Three layers of equivalence, over fuzz-generated histories under every
protocol:

1. **One-shot identity** — ``analyze_system(engine="incremental")`` produces
   the same verdict, the same per-object relations *in the same iteration
   order*, the same first-reason-wins provenance and the same rendered
   descriptions as ``engine="batch"``.  This is what lets the default
   engine flip without a single report byte changing.
2. **Fast-judge agreement** — the boolean per-transaction walk
   (:func:`repro.fuzz.oracle.judge_violation`) equals
   ``check_history(...).violation``, with and without ablations.
3. **Prefix-append agreement** — appending committed transactions one at a
   time to an :class:`IncrementalDependencyEngine` (the certifier's cached
   path) yields, after every prefix, the verdict a from-scratch batch
   analysis of that prefix's projection gives.
"""

import pytest

from repro.core.dependency import IncrementalDependencyEngine
from repro.core.serializability import analyze_system
from repro.errors import ReproError
from repro.fuzz.driver import FUZZ_PROTOCOLS, execute_cell
from repro.fuzz.generator import generate
from repro.fuzz.oracle import (
    Ablation,
    check_history,
    judge_violation,
    strictness_for,
)
from repro.oodb.trace import committed_projection

#: ≥50 seeds per protocol (ISSUE 4 acceptance criterion)
SEEDS = range(50)


def _labeled_edges(graph):
    return [(src.label, dst.label) for src, dst in graph.iter_edges()]


def _rendered_reasons(sched):
    return {
        key: sched.explain(key[0], _Aid(key[1]), _Aid(key[2]))
        for key in sched.reasons
    }


class _Aid:
    """Adapter: ``explain`` only reads ``.aid`` off its endpoints."""

    def __init__(self, aid):
        self.aid = aid


def _analyze_both(result, *, strict, ablation=None):
    outputs = []
    for engine in ("batch", "incremental"):
        registry = result.db.commutativity_registry()
        if ablation is not None:
            registry = ablation.apply(registry)
        projection = committed_projection(
            result.db.system, result.committed_labels
        )
        outputs.append(
            analyze_system(
                projection,
                registry,
                propagate_cross_object=strict,
                engine=engine,
            )
        )
    return outputs


def _assert_identical(batch_out, incr_out):
    (vb, sb), (vi, si) = batch_out, incr_out
    assert vb.oo_serializable == vi.oo_serializable
    assert vb.describe() == vi.describe()
    assert sorted(vb.global_top_graph.edges) == sorted(vi.global_top_graph.edges)
    assert set(sb) == set(si)
    for oid in sb:
        A, B = sb[oid], si[oid]
        assert [a.label for a in A.actions] == [b.label for b in B.actions]
        assert [a.label for a in A.transactions] == [
            b.label for b in B.transactions
        ]
        # Ordered equality: identical iteration order, not just identical
        # edge sets — downstream cycle witnesses depend on it.
        assert _labeled_edges(A.action_dep) == _labeled_edges(B.action_dep)
        assert _labeled_edges(A.txn_dep) == _labeled_edges(B.txn_dep)
        assert _labeled_edges(A.added_dep) == _labeled_edges(B.added_dep)
        assert _rendered_reasons(A) == _rendered_reasons(B)
        assert A.describe(verbose=True) == B.describe(verbose=True)
        VA, VB = vb.object_verdicts[oid], vi.object_verdicts[oid]
        assert (VA.action_cycle, VA.top_cycle) == (VB.action_cycle, VB.top_cycle)


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_one_shot_identity(protocol):
    strict = strictness_for(protocol)
    checked = 0
    for seed in SEEDS:
        spec = generate(seed)
        try:
            result = execute_cell(spec, protocol)
        except ReproError:
            continue
        batch_out, incr_out = _analyze_both(result, strict=strict)
        _assert_identical(batch_out, incr_out)
        checked += 1
    assert checked >= 40  # the generator rarely produces un-runnable specs


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_one_shot_identity_under_ablation(protocol):
    """Same identity on *violating* histories: ablations force cycles, so
    this leg exercises the cycle-witness and reason paths."""
    strict = strictness_for(protocol)
    violations = 0
    for seed in range(20):
        spec = generate(seed)
        ablation = Ablation(object_name=spec.leaf_objects[0].name)
        try:
            result = execute_cell(spec, protocol)
        except ReproError:
            continue
        batch_out, incr_out = _analyze_both(
            result, strict=strict, ablation=ablation
        )
        _assert_identical(batch_out, incr_out)
        violations += not batch_out[0].oo_serializable
    # Not every protocol/seed yields a violation; the suite as a whole does.


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_fast_judge_agrees_with_check_history(protocol):
    strict = strictness_for(protocol)
    for seed in range(15):
        spec = generate(seed)
        for ablation in (None, Ablation(object_name=spec.leaf_objects[0].name)):
            try:
                slow_result = execute_cell(spec, protocol)
                fast_result = execute_cell(spec, protocol)
            except ReproError:
                continue
            slow = check_history(
                slow_result, ablation, strict_cross_object=strict
            ).violation
            fast = judge_violation(
                fast_result, ablation, strict_cross_object=strict
            )
            assert slow == fast, (protocol, seed, ablation)


@pytest.mark.parametrize("protocol", ["multilevel", "optimistic-oo"])
def test_prefix_appends_agree_with_batch(protocol):
    """The certifier's shape: committed transactions appended one at a time.

    After each append, the engine's boolean must equal a from-scratch batch
    analysis of the same prefix — including the cases where the extension
    hangs virtual duplicates off earlier (already analyzed) trees.
    """
    strict = strictness_for(protocol)
    for seed in range(8):
        spec = generate(seed)
        try:
            result = execute_cell(spec, protocol)
        except ReproError:
            continue
        system = result.db.system
        committed = [t for t in system.tops if t.label in result.committed_labels]
        if not committed:
            continue
        engine = IncrementalDependencyEngine(
            committed_projection(system, set()),
            result.db.commutativity_registry(),
            propagate_cross_object=strict,
            track_cycles=True,
        )
        prefix: set[str] = set()
        for txn in committed:
            engine.append_transaction(txn)
            prefix.add(txn.label)
            verdict, _ = analyze_system(
                committed_projection(system, prefix),
                result.db.commutativity_registry(),
                propagate_cross_object=strict,
                engine="batch",
            )
            assert engine.violated == (not verdict.oo_serializable), (
                protocol,
                seed,
                sorted(prefix),
            )
