"""The crash-recovery fuzzer: cells, campaign slice, oracle self-test.

Kept on the smoke profile so the suite stays fast; the full campaign runs
from the CLI (``python -m repro fuzz --crash``) and in CI.
"""

import copy

import pytest

from repro.faults import FaultPlan
from repro.fuzz.crash import (
    ARMED_SITES,
    crash_census,
    run_armed_cell,
    run_crash_campaign,
    run_crash_cell,
)
from repro.fuzz.generator import GeneratorProfile, generate
from repro.oodb.log import CompensationRecord

SMOKE = GeneratorProfile.smoke()


class TestCompensationRecordSnapshot:
    def test_args_are_deep_copied_at_registration(self):
        """A caller mutating its argument objects after the subtransaction
        commits must not corrupt a compensation replayed later."""
        payload = {"amount": 5, "tags": ["a"]}
        record = CompensationRecord("Acct1", "undo_deposit", (payload,))
        payload["amount"] = 999
        payload["tags"].append("b")
        assert record.args[0] == {"amount": 5, "tags": ["a"]}

    def test_copy_survives_record_copies(self):
        record = CompensationRecord("O", "m", ([1, 2],))
        clone = copy.deepcopy(record)
        assert clone.args == record.args


class TestCrashCells:
    def test_census_counts_sites(self):
        spec = generate(0, SMOKE)
        census = crash_census(spec, "open-nested-oo")
        assert census.get("page-write.before", 0) > 0
        assert census.get("commit.before", 0) > 0

    @pytest.mark.parametrize("protocol", ["open-nested-oo", "page-2pl"])
    def test_armed_cell_recovers_cleanly(self, protocol):
        spec = generate(0, SMOKE)
        outcome = run_crash_cell(spec, protocol, site="page-write.after")
        if outcome.skipped:
            pytest.skip(outcome.skipped)
        assert outcome.crashed
        assert outcome.ok, outcome.violations

    def test_cell_is_reproducible_from_its_plan(self):
        spec = generate(1, SMOKE)
        first = run_crash_cell(spec, "open-nested-oo", site="commit.before")
        if first.skipped or not first.crashed:
            pytest.skip("seed 1 does not reach commit.before")
        replay = run_armed_cell(
            spec, "open-nested-oo", FaultPlan.from_dict(first.plan)
        )
        assert replay.crashed
        assert replay.winners == first.winners
        assert replay.losers == first.losers
        assert replay.violations == first.violations

    def test_ablation_is_detected(self):
        """Recovery that forgets compensation replay must be caught by the
        state-vs-serial-replay oracle check somewhere in a small sweep."""
        campaign = run_crash_campaign(
            seeds=list(range(4)),
            protocols=("multilevel", "open-nested-oo"),
            profile=SMOKE,
            skip_compensation=True,
            check_recovery_crash=False,
            max_violations=1,
        )
        assert campaign.violations, "crash oracle is blind to broken recovery"
        counterexample = campaign.violations[0].counterexample
        assert counterexample["kind"] == "crash"
        assert "plan" in counterexample and "spec" in counterexample

    def test_smoke_campaign_slice_is_clean(self):
        campaign = run_crash_campaign(
            seeds=[0],
            protocols=("open-nested-oo",),
            profile=SMOKE,
            sites=ARMED_SITES[:4],
            max_violations=1,
        )
        assert campaign.ok, (
            [v.outcome.violations for v in campaign.violations],
            campaign.errors,
        )
