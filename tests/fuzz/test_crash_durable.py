"""Durable crash cells: storage crash sites, parity oracle, pinned ablation.

The pinned counterexample (``tests/data/crash_durable_ablation_cex.json``)
is the replayable proof that the skipped-log-force ablation is observable:
a buffer pool that flushes dirty pages without forcing the WAL first
plants phantom effects that survive recovery, and the 4-part crash oracle
catches them.  It was found by the probe-guided hunt
(:func:`repro.fuzz.crash.find_log_force_ablation`); the same cell with the
WAL rule intact recovers cleanly.
"""

import json
import os

import pytest

from repro.faults import DURABLE_CRASH_SITES, FaultPlan
from repro.fuzz.crash import (
    DurableConfig,
    crash_census,
    replay_crash,
    run_armed_cell,
    run_crash_cell,
)
from repro.fuzz.generator import GeneratorProfile, WorkloadSpec, generate

SMOKE = GeneratorProfile.smoke()
DURABLE = DurableConfig(frames=6, checkpoint_every=24)
CEX_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "crash_durable_ablation_cex.json"
)


def load_cex():
    with open(CEX_PATH) as fh:
        return json.load(fh)


class TestDurableCells:
    def test_census_reaches_the_storage_sites(self):
        spec = generate(0, SMOKE)
        census = crash_census(spec, "open-nested-oo", durable=DURABLE)
        for site in DURABLE_CRASH_SITES:
            assert census.get(site, 0) > 0, site

    @pytest.mark.parametrize("site", DURABLE_CRASH_SITES)
    def test_storage_site_crashes_recover_cleanly(self, site):
        spec = generate(0, SMOKE)
        outcome = run_crash_cell(
            spec,
            "open-nested-oo",
            site=site,
            durable=DURABLE,
            check_recovery_crash=False,
        )
        if outcome.skipped:
            pytest.skip(outcome.skipped)
        assert outcome.crashed
        assert outcome.ok, outcome.violations

    def test_durable_cell_survives_a_mid_recovery_crash(self):
        spec = generate(0, SMOKE)
        outcome = run_crash_cell(
            spec,
            "open-nested-oo",
            site="page-write.after",
            durable=DURABLE,
            check_recovery_crash=True,
        )
        if outcome.skipped:
            pytest.skip(outcome.skipped)
        assert outcome.ok, outcome.violations

    def test_counterexample_round_trips_through_json(self):
        spec = generate(0, SMOKE)
        outcome = run_crash_cell(
            spec,
            "open-nested-oo",
            site="eviction.mid",
            durable=DURABLE,
            check_recovery_crash=False,
        )
        if outcome.skipped:
            pytest.skip(outcome.skipped)
        data = outcome.to_counterexample(spec)
        assert data["durable"] == DURABLE.to_dict()
        replayed = replay_crash(data)
        assert replayed.violations == outcome.violations
        assert replayed.winners == outcome.winners


class TestLogForceAblation:
    def test_pinned_counterexample_is_caught(self):
        data = load_cex()
        assert data["durable"]["skip_log_force"] is True
        outcome = replay_crash(data)
        assert outcome.crashed
        assert outcome.violations, "the pinned ablation cell went undetected"

    def test_same_cell_with_the_wal_rule_intact_is_clean(self):
        data = load_cex()
        spec = WorkloadSpec.from_dict(data["spec"])
        plan = FaultPlan.from_dict(data["plan"])
        honest = DurableConfig(
            frames=data["durable"]["frames"],
            checkpoint_every=data["durable"]["checkpoint_every"],
            skip_log_force=False,
        )
        outcome = run_armed_cell(
            spec,
            data["protocol"],
            plan,
            durable=honest,
            check_recovery_crash=False,
        )
        assert outcome.crashed
        assert outcome.ok, outcome.violations
