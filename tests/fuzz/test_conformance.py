"""Cross-protocol conformance: the fuzzer's smoke campaign as a test suite.

Each protocol gets its own parametrized case running the smoke generator
profile over a block of seeds and demanding a clean oracle verdict on every
committed history (strict cross-object closure for the commit-duration
protocols, the literal Definition 13/16 reading for the early-release
protocols — see ``repro.fuzz.oracle``).  Further cases pin the generator's
determinism and Definition 5 coverage, prove the ablated oracle actually
detects a broken commutativity entry, and freeze the shrinker's
counterexample file format.
"""

import json

import pytest

from repro.fuzz import (
    FUZZ_PROTOCOLS,
    Ablation,
    GeneratorProfile,
    counterexample_dict,
    generate,
    run_campaign,
    run_cell,
    shrink,
    strictness_for,
)
from repro.fuzz.generator import WorkloadSpec
from repro.fuzz.shrink import COUNTEREXAMPLE_VERSION

SMOKE_SEEDS = list(range(50))


@pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
def test_protocol_conformance_smoke(protocol):
    campaign = run_campaign(
        seeds=SMOKE_SEEDS,
        protocols=(protocol,),
        profile=GeneratorProfile.smoke(),
    )
    assert campaign.ok, (
        f"{protocol}: {len(campaign.violations)} oracle violation(s), "
        f"{len(campaign.errors)} simulator error(s); first: "
        f"{(campaign.violations or campaign.errors)[0]}"
    )
    tally = campaign.tallies[protocol]
    assert tally.runs == len(SMOKE_SEEDS)
    assert tally.committed > 0


def test_admission_rate_delta():
    """The paper's concurrency claim, quantified: the oo criterion admits
    committed histories the conventional page-conflict criterion rejects,
    and the commutativity-driven protocols produce far more of them."""
    campaign = run_campaign(
        seeds=list(range(12)),
        protocols=("page-2pl", "open-nested-oo"),
        profile=GeneratorProfile.smoke(),
    )
    assert campaign.ok
    assert campaign.tallies["open-nested-oo"].oo_only > 0
    assert (
        campaign.tallies["open-nested-oo"].oo_only
        >= campaign.tallies["page-2pl"].oo_only
    )


def test_generator_is_deterministic():
    profile = GeneratorProfile.smoke()
    assert generate(7, profile).to_dict() == generate(7, profile).to_dict()
    assert generate(7, profile).to_dict() != generate(8, profile).to_dict()


def test_generator_covers_definition5():
    """Across the smoke seeds, generated plans must include self calls and
    up calls — the call structures that force the Definition 5 extension
    (an action with a call ancestor on its own object)."""
    self_calls = up_calls = 0
    for seed in range(10):
        spec = generate(seed, GeneratorProfile.smoke())
        layer = {o.name: o.layer for o in spec.objects}
        for ospec in spec.objects:
            for plan in ospec.methods:
                for op in plan.plan:
                    if op[0] != "call":
                        continue
                    if op[1] == ospec.name:
                        self_calls += 1
                    elif layer.get(op[1], -1) >= ospec.layer:
                        up_calls += 1
    assert self_calls > 0
    assert up_calls > 0


def test_workload_spec_round_trips():
    spec = generate(3, GeneratorProfile.smoke())
    clone = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone.to_dict() == spec.to_dict()


def test_oracle_strictness_split():
    assert strictness_for("page-2pl")
    assert strictness_for("closed-nested")
    assert strictness_for("optimistic-oo")
    assert not strictness_for("multilevel")
    assert not strictness_for("open-nested-oo")


def _first_ablated_violation(max_seed=30):
    campaign = run_campaign(
        seeds=list(range(max_seed)),
        profile=GeneratorProfile.smoke(),
        ablate_first_leaf=True,
        max_violations=1,
    )
    assert campaign.violations, (
        "the ablated oracle (every first-leaf entry forced to conflict) "
        f"found no violation in {max_seed} seeds — the fuzzer cannot detect "
        "broken commutativity specifications"
    )
    return campaign.violations[0]


def test_ablation_and_counterexample_format():
    violation = _first_ablated_violation()
    small, stats = shrink(
        violation.spec,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
    )
    # shrinking must keep the failure alive and never grow the workload
    assert stats.programs_after <= stats.programs_before
    assert stats.sends_after <= stats.sends_before
    assert stats.evals > 0

    payload = counterexample_dict(
        small,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
        report=violation.report,
        stats=stats,
    )
    # the pinned on-disk format: exactly these keys, exactly this version
    assert payload["version"] == COUNTEREXAMPLE_VERSION
    assert set(payload) == {
        "version",
        "generator_seed",
        "exec_seed",
        "protocol",
        "ablation",
        "violation",
        "shrink",
        "workload",
    }
    assert set(payload["violation"]) == {
        "oo_serializable",
        "conventional_serializable",
        "committed",
        "description",
    }
    assert set(payload["shrink"]) == {"evals", "programs", "sends", "objects"}
    assert payload["generator_seed"] == violation.seed

    # the file is self-contained: a JSON round trip still reproduces
    blob = json.loads(json.dumps(payload))
    respec = WorkloadSpec.from_dict(blob["workload"])
    _, report = run_cell(
        respec,
        blob["protocol"],
        exec_seed=blob["exec_seed"],
        ablation=Ablation.from_dict(blob["ablation"]),
    )
    assert report.violation
