"""Tests for the trace projection and VODAK-style type inheritance."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.oodb.trace import analyze_committed, committed_projection
from repro.runtime import InterleavedExecutor, TransactionProgram


class Store(DatabaseObject):
    commutativity = MatrixCommutativity(
        {
            ("get", "get"): True,
            ("get", "put"): lambda a, b: a.args[0] != b.args[0],
            ("put", "put"): lambda a, b: a.args[0] != b.args[0],
        }
    )

    def setup(self):
        pass

    @dbmethod
    def get(self, key):
        return self.data.get(key)

    @dbmethod(update=True)
    def put(self, key, value):
        self.data[key] = value


class VersionedStore(Store):
    """Inherits structure and operations; adds a versioned read.

    The VODAK modeling language "supports inheritance of structure,
    operations and values" — the method table and the commutativity
    specification flow down the MRO unless overridden.
    """

    @dbmethod
    def get_with_version(self, key):
        return (self.data.get(key), self.data.get(("v", key), 0))

    @dbmethod(update=True)
    def put(self, key, value):  # override: bump a version slot too
        self.data[key] = value
        self.data[("v", key)] = self.data.get(("v", key), 0) + 1


class TestInheritance:
    def test_methods_inherited(self):
        db = ObjectDatabase()
        oid = db.create(VersionedStore)
        ctx = db.begin()
        db.send(ctx, oid, "put", "k", 1)  # overridden variant
        assert db.send(ctx, oid, "get", "k") == 1  # inherited
        assert db.send(ctx, oid, "get_with_version", "k") == (1, 1)
        db.commit(ctx)

    def test_override_replaces_base_method(self):
        specs = VersionedStore.method_specs()
        assert specs["put"].func.__qualname__.startswith("VersionedStore")
        assert specs["get"].func.__qualname__.startswith("Store")

    def test_commutativity_inherited(self):
        assert VersionedStore.commutativity is Store.commutativity

    def test_subclass_can_refine_commutativity(self):
        class StrictStore(Store):
            commutativity = MatrixCommutativity({})  # everything conflicts

        db = ObjectDatabase()
        oid = db.create(StrictStore)
        registry = db.commutativity_registry()
        assert registry.for_object(oid) is StrictStore.commutativity


class TestCommittedProjection:
    def _run_with_giveup(self):
        """A run where one transaction aborts and never retries."""
        from repro.errors import TransactionAborted

        db = ObjectDatabase()
        oid = db.create(Store)

        def good(api):
            api.send(oid, "put", "ok", 1)

        def doomed(api):
            api.send(oid, "put", "bad", 1)
            raise TransactionAborted(api.txn_id, "forced")

        programs = [
            TransactionProgram("GOOD", good),
            TransactionProgram("DOOMED", doomed, max_restarts=0),
        ]
        result = InterleavedExecutor(db, seed=0).run(programs)
        return db, result

    def test_projection_excludes_aborted(self):
        db, result = self._run_with_giveup()
        assert result.committed_labels == {"GOOD"}
        projection = committed_projection(db.system, result.committed_labels)
        assert [t.label for t in projection.tops] == ["GOOD"]
        assert all(a.top == "GOOD" for a in projection.all_actions())

    def test_projection_shares_nodes(self):
        db, result = self._run_with_giveup()
        projection = committed_projection(db.system, {"GOOD"})
        original = next(t for t in db.system.tops if t.label == "GOOD")
        assert projection.tops[0] is original

    def test_analyze_committed_clean(self):
        db, result = self._run_with_giveup()
        verdict, schedules = analyze_committed(result)
        assert verdict.oo_serializable
        # the aborted transaction's actions are invisible to the analysis
        for sched in schedules.values():
            assert all(a.top == "GOOD" for a in sched.actions)

    def test_projection_declares_all_objects(self):
        db, result = self._run_with_giveup()
        projection = committed_projection(db.system, {"GOOD"})
        assert db.system.objects <= projection.objects
