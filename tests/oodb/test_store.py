"""Tests for the on-disk page-image layer and the file-backed store."""

import os

import pytest

from repro.errors import PageError
from repro.oodb.pages import Page
from repro.oodb.store import FileBackedPageStore, PageImageStore


def make_page(page_id="PageA", **slots):
    page = Page(page_id, 16)
    for key, value in slots.items():
        page.write(key, value)
    return page


class TestPageImageStore:
    def test_round_trip_preserves_slots_and_page_lsn(self, tmp_path):
        disk = PageImageStore(str(tmp_path))
        disk.write_page(make_page(total=7, s1=3), page_lsn=42)
        loaded, page_lsn = disk.read_page("PageA")
        assert page_lsn == 42
        assert loaded.read("total") == 7
        assert loaded.read("s1") == 3

    def test_non_string_slot_keys_survive(self, tmp_path):
        disk = PageImageStore(str(tmp_path))
        page = Page("PageK", 16)
        page.write(5, "five")
        disk.write_page(page, page_lsn=1)
        loaded, _ = disk.read_page("PageK")
        assert loaded.read(5) == "five"

    def test_corrupt_image_is_rejected(self, tmp_path):
        disk = PageImageStore(str(tmp_path))
        disk.write_page(make_page(total=1), page_lsn=0)
        path = disk._index["PageA"]
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"X")  # flip the last payload byte
        with pytest.raises(PageError, match="checksum"):
            disk.read_page("PageA")

    def test_stray_tmp_is_swept_on_open(self, tmp_path):
        disk = PageImageStore(str(tmp_path))
        disk.write_page(make_page(total=1), page_lsn=0)
        torn = disk._index["PageA"] + ".tmp"
        with open(torn, "wb") as fh:
            fh.write(b"half a page image")
        reopened = PageImageStore(str(tmp_path))
        assert not os.path.exists(torn)
        loaded, _ = reopened.read_page("PageA")
        assert loaded.read("total") == 1

    def test_images_land_in_hashed_subdirectories(self, tmp_path):
        disk = PageImageStore(str(tmp_path))
        for n in range(8):
            disk.write_page(make_page(f"Page{n}", total=n), page_lsn=n)
        prefixes = {
            name
            for name in os.listdir(disk.pages_dir)
            if os.path.isdir(os.path.join(disk.pages_dir, name))
        }
        assert len(prefixes) > 1  # not one flat directory
        assert disk.page_ids == sorted(f"Page{n}" for n in range(8))


class TestFileBackedPageStore:
    def test_allocate_get_and_restart(self, tmp_path):
        store = FileBackedPageStore(str(tmp_path), frames=4)
        page = store.allocate()
        page.write("total", 9)
        store.note_write(page.page_id, 3)
        store.flush_dirty()
        store.close()

        reopened = FileBackedPageStore(str(tmp_path), frames=4)
        assert page.page_id in reopened
        assert reopened.get(page.page_id).read("total") == 9
        assert reopened.page_lsn(page.page_id) == 3
        # the meta counter survived: fresh ids never collide with old ones
        fresh = reopened.allocate()
        assert fresh.page_id != page.page_id

    def test_deallocate_removes_the_image(self, tmp_path):
        store = FileBackedPageStore(str(tmp_path), frames=4)
        page = store.allocate("PageZ")
        store.note_write("PageZ", 0)
        store.flush_dirty()
        assert store.disk.has("PageZ")
        store.deallocate("PageZ")
        assert "PageZ" not in store
        assert not store.disk.has("PageZ")

    def test_crash_makes_writes_inert_but_reads_fault_in(self, tmp_path):
        store = FileBackedPageStore(str(tmp_path), frames=4)
        page = store.allocate("PageC")
        page.write("total", 5)
        store.note_write("PageC", 1)
        store.flush_dirty()
        store.crash()
        assert store.flush_dirty() == 0
        assert store.get("PageC").read("total") == 5  # from the image
