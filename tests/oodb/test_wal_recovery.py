"""Tests for the write-ahead log and ARIES-style crash recovery."""

import json

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import DatabaseError
from repro.locking import OpenNestedLocking, PageLocking2PL
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.oodb.wal import (
    WriteAheadLog,
    recover,
    store_digest,
    verify_log,
)


class Counter(DatabaseObject):
    commutativity = MatrixCommutativity(
        {
            ("add", "add"): True,
            ("read", "add"): False,
            ("read", "read"): True,
        }
    )

    def setup(self):
        self.data["total"] = 0

    @dbmethod(update=True, compensation=lambda args, result: ("add", (-args[0],)))
    def add(self, n):
        self.data["total"] = self.data.get("total", 0) + n

    @dbmethod
    def read(self):
        return self.data.get("total", 0)


def build(scheduler_cls=OpenNestedLocking):
    wal = WriteAheadLog()
    db = ObjectDatabase(scheduler=scheduler_cls(), page_capacity=16, wal=wal)
    oid = db.create(Counter, oid="C")
    return db, wal, oid


def rebuild():
    """A recovery database with the identical deterministic bootstrap."""
    db = ObjectDatabase(page_capacity=16)
    db.create(Counter, oid="C")
    return db


class TestWriteAheadLog:
    def test_append_stamps_lsns_and_sync_orders_prefix(self):
        wal = WriteAheadLog()
        assert wal.append({"t": "begin", "txn": "T"}) == 0
        assert wal.append({"t": "commit", "txn": "T"}) == 1
        assert len(wal) == 0  # still buffered
        wal.sync()
        assert [r["lsn"] for r in wal] == [0, 1]
        verify_log(wal.to_list())

    def test_crash_loses_buffer_and_disables_appends(self):
        wal = WriteAheadLog()
        wal.append({"t": "begin", "txn": "T"})
        wal.sync()
        wal.append({"t": "commit", "txn": "T"})  # never synced
        wal.crash()
        assert [r["t"] for r in wal] == ["begin"]
        assert wal.append({"t": "abort", "txn": "T"}) == -1
        wal.reopen()
        assert wal.append({"t": "abort", "txn": "T"}) == 1

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = WriteAheadLog(str(path))
        wal.append({"t": "begin", "txn": "T"})
        wal.append({"t": "commit", "txn": "T"})
        wal.sync()
        loaded = WriteAheadLog.load(str(path))
        assert loaded.to_list() == wal.to_list()
        verify_log(loaded.to_list())

    def test_verify_log_rejects_reordered_stream(self):
        records = [{"t": "begin", "txn": "T", "lsn": 1}]
        with pytest.raises(DatabaseError):
            verify_log(records)


class TestRecovery:
    def test_loser_compensated_back_to_initial_state(self):
        db, wal, oid = build()
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 5)  # subcommits: journal = [add(-5)]
        wal.crash()  # no commit record

        recovery_db = rebuild()
        report = recover(wal, recovery_db)
        assert report.losers == ["T"]
        assert report.compensations_replayed == 1
        assert recovery_db.store.get("Page4701").read("total") == 0

    def test_winner_survives_even_if_nothing_after_commit_synced(self):
        db, wal, oid = build()
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 5)
        db.commit(ctx)  # commit record is synced before locks release
        wal.crash()

        recovery_db = rebuild()
        report = recover(wal, recovery_db)
        assert report.winners == ["T"]
        assert report.losers == []
        assert recovery_db.store.get("Page4701").read("total") == 5

    def test_closed_scheduler_loser_physically_undone(self):
        db, wal, oid = build(PageLocking2PL)
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 7)
        # Closed nesting has no subcommit to force the buffer out; model
        # the page write reaching disk before the crash.
        wal.sync()
        wal.crash()

        recovery_db = rebuild()
        report = recover(wal, recovery_db)
        assert report.losers == ["T"]
        assert report.undone >= 1
        assert report.compensations_replayed == 0
        assert recovery_db.store.get("Page4701").read("total") == 0

    def test_recovery_is_idempotent(self):
        db, wal, oid = build()
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 5)
        wal.crash()

        first = rebuild()
        recover(wal, first)
        digest = store_digest(first.store)
        second = rebuild()
        report = recover(wal, second)
        # the first recovery's comp-done/abort-done records make the second
        # a pure redo: nothing is compensated twice
        assert report.compensations_replayed == 0
        assert store_digest(second.store) == digest

    def test_skip_compensation_ablation_leaves_orphaned_effects(self):
        db, wal, oid = build()
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 5)
        wal.crash()

        recovery_db = rebuild()
        report = recover(wal, recovery_db, skip_compensation=True)
        assert report.compensations_skipped == 1
        assert recovery_db.store.get("Page4701").read("total") == 5  # broken

    def test_mixed_winner_and_loser(self):
        db, wal, oid = build()
        ctx1 = db.begin("T1")
        db.send(ctx1, oid, "add", 3)
        db.commit(ctx1)
        ctx2 = db.begin("T2")
        db.send(ctx2, oid, "add", 4)
        wal.crash()

        recovery_db = rebuild()
        report = recover(wal, recovery_db)
        assert report.winners == ["T1"]
        assert report.losers == ["T2"]
        assert recovery_db.store.get("Page4701").read("total") == 3

    def test_records_are_json_serializable(self):
        db, wal, oid = build()
        ctx = db.begin("T")
        db.send(ctx, oid, "add", 5)
        db.commit(ctx)
        for rec in wal.to_list():
            json.dumps(rec)
