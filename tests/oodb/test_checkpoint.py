"""Fuzzy checkpoints and durable (from-checkpoint) recovery."""

from repro.core.commutativity import MatrixCommutativity
from repro.locking import OpenNestedLocking
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.oodb.store import FileBackedPageStore
from repro.oodb.wal import WriteAheadLog, recover, store_digest


class Counter(DatabaseObject):
    commutativity = MatrixCommutativity(
        {
            ("add", "add"): True,
            ("read", "add"): False,
            ("read", "read"): True,
        }
    )

    def setup(self):
        self.data["total"] = 0

    @dbmethod(update=True, compensation=lambda args, result: ("add", (-args[0],)))
    def add(self, n):
        self.data["total"] = self.data.get("total", 0) + n

    @dbmethod
    def read(self):
        return self.data.get("total", 0)


def build_durable(root, frames=4, checkpoint_every=None):
    wal = WriteAheadLog()
    store = FileBackedPageStore(str(root), frames=frames, default_capacity=16)
    db = ObjectDatabase(
        scheduler=OpenNestedLocking(),
        page_capacity=16,
        wal=wal,
        store=store,
        checkpoint_every=checkpoint_every,
    )
    oid = db.create(Counter, oid="C")
    return db, wal, oid


def rebuild():
    """A recovery database with the identical deterministic bootstrap."""
    db = ObjectDatabase(page_capacity=16)
    db.create(Counter, oid="C")
    return db


def run_txns(db, oid, n, start=0):
    for i in range(start, start + n):
        ctx = db.begin(f"T{i}")
        db.send(ctx, oid, "add", i + 1)
        db.commit(ctx)


class TestCheckpoint:
    def test_checkpoint_emits_begin_and_end_with_att_and_dpt(self, tmp_path):
        db, wal, oid = build_durable(tmp_path)
        run_txns(db, oid, 2)
        end_lsn = db.checkpoint()
        records = wal.to_list()
        end = records[end_lsn]
        assert end["t"] == "ckpt-end"
        begin = records[end["begin"]]
        assert begin["t"] == "ckpt-begin"
        assert "att" in end and "dpt" in end
        assert wal.durable_checkpoint() == end

    def test_automatic_checkpoint_honors_the_interval(self, tmp_path):
        db, wal, oid = build_durable(tmp_path, checkpoint_every=10)
        run_txns(db, oid, 8)
        kinds = [r["t"] for r in wal.to_list()]
        assert kinds.count("ckpt-end") >= 2

    def test_in_memory_database_never_checkpoints(self):
        wal = WriteAheadLog()
        db = ObjectDatabase(
            scheduler=OpenNestedLocking(), page_capacity=16, wal=wal
        )
        oid = db.create(Counter, oid="C")
        run_txns(db, oid, 2)
        assert db.checkpoint() is None
        assert all(r["t"] != "ckpt-begin" for r in wal.to_list())


class TestDurableRecovery:
    def test_recovery_resumes_from_checkpoint_with_conditional_redo(
        self, tmp_path
    ):
        db, wal, oid = build_durable(tmp_path)
        run_txns(db, oid, 4)
        db.checkpoint()  # flushes dirty pages too
        ckpt_lsn = len(wal.records)
        run_txns(db, oid, 2, start=4)
        loser = db.begin("L")
        db.send(loser, oid, "add", 100)
        wal.crash()
        db.store.crash()

        recovery_db = rebuild()
        fresh = FileBackedPageStore(str(tmp_path), frames=4, default_capacity=16)
        report = recover(wal, recovery_db, store=fresh)
        assert report.winners == [f"T{i}" for i in range(6)]
        assert "L" in report.losers
        # redo never revisits the checkpointed prefix
        assert 0 < report.redo_applied < ckpt_lsn
        total = sum(range(1, 7))
        assert recovery_db.store.get("Page4701").read("total") == total

    def test_durable_digest_matches_in_memory_genesis_recovery(self, tmp_path):
        db, wal, oid = build_durable(tmp_path)
        run_txns(db, oid, 3)
        db.checkpoint()
        run_txns(db, oid, 2, start=3)
        pre_crash = wal.to_list()
        wal.crash()
        db.store.crash()

        durable_db = rebuild()
        fresh = FileBackedPageStore(str(tmp_path), frames=4, default_capacity=16)
        recover(wal, durable_db, store=fresh)

        memory_db = rebuild()
        recover(WriteAheadLog.from_records(pre_crash), memory_db)
        assert store_digest(durable_db.store) == store_digest(memory_db.store)

    def test_double_recover_is_idempotent_over_the_data_dir(self, tmp_path):
        db, wal, oid = build_durable(tmp_path, checkpoint_every=12)
        run_txns(db, oid, 5)
        loser = db.begin("L")
        db.send(loser, oid, "add", 50)
        wal.crash()
        db.store.crash()

        first_db = rebuild()
        first = recover(
            wal,
            first_db,
            store=FileBackedPageStore(str(tmp_path), frames=4, default_capacity=16),
        )
        first_digest = store_digest(first_db.store)

        second_db = rebuild()
        second = recover(
            wal,
            second_db,
            store=FileBackedPageStore(str(tmp_path), frames=4, default_capacity=16),
        )
        assert store_digest(second_db.store) == first_digest
        # the post-recovery checkpoint fenced redo: nothing to reapply
        assert second.redo_applied == 0
        assert second.losers == []
