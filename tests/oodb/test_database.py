"""Unit tests for the object database: dispatch, tracing, encapsulation,
undo and compensation."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import (
    DatabaseError,
    EncapsulationError,
    TransactionAborted,
    UnknownMethodError,
    UnknownObjectError,
)
from repro.locking import OpenNestedLocking
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod


class Box(DatabaseObject):
    """A tiny keyed container used throughout these tests."""

    commutativity = MatrixCommutativity(
        {
            ("get", "get"): True,
            ("get", "put"): lambda a, b: a.args[0] != b.args[0],
            ("put", "put"): lambda a, b: a.args[0] != b.args[0],
        }
    )

    def setup(self, initial=()):
        for key, value in initial:
            self.data[key] = value

    @dbmethod
    def get(self, key):
        return self.data.get(key)

    @dbmethod(
        update=True,
        compensation=lambda args, result: (
            ("put", (args[0], result)) if result is not None else ("erase", (args[0],))
        ),
    )
    def put(self, key, value):
        old = self.data.get(key)
        self.data[key] = value
        return old

    @dbmethod(update=True)
    def erase(self, key):
        if key in self.data:
            del self.data[key]

    @dbmethod(update=True)
    def fill_from(self, other_oid, key):
        value = self.call(other_oid, "get", key)
        self.data[key] = value
        return value

    @dbmethod(update=True)
    def spawn(self, key):
        child = self.db_create(Box, ((key, "fresh"),))
        self.data[key] = child
        return child

    @dbmethod
    def peek_other(self, other_oid, key):
        other = self._db.get_object(other_oid)
        return other.data.get(key)  # encapsulation violation!

    @dbmethod(update=True)
    def boom(self, key, value):
        self.data[key] = value
        raise TransactionAborted(self._db._current_ctx().txn_id, "boom")


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=32)


class TestCreateAndDispatch:
    def test_create_assigns_sequential_oids(self, db):
        assert db.create(Box) == "Box1"
        assert db.create(Box) == "Box2"
        assert db.has_object("Box1")
        assert set(db.object_ids) == {"Box1", "Box2"}

    def test_create_explicit_oid(self, db):
        assert db.create(Box, oid="Lunchbox") == "Lunchbox"
        with pytest.raises(DatabaseError):
            db.create(Box, oid="Lunchbox")

    def test_create_rejects_non_database_object(self, db):
        with pytest.raises(EncapsulationError):
            db.create(dict)  # type: ignore[arg-type]

    def test_setup_args(self, db):
        oid = db.create(Box, (("a", 1),))
        ctx = db.begin()
        assert db.send(ctx, oid, "get", "a") == 1
        db.commit(ctx)

    def test_send_and_commit(self, db):
        oid = db.create(Box)
        ctx = db.begin("T1")
        db.send(ctx, oid, "put", "k", "v")
        assert db.send(ctx, oid, "get", "k") == "v"
        db.commit(ctx)
        assert not ctx.is_active

    def test_unknown_object_and_method(self, db):
        oid = db.create(Box)
        ctx = db.begin()
        with pytest.raises(UnknownObjectError):
            db.send(ctx, "nope", "get", "k")
        with pytest.raises(UnknownMethodError):
            db.send(ctx, oid, "explode")

    def test_send_after_commit_rejected(self, db):
        oid = db.create(Box)
        ctx = db.begin()
        db.commit(ctx)
        with pytest.raises(TransactionAborted):
            db.send(ctx, oid, "get", "k")

    def test_nested_send_traces_call_tree(self, db):
        a = db.create(Box, (("k", "from-a"),))
        b = db.create(Box)
        ctx = db.begin("T1")
        db.send(ctx, b, "fill_from", a, "k")
        db.commit(ctx)
        root = ctx.txn.root
        (fill,) = root.children
        assert fill.obj == b and fill.method == "fill_from"
        called_objects = [child.obj for child in fill.children]
        assert a in called_objects  # the nested get
        # page accesses are primitive children
        get_node = next(c for c in fill.children if c.obj == a)
        assert any(n.method == "read" for n in get_node.children)

    def test_create_inside_transaction(self, db):
        parent = db.create(Box)
        ctx = db.begin()
        child = db.send(ctx, parent, "spawn", "kid")
        db.commit(ctx)
        assert db.has_object(child)
        ctx2 = db.begin()
        assert db.send(ctx2, child, "get", "kid") == "fresh"
        db.commit(ctx2)

    def test_create_during_transaction_via_db_create_only(self, db):
        db.create(Box)
        ctx = db.begin()
        db._local.ctx = ctx
        try:
            with pytest.raises(DatabaseError):
                db.create(Box)
        finally:
            db._local.ctx = None

    def test_two_contexts_on_one_thread_rejected(self, db):
        oid = db.create(Box)
        ctx1 = db.begin("T1")
        ctx2 = db.begin("T2")
        db._local.ctx = ctx1
        try:
            with pytest.raises(DatabaseError):
                db.send(ctx2, oid, "get", "k")
        finally:
            db._local.ctx = None


class TestEncapsulation:
    def test_state_inaccessible_outside_methods(self, db):
        oid = db.create(Box)
        obj = db.get_object(oid)
        with pytest.raises(EncapsulationError):
            obj.data["k"]

    def test_state_inaccessible_from_other_objects_methods(self, db):
        a = db.create(Box, (("k", 1),))
        b = db.create(Box)
        ctx = db.begin()
        with pytest.raises(EncapsulationError):
            db.send(ctx, b, "peek_other", a, "k")

    def test_setup_may_touch_own_state(self, db):
        # implicitly covered by create(); explicit regression guard:
        oid = db.create(Box, (("x", 1),))
        assert db.store.get(db.get_object(oid).page_id).read("x") == 1


class TestUndoAndCompensation:
    def test_abort_undoes_page_writes(self, db):
        oid = db.create(Box, (("k", "old"),))
        ctx = db.begin()
        db.send(ctx, oid, "put", "k", "new")
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, oid, "get", "k") == "old"

    def test_abort_removes_fresh_slots(self, db):
        oid = db.create(Box)
        ctx = db.begin()
        db.send(ctx, oid, "put", "fresh", 1)
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, oid, "get", "fresh") is None

    def test_abort_deallocates_created_objects_page(self, db):
        parent = db.create(Box)
        ctx = db.begin()
        child = db.send(ctx, parent, "spawn", "kid")
        child_page = db.get_object(child).page_id
        db.abort(ctx)
        assert child_page not in db.store

    def test_abort_is_idempotent(self, db):
        oid = db.create(Box)
        ctx = db.begin()
        db.send(ctx, oid, "put", "k", 1)
        db.abort(ctx)
        db.abort(ctx)  # second abort is a no-op
        assert not ctx.is_active

    def test_exception_inside_method_keeps_log_for_abort(self, db):
        oid = db.create(Box, (("k", "old"),))
        ctx = db.begin()
        with pytest.raises(TransactionAborted):
            db.send(ctx, oid, "boom", "k", "dirty")
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, oid, "get", "k") == "old"

    def test_open_nested_abort_compensates(self):
        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)
        oid = db.create(Box, (("k", "old"),))
        ctx = db.begin()
        db.send(ctx, oid, "put", "k", "new")
        db.send(ctx, oid, "put", "extra", 1)
        db.abort(ctx)
        ctx2 = db.begin()
        assert db.send(ctx2, oid, "get", "k") == "old"
        assert db.send(ctx2, oid, "get", "extra") is None
        db.commit(ctx2)

    def test_commit_inside_method_rejected(self, db):
        oid = db.create(Box)
        ctx = db.begin()
        ctx.push(ctx.current_frame)  # simulate an open frame
        with pytest.raises(DatabaseError):
            db.commit(ctx)


class TestAnalysisBridge:
    def test_registry_covers_objects_and_pages(self, db):
        oid = db.create(Box)
        registry = db.commutativity_registry()
        assert registry.for_object(oid) is Box.commutativity
        page_id = db.get_object(oid).page_id
        spec = registry.for_object(page_id)
        from repro.core.commutativity import ReadWriteCommutativity

        assert isinstance(spec, ReadWriteCommutativity)

    def test_analyze_serial_run_is_serializable(self, db):
        oid = db.create(Box)
        for label in ("T1", "T2"):
            ctx = db.begin(label)
            db.send(ctx, oid, "put", label, 1)
            db.commit(ctx)
        verdict, schedules = db.analyze()
        assert verdict.oo_serializable
        assert oid in schedules
