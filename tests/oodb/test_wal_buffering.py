"""File-mode WAL buffering: one write barrier per sync point.

The durable log keeps a persistent append handle and flushes the whole
volatile buffer as a single write + flush at each :meth:`sync` — not an
open/write/close cycle per record.  These tests pin that batching and the
things it must not change: the on-disk JSONL format, crash semantics, and
:meth:`close` being safe and reopenable.
"""

import json

from repro.oodb.wal import WriteAheadLog


class RecordingHandle:
    """Wraps a real file handle, counting write barriers."""

    def __init__(self, fh):
        self.fh = fh
        self.writes = 0
        self.flushes = 0

    def write(self, data):
        self.writes += 1
        return self.fh.write(data)

    def flush(self):
        self.flushes += 1
        return self.fh.flush()

    def close(self):
        return self.fh.close()


def test_sync_is_one_write_one_flush(tmp_path):
    path = tmp_path / "log.wal"
    wal = WriteAheadLog(str(path))
    for i in range(100):
        wal.append({"type": "set", "value": i})
    wal.sync()  # opens the persistent handle
    recorder = RecordingHandle(wal._fh)
    wal._fh = recorder
    for i in range(50):
        wal.append({"type": "set", "value": 100 + i})
    wal.sync()
    assert recorder.writes == 1
    assert recorder.flushes == 1
    # an empty buffer costs no barrier at all
    wal.sync()
    assert recorder.writes == 1
    assert recorder.flushes == 1
    wal.close()


def test_file_contents_match_durable_prefix(tmp_path):
    path = tmp_path / "log.wal"
    wal = WriteAheadLog(str(path))
    for batch in range(4):
        for i in range(5):
            wal.append({"type": "set", "batch": batch, "i": i})
        wal.sync()
    wal.close()
    on_disk = [
        json.loads(line) for line in path.read_text().splitlines() if line
    ]
    assert on_disk == wal.records
    assert [r["lsn"] for r in on_disk] == list(range(20))
    assert WriteAheadLog.load(str(path)).to_list() == wal.to_list()


def test_close_is_idempotent_and_reopenable(tmp_path):
    path = tmp_path / "log.wal"
    wal = WriteAheadLog(str(path))
    wal.append({"type": "begin", "txn": "T1"})
    wal.sync()
    wal.close()
    wal.close()  # safe to call repeatedly
    wal.append({"type": "commit", "txn": "T1"})
    wal.sync()  # reopens the handle in append mode
    wal.close()
    assert [r["type"] for r in WriteAheadLog.load(str(path))] == [
        "begin",
        "commit",
    ]


def test_crash_loses_only_the_buffer(tmp_path):
    path = tmp_path / "log.wal"
    wal = WriteAheadLog(str(path))
    wal.append({"type": "begin", "txn": "T1"})
    wal.sync()
    wal.append({"type": "commit", "txn": "T1"})  # never synced
    wal.crash()
    wal.close()
    survivors = WriteAheadLog.load(str(path))
    assert [r["type"] for r in survivors] == ["begin"]
    assert wal.append({"type": "ghost"}) == -1  # appends are dead post-crash
