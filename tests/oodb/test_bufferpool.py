"""Tests for the buffer pool: clock eviction, DPT, and the WAL rule."""

import random

import pytest

from repro.errors import PageError
from repro.oodb.bufferpool import BufferPool
from repro.oodb.pages import Page
from repro.oodb.store import PageImageStore


def pool_with(tmp_path, frames, **kwargs):
    disk = PageImageStore(str(tmp_path))
    return BufferPool(disk, frames=frames, **kwargs), disk


def new_page(pool, page_id, lsn):
    page = Page(page_id, 16)
    page.write("total", lsn)
    pool.put_new(page)
    pool.note_write(page_id, lsn)
    return page


class TestClockEviction:
    def test_first_unreferenced_frame_is_evicted(self, tmp_path):
        pool, disk = pool_with(tmp_path, frames=2)
        new_page(pool, "A", 1)
        new_page(pool, "B", 2)
        # Both referenced: the sweep clears A then B, wraps, takes A.
        new_page(pool, "C", 3)
        assert sorted(pool.frames) == ["B", "C"]
        assert disk.has("A")  # written back on the way out

    def test_recently_used_frame_survives(self, tmp_path):
        pool, _ = pool_with(tmp_path, frames=2)
        new_page(pool, "A", 1)
        new_page(pool, "B", 2)
        pool.get("A")  # re-reference A after the install cleared nothing yet
        pool._evict_one()
        pool._evict_one()
        # both evictions ran; the clock order stays deterministic
        assert pool.evictions == 2

    def test_eviction_order_is_deterministic_under_seeded_access(self, tmp_path):
        """Same seeded access pattern, same eviction/write-back tallies and
        the same resident set — replayability is what the crash fuzzer
        leans on."""
        snapshots = []
        for _ in range(2):
            root = tmp_path / f"run{len(snapshots)}"
            root.mkdir()
            pool, _ = pool_with(root, frames=4)
            rng = random.Random(17)
            for n in range(8):
                new_page(pool, f"P{n}", n)
            for step in range(200):
                page_id = f"P{rng.randrange(8)}"
                page = pool.get(page_id)
                page.write("total", step)
                pool.note_write(page_id, 100 + step)
            snapshots.append(
                (sorted(pool.frames), pool.evictions, pool.writebacks,
                 pool.hits, pool.misses)
            )
        assert snapshots[0] == snapshots[1]


class TestDirtyPageTable:
    def test_dpt_matches_a_full_frame_scan(self, tmp_path):
        """The incrementally maintained DPT must equal the reference answer
        computed by scanning every frame."""
        pool, _ = pool_with(tmp_path, frames=8)
        rng = random.Random(23)
        for n in range(6):
            new_page(pool, f"P{n}", n)
        pool.flush_dirty()  # start clean
        for step in range(100):
            page_id = f"P{rng.randrange(6)}"
            pool.get(page_id)
            pool.note_write(page_id, 50 + step)
            if step % 17 == 0:
                pool.flush_dirty()
        reference = {
            page_id: frame.rec_lsn
            for page_id, frame in pool.frames.items()
            if frame.dirty
        }
        assert pool.dirty_table() == reference
        assert reference  # the pattern actually left dirty pages

    def test_rec_lsn_is_first_dirtier_page_lsn_is_last(self, tmp_path):
        pool, _ = pool_with(tmp_path, frames=4)
        new_page(pool, "A", 3)
        pool.flush_dirty()
        pool.note_write("A", 7)
        pool.note_write("A", 9)
        assert pool.dirty_table() == {"A": 7}
        assert pool.frames["A"].page_lsn == 9

    def test_note_write_to_non_resident_page_raises(self, tmp_path):
        pool, _ = pool_with(tmp_path, frames=4)
        with pytest.raises(PageError, match="non-resident"):
            pool.note_write("ghost", 1)


class TestWalRule:
    def test_log_forced_up_to_page_lsn_before_write_back(self, tmp_path):
        events = []
        pool, disk = pool_with(tmp_path, frames=4)
        pool.connect(force_log=lambda lsn: events.append(("force", lsn)))
        real_write = disk.write_page
        disk.write_page = lambda page, lsn, fault_hit=None: (
            events.append(("write", page.page_id, lsn)),
            real_write(page, lsn),
        )
        new_page(pool, "A", 11)
        pool.flush_dirty()
        assert events == [("force", 11), ("write", "A", 11)]

    def test_skip_log_force_ablation_skips_exactly_the_force(self, tmp_path):
        events = []
        pool, disk = pool_with(tmp_path, frames=4, skip_log_force=True)
        pool.connect(force_log=lambda lsn: events.append(("force", lsn)))
        new_page(pool, "A", 11)
        pool.flush_dirty()
        assert events == []
        assert disk.has("A")  # the image still went out — that's the bug

    def test_crash_kills_frames_and_inerts_write_back(self, tmp_path):
        pool, disk = pool_with(tmp_path, frames=4)
        new_page(pool, "A", 1)
        pool.flush_dirty()
        pool.note_write("A", 2)
        pool.crash()
        assert pool.frames == {}
        assert pool.flush_dirty() == 0
        # reads still fault in from the surviving image
        assert pool.get("A").read("total") == 1
        assert pool.page_lsn("A") == 1
