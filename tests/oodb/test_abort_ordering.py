"""Property tests for rollback ordering and delta-aware undo.

Satellites of the crash-recovery work: (1) a top-level abort consumes the
frame journal strictly in reverse chronological order — any other order
restores stale before-images when one slot is written repeatedly; (2)
:meth:`UndoRecord.resolve` removes exactly the forward delta when later
commuting writers moved a slot past the journaled after-image, and
degrades to the exact absolute restore when nothing interleaved.
"""

import random

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.locking import OpenNestedLocking
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.oodb.log import DELETED, UNKNOWN, FrameLog, UndoRecord
from repro.oodb.pages import PageStore


class Scratch(DatabaseObject):
    """Raw slot access: every write journals an UndoRecord (no comps)."""

    commutativity = MatrixCommutativity({("scribble", "scribble"): False})

    def setup(self):
        pass

    @dbmethod(update=True)
    def scribble(self, writes):
        for slot, value in writes:
            self.data[slot] = value


def snapshot(store):
    return {
        page_id: dict(store.get(page_id).slots) for page_id in store.page_ids
    }


class TestReverseChronologicalRollback:
    @pytest.mark.parametrize("seed", range(6))
    def test_abort_restores_exact_prior_state(self, seed):
        """Randomized repeated writes to few slots; only strictly
        reverse-chronological undo can reproduce the pre-transaction state."""
        rng = random.Random(seed)
        db = ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)
        oid = db.create(Scratch, oid="S")
        before = snapshot(db.store)

        ctx = db.begin("T")
        for _ in range(rng.randrange(2, 6)):
            writes = [
                (f"s{rng.randrange(3)}", rng.randrange(100))
                for _ in range(rng.randrange(1, 8))
            ]
            db.send(ctx, oid, "scribble", writes)
        db.abort(ctx)
        assert snapshot(db.store) == before

    def test_journal_preserves_chronology_across_merges(self):
        parent, child = FrameLog(), FrameLog()
        parent.record(UndoRecord("P", "a", True, 1))
        child.record(UndoRecord("P", "a", True, 2))
        child.record(UndoRecord("P", "b", False, None))
        parent.merge_child(child)
        parent.record(UndoRecord("P", "a", True, 3))
        assert [getattr(e, "before", None) for e in parent.entries] == [1, 2, None, 3]
        assert child.is_empty


class TestDeltaAwareUndo:
    def _store(self, **slots):
        store = PageStore(16)
        page = store.allocate("P")
        page.slots.update(slots)
        return store

    def test_exact_restore_when_untouched(self):
        store = self._store(total=8)
        rec = UndoRecord("P", "total", True, 5, after=8)
        assert rec.resolve(store) == ("set", 5)
        rec.apply(store)
        assert store.get("P").read("total") == 5

    def test_delta_when_commuting_writer_interleaved(self):
        # forward: 5 -> 8 (+3); interloper: 8 -> 12 (+4); undo must yield 9
        store = self._store(total=12)
        rec = UndoRecord("P", "total", True, 5, after=8)
        assert rec.resolve(store) == ("set", 9)

    def test_unknown_after_is_legacy_absolute(self):
        store = self._store(total=12)
        rec = UndoRecord("P", "total", True, 5, after=UNKNOWN)
        assert rec.resolve(store) == ("set", 5)

    def test_undo_of_delete_restores_before(self):
        store = self._store()
        rec = UndoRecord("P", "total", True, 5, after=DELETED)
        rec.apply(store)
        assert store.get("P").read("total") == 5

    def test_created_slot_removed_when_untouched(self):
        store = self._store(fresh=3)
        rec = UndoRecord("P", "fresh", False, None, after=3)
        assert rec.resolve(store) == ("del", None)
        rec.apply(store)
        assert not store.get("P").has("fresh")

    def test_created_slot_keeps_interloper_delta(self):
        # forward created 3; interloper added 2 on top; undo leaves the 2
        store = self._store(fresh=5)
        rec = UndoRecord("P", "fresh", False, None, after=3)
        assert rec.resolve(store) == ("set", 2)

    def test_non_numeric_interference_falls_back_to_absolute(self):
        store = self._store(name="interloper")
        rec = UndoRecord("P", "name", True, "original", after="forward")
        assert rec.resolve(store) == ("set", "original")

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_undo_converges_in_any_order(self, seed):
        """Two commuting forward writes to one slot, undone in either
        order, converge to the original value — the property that keeps
        concurrent rollbacks and crash recovery sound."""
        rng = random.Random(seed)
        start = rng.randrange(10)
        d1, d2 = rng.randrange(1, 5), rng.randrange(1, 5)
        # forward history: start -> start+d1 -> start+d1+d2
        rec1 = UndoRecord("P", "t", True, start, after=start + d1)
        rec2 = UndoRecord("P", "t", True, start + d1, after=start + d1 + d2)
        for order in ([rec1, rec2], [rec2, rec1]):
            store = self._store(t=start + d1 + d2)
            for rec in order:
                rec.apply(store)
            assert store.get("P").read("t") == start
