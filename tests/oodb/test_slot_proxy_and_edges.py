"""Coverage of SlotProxy mapping behaviour and database edge cases."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import SimulationError
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod


class Bag(DatabaseObject):
    commutativity = MatrixCommutativity({}, default=True)

    def setup(self):
        pass

    @dbmethod(update=True)
    def fill(self, pairs):
        for key, value in pairs:
            self.data[key] = value

    @dbmethod
    def snapshot(self):
        proxy = self.data
        return {
            "keys": sorted(proxy.keys()),
            "items": sorted(proxy.items()),
            "len": len(proxy),
            "iter": sorted(iter(proxy)),
            "has_a": "a" in proxy,
            "has_z": "z" in proxy,
        }

    @dbmethod(update=True)
    def drop(self, key):
        del self.data[key]

    @dbmethod
    def strict_get(self, key):
        return self.data[key]


@pytest.fixture
def db():
    return ObjectDatabase(page_capacity=16)


class TestSlotProxy:
    def test_mapping_protocol(self, db):
        bag = db.create(Bag)
        ctx = db.begin()
        db.send(ctx, bag, "fill", (("a", 1), ("b", 2)))
        snapshot = db.send(ctx, bag, "snapshot")
        db.commit(ctx)
        assert snapshot == {
            "keys": ["a", "b"],
            "items": [("a", 1), ("b", 2)],
            "len": 2,
            "iter": ["a", "b"],
            "has_a": True,
            "has_z": False,
        }

    def test_getitem_raises_keyerror(self, db):
        bag = db.create(Bag)
        ctx = db.begin()
        with pytest.raises(KeyError):
            db.send(ctx, bag, "strict_get", "missing")
        db.abort(ctx)

    def test_delete_slot(self, db):
        bag = db.create(Bag)
        ctx = db.begin()
        db.send(ctx, bag, "fill", (("a", 1),))
        db.send(ctx, bag, "drop", "a")
        assert db.send(ctx, bag, "snapshot")["len"] == 0
        db.commit(ctx)

    def test_page_stats_counted(self, db):
        bag = db.create(Bag)
        ctx = db.begin()
        db.send(ctx, bag, "fill", (("a", 1),))
        db.send(ctx, bag, "snapshot")
        assert ctx.stats.page_writes >= 1
        assert ctx.stats.page_reads >= 1
        db.commit(ctx)


class TestExecutorEdges:
    def test_max_ticks_guard(self):
        from repro.runtime import InterleavedExecutor, TransactionProgram

        db = ObjectDatabase()
        bag = db.create(Bag)

        def endless(api):
            for _ in range(10_000):
                api.work(1)

        executor = InterleavedExecutor(db, seed=0, max_ticks=50)
        with pytest.raises(SimulationError):
            executor.run([TransactionProgram("T1", endless)])

    def test_run_sequential_abort_path(self):
        from repro.errors import TransactionAborted
        from repro.runtime import TransactionProgram, run_sequential

        db = ObjectDatabase()
        bag = db.create(Bag)

        def doomed(api):
            api.send(bag, "fill", (("a", 1),))
            raise TransactionAborted(api.txn_id, "nope")

        outcomes = run_sequential(db, [TransactionProgram("T1", doomed)])
        assert not outcomes[0].committed
        ctx = db.begin()
        assert db.send(ctx, bag, "snapshot")["len"] == 0
        db.commit(ctx)


class TestSchedulerEdges:
    def test_describe(self):
        from repro.locking import OpenNestedLocking

        assert OpenNestedLocking().describe() == "open-nested-oo"

    def test_spec_for_unknown_object_is_conservative(self):
        from repro.core.commutativity import ConflictAll
        from repro.locking import OpenNestedLocking

        scheduler = OpenNestedLocking()
        db = ObjectDatabase(scheduler=scheduler)
        assert isinstance(scheduler._spec_for("Ghost"), ConflictAll)

    def test_serial_witness(self):
        from repro.core import analyze_system
        from repro.scenarios import scenario_same_key_conflict

        scenario = scenario_same_key_conflict()
        _, schedules = analyze_system(scenario.system, scenario.registry)
        witness = schedules["BpTree"].serial_witness()
        assert witness is not None
        t3_pos = next(i for i, w in enumerate(witness) if "T3" in w)
        t4_pos = next(i for i, w in enumerate(witness) if "T4" in w)
        assert t3_pos < t4_pos
