"""Unit tests for method specs, frame logs and transaction contexts."""

import pytest

from repro.oodb.context import Frame, TransactionContext, TxnStatus
from repro.oodb.log import (
    CompensationRecord,
    FrameLog,
    PageAllocationRecord,
    UndoRecord,
)
from repro.oodb.method import dbmethod
from repro.oodb.pages import PageStore
from repro.core.transactions import TransactionSystem


class TestDbMethod:
    def test_bare_decorator_marks_read(self):
        @dbmethod
        def lookup(self, key):
            pass

        spec = lookup.__dbmethod__
        assert spec.name == "lookup"
        assert not spec.update
        assert spec.compensation is None
        assert spec.compensation_call(("k",), None) is None

    def test_update_flag(self):
        @dbmethod(update=True)
        def mutate(self):
            pass

        assert mutate.__dbmethod__.update

    def test_named_compensation(self):
        @dbmethod(compensation="withdraw")
        def deposit(self, amount):
            pass

        spec = deposit.__dbmethod__
        assert spec.update  # compensation implies update
        assert spec.compensation_call((10,), None) == ("withdraw", (10,))

    def test_callable_compensation_uses_result(self):
        @dbmethod(compensation=lambda args, result: ("restore", (result,)))
        def change(self, text):
            pass

        spec = change.__dbmethod__
        assert spec.compensation_call(("new",), "old") == ("restore", ("old",))

    def test_callable_compensation_may_decline(self):
        @dbmethod(
            compensation=lambda args, result: None if result is None else ("undo", args)
        )
        def maybe(self, key):
            pass

        spec = maybe.__dbmethod__
        assert spec.compensation_call(("k",), None) is None
        assert spec.compensation_call(("k",), 1) == ("undo", ("k",))


class TestUndoRecords:
    def test_undo_restores_before_image(self):
        store = PageStore()
        page = store.allocate("P")
        page.write("slot", "old")
        record = UndoRecord("P", "slot", had_slot=True, before="old")
        page.write("slot", "new")
        record.apply(store)
        assert page.read("slot") == "old"

    def test_undo_removes_created_slot(self):
        store = PageStore()
        page = store.allocate("P")
        record = UndoRecord("P", "slot", had_slot=False, before=None)
        page.write("slot", "new")
        record.apply(store)
        assert not page.has("slot")

    def test_page_allocation_record_deallocates(self):
        store = PageStore()
        store.allocate("P")
        PageAllocationRecord("P").apply(store)
        assert "P" not in store
        # idempotent on re-apply
        PageAllocationRecord("P").apply(store)


class TestFrameLog:
    def test_chronological_merge(self):
        parent = FrameLog()
        child = FrameLog()
        parent.record(UndoRecord("P", "a", True, 1))
        child.record(CompensationRecord("O", "undo", ()))
        parent.merge_child(child)
        assert len(parent) == 2
        assert isinstance(parent.entries[-1], CompensationRecord)
        assert child.is_empty

    def test_filters(self):
        log = FrameLog()
        log.record(UndoRecord("P", "a", True, 1))
        log.record(CompensationRecord("O", "undo", ()))
        assert len(log.undo_entries) == 1
        assert len(log.compensations) == 1

    def test_compensation_record_str(self):
        record = CompensationRecord("Box1", "erase", ("k",))
        assert "Box1.erase('k')" in str(record)


class TestTransactionContext:
    def _ctx(self):
        system = TransactionSystem()
        return TransactionContext(system.transaction("T1"))

    def test_initial_state(self):
        ctx = self._ctx()
        assert ctx.is_active
        assert ctx.status is TxnStatus.ACTIVE
        assert ctx.depth == 0
        assert ctx.current_frame is ctx.root_frame

    def test_push_pop(self):
        ctx = self._ctx()
        frame = Frame(node=ctx.txn.root.call("O", "m"))
        ctx.push(frame)
        assert ctx.depth == 1
        assert ctx.current_frame is frame
        assert ctx.pop() is frame
        assert ctx.depth == 0

    def test_cannot_pop_root(self):
        ctx = self._ctx()
        with pytest.raises(RuntimeError):
            ctx.pop()

    def test_txn_id(self):
        assert self._ctx().txn_id == "T1"
