"""Unit tests for pages and the page store."""

import pytest

from repro.errors import PageError
from repro.oodb.pages import DEFAULT_PAGE_CAPACITY, Page, PageStore


class TestPage:
    def test_read_write_roundtrip(self):
        page = Page("P1", capacity=4)
        page.write("a", 1)
        assert page.read("a") == 1
        assert page.read("missing") is None
        assert page.read("missing", 42) == 42

    def test_has_and_keys(self):
        page = Page("P1", capacity=4)
        page.write("a", 1)
        page.write("b", 2)
        assert page.has("a") and not page.has("c")
        assert sorted(page.keys()) == ["a", "b"]
        assert len(page) == 2

    def test_capacity_enforced_for_new_slots(self):
        page = Page("P1", capacity=2)
        page.write("a", 1)
        page.write("b", 2)
        assert page.is_full
        with pytest.raises(PageError):
            page.write("c", 3)

    def test_overwrite_allowed_when_full(self):
        page = Page("P1", capacity=1)
        page.write("a", 1)
        page.write("a", 2)  # must not raise
        assert page.read("a") == 2

    def test_delete(self):
        page = Page("P1", capacity=2)
        page.write("a", 1)
        page.delete("a")
        assert not page.has("a")
        with pytest.raises(PageError):
            page.delete("a")

    def test_free_slots(self):
        page = Page("P1", capacity=3)
        page.write("a", 1)
        assert page.free_slots == 2


class TestPageStore:
    def test_allocate_auto_ids(self):
        store = PageStore()
        first = store.allocate()
        second = store.allocate()
        assert first.page_id != second.page_id
        assert first.page_id.startswith("Page")
        assert first.capacity == DEFAULT_PAGE_CAPACITY

    def test_allocate_explicit_id_and_capacity(self):
        store = PageStore(default_capacity=8)
        page = store.allocate("MyPage", capacity=2)
        assert store.get("MyPage") is page
        assert page.capacity == 2
        assert store.allocate().capacity == 8

    def test_duplicate_id_rejected(self):
        store = PageStore()
        store.allocate("P")
        with pytest.raises(PageError):
            store.allocate("P")

    def test_get_unknown_page(self):
        store = PageStore()
        with pytest.raises(PageError):
            store.get("nope")

    def test_deallocate(self):
        store = PageStore()
        store.allocate("P")
        assert "P" in store
        store.deallocate("P")
        assert "P" not in store
        with pytest.raises(PageError):
            store.deallocate("P")

    def test_len_and_page_ids(self):
        store = PageStore()
        store.allocate("A")
        store.allocate("B")
        assert len(store) == 2
        assert set(store.page_ids) == {"A", "B"}
