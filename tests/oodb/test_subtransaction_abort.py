"""Tests for programmatic subtransaction abort (send_atomic)."""

import pytest

from repro.core.commutativity import MatrixCommutativity
from repro.errors import SubtransactionAbort
from repro.locking import OpenNestedLocking
from repro.oodb import DatabaseObject, ObjectDatabase, dbmethod
from repro.structures import build_encyclopedia


class Ledger(DatabaseObject):
    commutativity = MatrixCommutativity(
        {
            ("read", "read"): True,
            ("append", "append"): True,
            ("append", "read"): False,
        }
    )

    def setup(self):
        self.data["__n"] = 0

    @dbmethod(update=True, compensation=lambda args, result: ("unappend", ()))
    def append(self, value):
        n = self.data["__n"]
        self.data[("e", n)] = value
        self.data["__n"] = n + 1
        return n

    @dbmethod(update=True)
    def unappend(self):
        n = self.data["__n"] - 1
        if n >= 0:
            del self.data[("e", n)]
            self.data["__n"] = n

    @dbmethod
    def read(self):
        return [self.data[("e", i)] for i in range(self.data["__n"])]

    @dbmethod(update=True)
    def append_then_fail(self, value):
        self.call(self.oid, "append", value)
        raise SubtransactionAbort("changed my mind")


@pytest.fixture
def db():
    return ObjectDatabase(scheduler=OpenNestedLocking(), page_capacity=32)


class TestSendAtomic:
    def test_success_behaves_like_send(self, db):
        ledger = db.create(Ledger)
        ctx = db.begin()
        assert db.send_atomic(ctx, ledger, "append", "a") == 0
        db.commit(ctx)
        check = db.begin()
        assert db.send(check, ledger, "read") == ["a"]
        db.commit(check)

    def test_sub_abort_rolls_back_only_the_subtransaction(self, db):
        ledger = db.create(Ledger)
        ctx = db.begin()
        db.send(ctx, ledger, "append", "keep")
        outcome = db.send_atomic(
            ctx, ledger, "append_then_fail", "drop", default="aborted"
        )
        assert outcome == "aborted"
        db.send(ctx, ledger, "append", "more")
        db.commit(ctx)
        check = db.begin()
        assert db.send(check, ledger, "read") == ["keep", "more"]
        db.commit(check)

    def test_sub_abort_erases_trace(self, db):
        ledger = db.create(Ledger)
        ctx = db.begin()
        db.send_atomic(ctx, ledger, "append_then_fail", "ghost")
        db.send(ctx, ledger, "append", "real")
        db.commit(ctx)
        methods = [a.method for a in ctx.txn.actions()]
        assert "append_then_fail" not in methods
        assert methods.count("append") == 1

    def test_sub_abort_releases_locks(self, db):
        ledger = db.create(Ledger)
        t1 = db.begin("T1")
        db.send_atomic(t1, ledger, "append_then_fail", "x")
        # the aborted subtransaction's semantic/page locks are gone: a
        # conflicting reader in another transaction proceeds immediately
        t2 = db.begin("T2")
        assert db.send(t2, ledger, "read") == []
        db.commit(t2)
        db.commit(t1)

    def test_escalation_via_plain_send(self, db):
        ledger = db.create(Ledger)
        ctx = db.begin()
        with pytest.raises(SubtransactionAbort):
            db.send(ctx, ledger, "append_then_fail", "x")
        db.abort(ctx)
        check = db.begin()
        assert db.send(check, ledger, "read") == []
        db.commit(check)

    def test_outer_abort_after_sub_abort_is_clean(self, db):
        ledger = db.create(Ledger)
        ctx = db.begin()
        db.send(ctx, ledger, "append", "a")
        db.send_atomic(ctx, ledger, "append_then_fail", "b")
        db.abort(ctx)
        check = db.begin()
        assert db.send(check, ledger, "read") == []
        db.commit(check)

    def test_sub_abort_inside_encyclopedia(self, db):
        enc = build_encyclopedia(db, order=4)
        ctx = db.begin()
        db.send(ctx, enc, "insertItem", "keep", 1)
        # abort an insert as a subtransaction by sending through the
        # atomic wrapper and raising from a hook: simulate via duplicate
        # key, which raises DatabaseError (not SubtransactionAbort) —
        # plain application errors pass through unchanged
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            db.send_atomic(ctx, enc, "insertItem", "keep", 2)
        db.commit(ctx)

    def test_program_api_exposure(self, db):
        from repro.runtime import InterleavedExecutor, TransactionProgram

        ledger = db.create(Ledger)

        def body(api):
            api.send(ledger, "append", "a")
            assert api.send_atomic(ledger, "append_then_fail", "b", default=-1) == -1
            api.send(ledger, "append", "c")

        result = InterleavedExecutor(db, seed=0).run(
            [TransactionProgram("T1", body)]
        )
        assert result.all_committed
        check = db.begin()
        assert db.send(check, ledger, "read") == ["a", "c"]
        db.commit(check)
