"""Commutativity specifications (Definition 9).

The paper assumes *"a commutativity matrix for every object for all their
actions.  It specifies for every action pair if they commute or if they are
in conflict."*  The matrix may depend on parameter values and object state
(the escrow method, refs [9, 14, 17] of the paper), which is why every
specification here receives full :class:`~repro.core.actions.Invocation`
values rather than bare method names.

Definition 9 also exempts actions of the same *process*: changes made by an
action may be perceived by a later action of the same process; that is a
question of correct serial implementation, not of concurrency.  The
:class:`CommutativityRegistry` applies this exemption in
:meth:`CommutativityRegistry.in_conflict`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable

from repro.errors import CommutativityError
from repro.core.actions import ActionNode, Invocation, same_process
from repro.core.identifiers import ObjectId, original_object_id

PairwisePredicate = Callable[[Invocation, Invocation], bool]


class CommutativitySpec(ABC):
    """Decides whether two invocations on one object commute."""

    @abstractmethod
    def commutes(self, first: Invocation, second: Invocation) -> bool:
        """True iff the two invocations commute (symmetric)."""

    def conflicts(self, first: Invocation, second: Invocation) -> bool:
        return not self.commutes(first, second)


class ConflictAll(CommutativitySpec):
    """The most conservative specification: every action pair conflicts.

    This is the implicit specification of an object whose semantics are
    unknown; using it everywhere degrades oo-serializability to conventional
    operation-level serializability.
    """

    def commutes(self, first: Invocation, second: Invocation) -> bool:
        return False


class ReadWriteCommutativity(CommutativitySpec):
    """Classical read/write semantics: only two reads commute.

    This is the page-level specification: ``Page.read`` commutes with
    ``Page.read``; every pair involving ``Page.write`` conflicts.  Unknown
    methods are treated as writes (conservative).
    """

    def __init__(self, read_methods: Iterable[str] = ("read",)):
        self.read_methods = frozenset(read_methods)

    def commutes(self, first: Invocation, second: Invocation) -> bool:
        return first.method in self.read_methods and second.method in self.read_methods


class PredicateCommutativity(CommutativitySpec):
    """Commutativity decided by an arbitrary symmetric predicate."""

    def __init__(self, predicate: PairwisePredicate, description: str = ""):
        self._predicate = predicate
        self.description = description

    def commutes(self, first: Invocation, second: Invocation) -> bool:
        return bool(self._predicate(first, second) or self._predicate(second, first))


class MatrixCommutativity(CommutativitySpec):
    """A commutativity matrix over method names, optionally parameterized.

    ``matrix`` maps unordered method-name pairs to either a boolean or a
    predicate over the two invocations.  Pairs are normalized, so
    ``("insert", "search")`` and ``("search", "insert")`` denote one entry.
    Method pairs without an entry fall back to ``default`` (conflict, unless
    stated otherwise — the safe direction).

    Example — the paper's B+-tree leaf (Example 1): two ``insert`` actions
    commute iff they insert *different* keys; ``insert``/``search`` conflict
    iff they touch the *same* key::

        leaf_spec = MatrixCommutativity({
            ("insert", "insert"): lambda a, b: a.args[0] != b.args[0],
            ("insert", "search"): lambda a, b: a.args[0] != b.args[0],
            ("search", "search"): True,
        })
    """

    def __init__(
        self,
        matrix: dict[tuple[str, str], bool | PairwisePredicate],
        default: bool = False,
    ):
        self._matrix: dict[tuple[str, str], bool | PairwisePredicate] = {}
        self.default = default
        for (m1, m2), value in matrix.items():
            key = self._key(m1, m2)
            if key in self._matrix and self._matrix[key] is not value:
                raise CommutativityError(
                    f"conflicting matrix entries for method pair {key}"
                )
            self._matrix[key] = value

    @staticmethod
    def _key(m1: str, m2: str) -> tuple[str, str]:
        return (m1, m2) if m1 <= m2 else (m2, m1)

    def commutes(self, first: Invocation, second: Invocation) -> bool:
        entry = self._matrix.get(self._key(first.method, second.method))
        if entry is None:
            return self.default
        if callable(entry):
            # Entries are written for the normalized (sorted) method order.
            if (first.method, second.method) == self._key(first.method, second.method):
                return bool(entry(first, second))
            return bool(entry(second, first))
        return bool(entry)


class EscrowCommutativity(CommutativitySpec):
    """Escrow-style commutativity for bounded numeric objects.

    Increments always commute with increments and decrements always commute
    with decrements; an increment and a decrement commute as long as neither
    order can push the value outside ``[low, high]`` — which, with unknown
    interleaved history, we approximate by requiring both state snapshots
    (when available) to tolerate both operations in either order.  Reads
    conflict with updates (they observe the value) and commute with reads.

    This reproduces the paper's reference to the escrow method ([9, 14, 17]):
    including "parameter values and the status of accessed objects in the
    commutativity definition".
    """

    def __init__(
        self,
        increment: str = "deposit",
        decrement: str = "withdraw",
        read: str = "balance",
        low: float | None = 0.0,
        high: float | None = None,
    ):
        self.increment = increment
        self.decrement = decrement
        self.read = read
        self.low = low
        self.high = high

    def _delta(self, inv: Invocation) -> float | None:
        if inv.method == self.increment:
            return float(inv.args[0]) if inv.args else 1.0
        if inv.method == self.decrement:
            return -(float(inv.args[0]) if inv.args else 1.0)
        return None

    def commutes(self, first: Invocation, second: Invocation) -> bool:
        if first.method == self.read and second.method == self.read:
            return True
        if first.method == self.read or second.method == self.read:
            return False  # a read observes the current value
        delta1 = self._delta(first)
        delta2 = self._delta(second)
        if delta1 is None or delta2 is None:
            return False  # unknown method: conservative
        if delta1 >= 0 and delta2 >= 0:
            return self.high is None or self._both_orders_ok(first, second)
        if delta1 <= 0 and delta2 <= 0:
            return self.low is None or self._both_orders_ok(first, second)
        # Mixed increment/decrement: both orders must respect the bounds.
        return self._both_orders_ok(first, second)

    def _both_orders_ok(self, first: Invocation, second: Invocation) -> bool:
        """Check both execution orders against the bounds, given state.

        Without a state snapshot we cannot prove safety, so we conservatively
        report a conflict (the lock manager then serializes the pair).  When
        the two invocations carry *different* snapshots (taken at different
        request times), safety must hold under every one of them — anything
        else would make the commutativity test order-dependent.
        """
        states = {
            float(inv.state) for inv in (first, second) if inv.state is not None
        }
        if not states:
            return False
        delta1 = self._delta(first) or 0.0
        delta2 = self._delta(second) or 0.0
        for value in states:
            for order in ((delta1, delta2), (delta2, delta1)):
                running = value
                for delta in order:
                    running += delta
                    if self.low is not None and running < self.low:
                        return False
                    if self.high is not None and running > self.high:
                        return False
        return True


class CommutativityRegistry:
    """Maps objects to their commutativity specifications.

    Lookup order: exact object id, then registered prefix rules (longest
    prefix first), then the default specification.  Virtual objects created
    by the Definition 5 extension inherit their original's specification.
    """

    def __init__(self, default: CommutativitySpec | None = None):
        self.default = default if default is not None else ConflictAll()
        self._exact: dict[ObjectId, CommutativitySpec] = {}
        self._prefixes: list[tuple[str, CommutativitySpec]] = []

    def copy(self) -> "CommutativityRegistry":
        """A registry with the same mappings that can be mutated freely.

        Specifications themselves are shared (they are immutable); only the
        lookup tables are copied.  The fuzz oracle uses this to break
        entries without contaminating the scheduler's live registry.
        """
        clone = CommutativityRegistry(default=self.default)
        clone._exact = dict(self._exact)
        clone._prefixes = list(self._prefixes)
        return clone

    def register(self, oid: ObjectId, spec: CommutativitySpec) -> None:
        """Register the specification of one object."""
        self._exact[oid] = spec

    def register_prefix(self, prefix: str, spec: CommutativitySpec) -> None:
        """Register a specification for every object id with this prefix.

        Useful for object families such as ``Page*`` or ``Leaf*``.
        """
        self._prefixes.append((prefix, spec))
        self._prefixes.sort(key=lambda item: len(item[0]), reverse=True)

    def for_object(self, oid: ObjectId) -> CommutativitySpec:
        oid = original_object_id(oid)
        if oid in self._exact:
            return self._exact[oid]
        for prefix, spec in self._prefixes:
            if oid.startswith(prefix):
                return spec
        return self.default

    # -- Definition 9 ---------------------------------------------------------

    def commute(self, a: ActionNode, b: ActionNode) -> bool:
        """Definition 9: same-process actions always commute; otherwise ask
        the object's specification."""
        if same_process(a, b):
            return True
        return self.for_object(a.obj).commutes(a.invocation(), b.invocation())

    def in_conflict(self, a: ActionNode, b: ActionNode) -> bool:
        if a.obj != b.obj and original_object_id(a.obj) != original_object_id(b.obj):
            raise CommutativityError(
                f"conflict is only defined for actions on one object: "
                f"{a.label} vs {b.label}"
            )
        return not self.commute(a, b)
