"""Messages and actions (Definitions 1-3).

A *message* ``O.m(parameters)`` is a parameterized method of an object sent
to that object (Definition 1).  Messages relevant to concurrency control are
hierarchically numbered and called *actions* (Definition 2); an action that
calls no other action is *primitive* (Definition 3).

An :class:`ActionNode` is one action inside the call tree of an
object-oriented transaction.  The tree records

- the call relationship ``m -> m'`` (parent/children),
- the (transaction) precedence relation: a partial order over each action
  set ``A_w`` (the direct children of an action), and
- an execution sequence number ``seq`` which supplies the total order on
  conflicting primitive actions required by Axiom 1.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ModelError
from repro.core.identifiers import ActionId, ObjectId, format_action_id


@dataclass(frozen=True)
class Invocation:
    """A method invocation as seen by a commutativity specification.

    Commutativity (Definition 9) may depend on the method name, its
    parameters and — for escrow-style specifications — the object state at
    execution time, which is why the invocation carries an optional free-form
    ``state`` snapshot.
    """

    obj: ObjectId
    method: str
    args: tuple = ()
    state: object = None

    def __hash__(self) -> int:
        # Invocations key the lock table's commutativity memo cache, where
        # each is hashed once per held-lock comparison; the generated
        # dataclass hash would rebuild the field tuple every time.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.obj, self.method, self.args, self.state))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        rendered_args = ", ".join(repr(a) for a in self.args)
        return f"{self.obj}.{self.method}({rendered_args})"


@dataclass(eq=False)
class ActionNode:
    """One action in an oo-transaction tree.

    Identity is by object identity (two nodes with equal fields are still
    distinct actions); ``aid`` is unique within a transaction system and used
    for ordering and display.
    """

    aid: ActionId
    obj: ObjectId
    method: str
    args: tuple = ()
    parent: Optional["ActionNode"] = None
    top: str = ""
    seq: int = 0
    #: object-state snapshot taken when the action was dispatched; carried
    #: into :meth:`invocation` so that state-dependent commutativity
    #: specifications (escrow, queues) evaluate identically at scheduling
    #: time and at analysis time.
    state: object = None
    virtual: bool = False
    original: Optional["ActionNode"] = None
    children: list["ActionNode"] = field(default_factory=list)
    #: precedence edges among direct children, as pairs of child aids
    precedence: set[tuple[ActionId, ActionId]] = field(default_factory=set)
    #: set by the builder: next seq number source (root nodes only)
    _seq_counter: list[int] | None = None

    # -- construction ------------------------------------------------------

    def call(
        self,
        obj: ObjectId,
        method: str,
        args: tuple = (),
        *,
        parallel: bool = False,
        seq: int | None = None,
    ) -> "ActionNode":
        """Append a called action (a child in the call tree).

        By default the new action is ordered after the previous sibling
        (sequential programs).  With ``parallel=True`` no precedence edge is
        added, modelling intra-transaction parallelism: the new action forms
        its own *process* in the sense of Definition 9.
        """
        child_index = len(self.children) + 1
        child = ActionNode(
            aid=self.aid + (child_index,),
            obj=obj,
            method=method,
            args=args,
            parent=self,
            top=self.top,
            seq=self._next_seq() if seq is None else seq,
        )
        if self.children and not parallel:
            self.precedence.add((self.children[-1].aid, child.aid))
        self.children.append(child)
        self._closure_cache = None
        return child

    def add_precedence(self, before: "ActionNode", after: "ActionNode") -> None:
        """Record that ``before`` precedes ``after`` in this action set."""
        if before.parent is not self or after.parent is not self:
            raise ModelError(
                "precedence is only defined between actions of one action set"
            )
        if before is after:
            raise ModelError("an action cannot precede itself")
        self.precedence.add((before.aid, after.aid))
        self._closure_cache = None

    def _next_seq(self) -> int:
        root = self.root
        if root._seq_counter is None:
            root._seq_counter = [0]
        root._seq_counter[0] += 1
        return root._seq_counter[0]

    # -- structure queries (Definitions 1-3) --------------------------------

    @property
    def is_primitive(self) -> bool:
        """Definition 3: an action is primitive if it calls no other action."""
        return not self.children

    @property
    def root(self) -> "ActionNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def depth(self) -> int:
        return len(self.aid) - 1

    def iter_subtree(self) -> Iterator["ActionNode"]:
        """This action and all actions it transitively calls (``m ->+``)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def descendants(self) -> Iterator["ActionNode"]:
        """All actions transitively called by this one (``m ->*``)."""
        for child in self.children:
            yield from child.iter_subtree()

    def ancestors(self) -> Iterator["ActionNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def calls(self, other: "ActionNode") -> bool:
        """Direct call relationship ``self -> other``."""
        return other.parent is self

    def calls_transitively(self, other: "ActionNode") -> bool:
        """Transitive call relationship ``self ->* other`` (proper)."""
        return any(node is self for node in other.ancestors())

    def sibling_index(self) -> int:
        if self.parent is None:
            raise ModelError("the root action has no siblings")
        for index, child in enumerate(self.parent.children):
            if child is self:
                return index
        raise ModelError("action is not among its parent's children")

    # -- precedence queries --------------------------------------------------

    def precedes_sibling(self, other: "ActionNode") -> bool:
        """True iff ``self`` precedes ``other`` in their shared action set.

        Uses the transitive closure of the recorded precedence edges.
        """
        if self.parent is None or other.parent is not self.parent:
            return False
        closure = self.parent._precedence_closure()
        return (self.aid, other.aid) in closure

    def ordered_with_sibling(self, other: "ActionNode") -> bool:
        return self.precedes_sibling(other) or other.precedes_sibling(self)

    def _precedence_closure(self) -> set[tuple[ActionId, ActionId]]:
        """Transitive closure of the precedence edges among the children.

        Cached: the builder API invalidates the cache whenever a child or a
        precedence edge is added (sequential builders would otherwise pay a
        quadratic closure per query).
        """
        cached = getattr(self, "_closure_cache", None)
        if cached is not None:
            return cached
        successors: dict[ActionId, set[ActionId]] = {}
        for before, after in self.precedence:
            successors.setdefault(before, set()).add(after)
        closure: set[tuple[ActionId, ActionId]] = set()
        for start in successors:
            frontier = list(successors[start])
            seen: set[ActionId] = set()
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                closure.add((start, node))
                frontier.extend(successors.get(node, ()))
        self._closure_cache = closure
        return closure

    # -- invocation view ------------------------------------------------------

    def invocation(self) -> Invocation:
        return Invocation(self.obj, self.method, self.args, state=self.state)

    # -- display ---------------------------------------------------------------

    @property
    def label(self) -> str:
        rendered_args = ",".join(str(a) for a in self.args)
        suffix = f"({rendered_args})" if self.args else "()"
        return f"{self.obj}.{self.method}{suffix}[{format_action_id(self.aid)}]"

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"<Action {self.label} top={self.top} seq={self.seq}>"

    def pretty(self, indent: int = 0) -> str:
        """Render this subtree as an indented call-tree listing."""
        lines = [" " * indent + self.label + ("  (virtual)" if self.virtual else "")]
        for child in self.children:
            lines.append(child.pretty(indent + 2))
        return "\n".join(lines)


def lowest_common_ancestor(a: ActionNode, b: ActionNode) -> ActionNode | None:
    """The deepest action that transitively calls both ``a`` and ``b``.

    Returns None when the actions belong to different transaction trees.
    An action counts as its own ancestor here, so ``lca(a, a) is a`` and
    ``lca(parent, child) is parent``.
    """
    ancestors_of_a = {id(a): a}
    for node in a.ancestors():
        ancestors_of_a[id(node)] = node
    node: ActionNode | None = b
    while node is not None:
        if id(node) in ancestors_of_a:
            return node
        node = node.parent
    return None


def same_process(a: ActionNode, b: ActionNode) -> bool:
    """Definition 9's exemption: actions of the same process never conflict.

    Two actions belong to the same process when they are part of the same
    top-level transaction and their execution is sequenced by the program:
    one (transitively) calls the other, or the branches leading to them from
    their lowest common ancestor are ordered by the precedence relation.
    Unordered branches are concurrent processes inside one transaction and
    *can* conflict.
    """
    if a is b:
        return True
    if a.root is not b.root:
        return False
    lca = lowest_common_ancestor(a, b)
    if lca is None:
        return False
    if lca is a or lca is b:
        return True  # ancestor/descendant: sequenced by the call itself
    branch_a = _child_of_on_path(lca, a)
    branch_b = _child_of_on_path(lca, b)
    return branch_a.ordered_with_sibling(branch_b)


def _child_of_on_path(ancestor: ActionNode, descendant: ActionNode) -> ActionNode:
    """The child of ``ancestor`` lying on the path down to ``descendant``."""
    node = descendant
    while node.parent is not ancestor:
        if node.parent is None:
            raise ModelError("descendant is not below ancestor")
        node = node.parent
    return node
