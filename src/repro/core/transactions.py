"""Object-oriented transactions and transaction systems (Definitions 2 and 4).

An *oo-transaction* is a tree of actions: the root is the originating action,
arcs are the call relationship, and each action set carries a precedence
partial order (Definition 2, Example 2 / Figure 5 of the paper).

A *transaction system* ``TS = (OBJ, TOP)`` consists of a set of objects with
a distinguished system object ``S`` and a set of top-level transactions,
which are oo-transactions on ``S`` (Definition 4).  Top-level transactions
are the working units of the application programmer; executed serially they
preserve database consistency.

The system also carries the global execution sequence counter that totally
orders primitive actions — the raw material for Axiom 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ModelError
from repro.core.actions import ActionNode
from repro.core.identifiers import SYSTEM_OBJECT, ObjectId


class OOTransaction:
    """A top-level transaction: an oo-transaction on the system object.

    The transaction *is* its root action (the paper writes ``T`` for both);
    this wrapper adds the user-facing label and builder conveniences.
    """

    def __init__(self, label: str, root: ActionNode):
        self.label = label
        self.root = root

    def call(self, obj: ObjectId, method: str, args: tuple = (), **kwargs) -> ActionNode:
        """Send a message directly from the transaction (a child of the root)."""
        return self.root.call(obj, method, args, **kwargs)

    def actions(self) -> Iterator[ActionNode]:
        """All actions of the transaction, including the root itself."""
        return self.root.iter_subtree()

    def primitive_actions(self) -> Iterator[ActionNode]:
        for action in self.actions():
            if action.is_primitive:
                yield action

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"<OOTransaction {self.label}>"

    def pretty(self) -> str:
        return self.root.pretty()


class TransactionSystem:
    """An oo-transaction system ``TS = (OBJ, TOP)`` (Definition 4)."""

    def __init__(self) -> None:
        self._tops: list[OOTransaction] = []
        self._declared_objects: set[ObjectId] = {SYSTEM_OBJECT}
        self._seq_counter: list[int] = [0]

    # -- construction ------------------------------------------------------

    def transaction(self, label: str | None = None) -> OOTransaction:
        """Create a new top-level transaction (an action on the system object)."""
        index = len(self._tops) + 1
        label = label or f"T{index}"
        if any(t.label == label for t in self._tops):
            raise ModelError(f"duplicate top-level transaction label {label!r}")
        root = ActionNode(
            aid=(index,),
            obj=SYSTEM_OBJECT,
            method=label,
            top=label,
        )
        # Share one counter across all transactions so that ``seq`` totally
        # orders primitive actions system-wide (the Axiom 1 bootstrap).
        root._seq_counter = self._seq_counter
        root.seq = self._next_seq()
        txn = OOTransaction(label, root)
        self._tops.append(txn)
        return txn

    def declare_object(self, oid: ObjectId) -> ObjectId:
        """Add an object to OBJ even if no action accesses it yet."""
        self._declared_objects.add(oid)
        return oid

    def _next_seq(self) -> int:
        self._seq_counter[0] += 1
        return self._seq_counter[0]

    def order_primitives(self, primitives: Iterable[ActionNode]) -> None:
        """Impose an explicit execution order on primitive actions.

        Reassigns ``seq`` so that the given primitives are ordered exactly as
        listed (and after every action not listed).  This is how the figure
        benches construct the paper's hand-drawn schedules, e.g. "assume
        ``Page4712.write`` by T1 is executed before ``Page4712.read`` by T2".
        """
        nodes = list(primitives)
        for node in nodes:
            if not node.is_primitive:
                raise ModelError(
                    f"{node.label} is not primitive; Axiom 1 orders primitives"
                )
        base = self._seq_counter[0]
        for offset, node in enumerate(nodes, start=1):
            node.seq = base + offset
        self._seq_counter[0] = base + len(nodes)

    # -- queries (Definitions 4-6) -------------------------------------------

    @property
    def tops(self) -> list[OOTransaction]:
        return list(self._tops)

    def top(self, label: str) -> OOTransaction:
        for txn in self._tops:
            if txn.label == label:
                return txn
        raise ModelError(f"no top-level transaction labelled {label!r}")

    @property
    def objects(self) -> set[ObjectId]:
        """The set OBJ: declared objects plus every object with an action."""
        objs = set(self._declared_objects)
        for action in self.all_actions():
            objs.add(action.obj)
        return objs

    def all_actions(self) -> Iterator[ActionNode]:
        for txn in self._tops:
            yield from txn.actions()

    def actions_on(self, oid: ObjectId) -> list[ActionNode]:
        """The set ``ACT_O``: actions accessing ``oid``, in seq order."""
        found = [a for a in self.all_actions() if a.obj == oid]
        found.sort(key=lambda a: (a.seq, a.aid))
        return found

    def primitive_actions_on(self, oid: ObjectId) -> list[ActionNode]:
        """The set ``PR_O`` (Definition 3), in seq order."""
        return [a for a in self.actions_on(oid) if a.is_primitive]

    def transactions_on(self, oid: ObjectId) -> list[ActionNode]:
        """The set ``TRA_O`` (Definition 6): direct callers of actions on O.

        Seen from the object, the nested structure flattens to two levels:
        actions accessing the object, and the calling actions, which play the
        part of transactions for this object.
        """
        callers: list[ActionNode] = []
        seen: set[int] = set()
        for action in self.actions_on(oid):
            caller = action.parent
            if caller is not None and id(caller) not in seen:
                seen.add(id(caller))
                callers.append(caller)
        callers.sort(key=lambda a: (a.seq, a.aid))
        return callers

    def __repr__(self) -> str:
        return (
            f"<TransactionSystem tops={[t.label for t in self._tops]} "
            f"objects={len(self.objects)}>"
        )

    def pretty(self) -> str:
        """Render every transaction tree, in order."""
        return "\n".join(txn.pretty() for txn in self._tops)
