"""Object schedules and their basic properties (Definitions 6-8).

An *object schedule* ``Sch = (TS, O, <·, ↝)`` is the interleaved execution of
transactions *seen from one object*: the transaction system, the object, an
action dependency relation over ``ACT_O`` and a transaction dependency
relation over ``TRA_O`` (Definition 6).  Seen from the object, the nested
call structure flattens into two levels — accessing actions and calling
transactions.

Three properties are defined here:

- *conform* (Definition 7): the execution respects every precedence that the
  transaction programs prescribe, including precedences inherited from
  calling actions;
- *serial* (Definition 8): top-level transactions are not interleaved on the
  object;
- equivalence and oo-serializability live in
  :mod:`repro.core.serializability` (Definitions 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import ActionNode, lowest_common_ancestor, _child_of_on_path
from repro.core.graph import DirectedGraph
from repro.core.identifiers import ObjectId
from repro.core.transactions import TransactionSystem


def program_precedes(a: ActionNode, b: ActionNode) -> bool:
    """True iff the transaction program orders ``a`` strictly before ``b``.

    This is the object precedence relation of Definition 7 evaluated on two
    actions: either an ancestor action-set orders the branch of ``a`` before
    the branch of ``b``, or ``a`` (transitively) calls ``b`` — a caller
    starts before everything it calls.
    """
    if a is b or a.root is not b.root:
        return False
    lca = lowest_common_ancestor(a, b)
    if lca is None:
        return False
    if lca is a:
        return True  # a calls b (directly or indirectly)
    if lca is b:
        return False
    branch_a = _child_of_on_path(lca, a)
    branch_b = _child_of_on_path(lca, b)
    return branch_a.precedes_sibling(branch_b)


@dataclass
class ObjectSchedule:
    """``Sch = (TS, O, <·, ↝)`` plus the added action dependencies of Def. 15.

    The dependency relations are *computed* by
    :class:`repro.core.dependency.DependencyAnalysis`; this class stores the
    result and answers the Definition 7/8 property checks.  Graph nodes are
    :class:`ActionNode` instances (identity-hashed).
    """

    system: TransactionSystem
    oid: ObjectId
    #: ACT_O in execution (seq) order
    actions: list[ActionNode] = field(default_factory=list)
    #: TRA_O — the direct callers of actions on O
    transactions: list[ActionNode] = field(default_factory=list)
    #: the action dependency relation <· over ACT_O (Definition 11)
    action_dep: DirectedGraph = field(default_factory=DirectedGraph)
    #: the transaction dependency relation ↝ over TRA_O (Definition 10)
    txn_dep: DirectedGraph = field(default_factory=DirectedGraph)
    #: the added action dependency relation over ACT_O ∪ ADD_O (Definition 15)
    added_dep: DirectedGraph = field(default_factory=DirectedGraph)
    #: provenance: (relation, src aid, dst aid) -> (template, args); the
    #: reason text is only rendered on demand (``explain``/``describe``)
    reasons: dict = field(default_factory=dict)

    # -- Definition 7 --------------------------------------------------------

    def is_conform(self) -> bool:
        """The execution order on O respects all program precedences."""
        for i, first in enumerate(self.actions):
            for second in self.actions[i + 1 :]:
                # ``actions`` is sorted by seq, so ``first`` ran first; the
                # program must not demand the opposite order.
                if program_precedes(second, first):
                    return False
        return True

    # -- Definition 8 --------------------------------------------------------

    def is_serial(self) -> bool:
        """Top-level transactions do not interleave on this object.

        Condition (i) — totality of the execution order — holds by
        construction (``seq`` stamps are totally ordered); condition (ii) is
        checked as non-overlap of the per-transaction seq ranges.
        """
        ranges: dict[str, tuple[int, int]] = {}
        for action in self.actions:
            lo, hi = ranges.get(action.top, (action.seq, action.seq))
            ranges[action.top] = (min(lo, action.seq), max(hi, action.seq))
        spans = sorted(ranges.values())
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            if lo <= hi:
                return False
        return True

    # -- views ----------------------------------------------------------------

    def combined_dependencies(self) -> DirectedGraph:
        """``<· ∪ <+`` — the relation whose acyclicity Definition 16(ii) demands."""
        return self.action_dep.union(self.added_dep)

    def txn_dep_pairs(self) -> set[tuple[str, str]]:
        """Transaction dependency edges as (caller label, caller label) pairs."""
        return {(src.label, dst.label) for src, dst in self.txn_dep.iter_edges()}

    def top_level_projection(self) -> DirectedGraph:
        """Project ↝ onto top-level transactions (dropping intra-transaction
        edges).  Acyclicity of this projection is exactly the existence of an
        equivalent serial object schedule (Definitions 12-13(i))."""
        projection: DirectedGraph = DirectedGraph()
        for txn in {a.top for a in self.actions}:
            projection.add_node(txn)
        for src, dst in self.txn_dep.iter_edges():
            if src.top != dst.top:
                projection.add_edge(src.top, dst.top)
        return projection

    def serial_witness(self) -> list[str] | None:
        """One serial order of this object's transactions compatible with
        ``↝`` (the Definition 13(i) witness), or None if a cycle forbids it."""
        try:
            order = self.txn_dep.topological_order()
        except ValueError:
            return None
        return [caller.label for caller in order]

    def record_reason(self, relation: str, src, dst, template: str, *args) -> None:
        """Remember why an edge was added (first reason wins).

        Lazy: only the format template and its arguments are stored; the
        text is rendered when somebody actually asks (``explain``,
        ``describe(verbose=True)``, counterexample paths).  Clean runs —
        the overwhelming majority — never pay the f-string per edge.
        """
        self.reasons.setdefault((relation, src.aid, dst.aid), (template, args))

    def explain(self, relation: str, src, dst) -> str:
        """The provenance of one dependency edge, or '(unknown)'."""
        entry = self.reasons.get((relation, src.aid, dst.aid))
        if entry is None:
            return "(unknown)"
        template, args = entry
        return template.format(*args) if args else template

    def describe(self, *, verbose: bool = False) -> str:
        """A compact, printable rendering used by the figure benches.

        With ``verbose=True`` each dependency carries its provenance
        (Axiom 1 order, inheriting object, Definition 7 precedence, ...).
        """
        lines = [f"object {self.oid}:"]
        lines.append("  actions: " + ", ".join(a.label for a in self.actions))
        edges = sorted(self.txn_dep.iter_edges(), key=lambda e: (e[0].aid, e[1].aid))
        if edges:
            for src, dst in edges:
                suffix = (
                    f"   [{self.explain('txn', src, dst)}]" if verbose else ""
                )
                lines.append(f"  txn-dep: {src.label} -> {dst.label}{suffix}")
        else:
            lines.append("  txn-dep: (none)")
        return "\n".join(lines)
