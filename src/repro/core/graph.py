"""A small directed-graph toolkit used by the dependency analysis.

The paper's serializability conditions are acyclicity conditions on
dependency relations (Definitions 13 and 16), so the core needs cycle
detection, cycle witnesses (for diagnostics), topological orders (to exhibit
equivalent serial schedules) and transitive closures (for the call
relationship ``->*``).  The implementation is self-contained; ``networkx``
is only used in the test suite to cross-check these algorithms.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Generic, TypeVar

Node = TypeVar("Node", bound=Hashable)


class DirectedGraph(Generic[Node]):
    """A mutable directed graph over hashable nodes.

    Self-loops are permitted (a self-loop is a cycle of length one, which
    matters for contradiction detection: an action depending on itself is a
    contradiction in the sense of the paper's Section 1).
    """

    def __init__(self, edges: Iterable[tuple[Node, Node]] = ()) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        for src, dst in edges:
            self.add_edge(src, dst)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` is present, with no edges added."""
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, src: Node, dst: Node) -> None:
        """Add the edge ``src -> dst`` (idempotent)."""
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def add_edges(self, edges: Iterable[tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def copy(self) -> "DirectedGraph[Node]":
        clone: DirectedGraph[Node] = DirectedGraph()
        for node in self._succ:
            clone.add_node(node)
        for src, dsts in self._succ.items():
            for dst in dsts:
                clone.add_edge(src, dst)
        return clone

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> set[Node]:
        return set(self._succ)

    @property
    def edges(self) -> set[tuple[Node, Node]]:
        return {(src, dst) for src, dsts in self._succ.items() for dst in dsts}

    def successors(self, node: Node) -> set[Node]:
        return set(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> set[Node]:
        return set(self._pred.get(node, ()))

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, ())

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    # -- algorithms --------------------------------------------------------

    def find_cycle(self) -> list[Node] | None:
        """Return one cycle as a node list ``[n0, n1, ..., n0]``, or None.

        Iterative DFS with colouring; deterministic given insertion order
        (Python sets are not ordered, so neighbours are visited in sorted
        order when the nodes are sortable, insertion order otherwise).
        """
        white, grey, black = 0, 1, 2
        colour = {node: white for node in self._succ}
        parent: dict[Node, Node] = {}

        for root in self._iteration_order(self._succ):
            if colour[root] != white:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._iteration_order(self._succ[root])))
            ]
            colour[root] = grey
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for nxt in neighbours:
                    if colour[nxt] == grey or nxt == node:
                        # Found a cycle: unwind parents from node back to nxt.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                    if colour[nxt] == white:
                        colour[nxt] = grey
                        parent[nxt] = node
                        stack.append(
                            (nxt, iter(self._iteration_order(self._succ[nxt])))
                        )
                        advanced = True
                        break
                if not advanced:
                    colour[node] = black
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_order(self) -> list[Node]:
        """Return a topological order (Kahn); raises ValueError on a cycle."""
        indegree = {node: len(self._pred[node]) for node in self._succ}
        ready = [node for node in self._iteration_order(self._succ) if indegree[node] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in self._iteration_order(self._succ[node]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order

    def reachable_from(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding ``node`` unless on a cycle)."""
        seen: set[Node] = set()
        frontier = list(self._succ.get(node, ()))
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(self._succ.get(cur, ()))
        return seen

    def transitive_closure(self) -> "DirectedGraph[Node]":
        closure: DirectedGraph[Node] = DirectedGraph()
        for node in self._succ:
            closure.add_node(node)
            for dst in self.reachable_from(node):
                closure.add_edge(node, dst)
        return closure

    def union(self, other: "DirectedGraph[Node]") -> "DirectedGraph[Node]":
        merged = self.copy()
        for node in other.nodes:
            merged.add_node(node)
        for src, dst in other.edges:
            merged.add_edge(src, dst)
        return merged

    @staticmethod
    def _iteration_order(nodes: Iterable[Node]) -> list[Node]:
        """Sort nodes when possible so that algorithms are deterministic."""
        items = list(nodes)
        try:
            return sorted(items)  # type: ignore[type-var]
        except TypeError:
            return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectedGraph(nodes={len(self._succ)}, edges={len(self.edges)})"
