"""A small directed-graph toolkit used by the dependency analysis.

The paper's serializability conditions are acyclicity conditions on
dependency relations (Definitions 13 and 16), so the core needs cycle
detection, cycle witnesses (for diagnostics), topological orders (to exhibit
equivalent serial schedules) and transitive closures (for the call
relationship ``->*``).  Two detectors are provided:

- :class:`DirectedGraph` stores a relation and answers batch queries
  (``find_cycle``, ``topological_order``); adjacency is kept in insertion
  order, so every traversal is deterministic even over identity-hashed
  nodes.
- :class:`OnlineTopology` maintains a topological order *incrementally*
  (Pearce–Kelly): ``add_edge_checked`` reports the first cycle at insertion
  time in amortized sub-linear work, instead of a full DFS per query.  The
  incremental dependency engine watches its relations with one of these.

The implementation is self-contained; ``networkx`` is only used in the test
suite to cross-check these algorithms.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Generic, TypeVar

Node = TypeVar("Node", bound=Hashable)


class DirectedGraph(Generic[Node]):
    """A mutable directed graph over hashable nodes.

    Self-loops are permitted (a self-loop is a cycle of length one, which
    matters for contradiction detection: an action depending on itself is a
    contradiction in the sense of the paper's Section 1).

    Nodes and per-node successors are stored in insertion order; the
    dependency engine relies on this to replay the batch analysis's
    derivation order exactly (see ``edge_sort_key``).
    """

    def __init__(self, edges: Iterable[tuple[Node, Node]] = ()) -> None:
        # dict values are per-source insertion indexes (0, 1, 2, ...);
        # ``_pred`` only needs the key order, so values stay None.
        self._succ: dict[Node, dict[Node, int]] = {}
        self._pred: dict[Node, dict[Node, None]] = {}
        self._node_index: dict[Node, int] = {}
        for src, dst in edges:
            self.add_edge(src, dst)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` is present, with no edges added."""
        if node not in self._succ:
            self._node_index[node] = len(self._node_index)
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, src: Node, dst: Node) -> None:
        """Add the edge ``src -> dst`` (idempotent)."""
        self.add_node(src)
        self.add_node(dst)
        slot = self._succ[src]
        if dst not in slot:
            slot[dst] = len(slot)
            self._pred[dst][src] = None

    def add_edges(self, edges: Iterable[tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def copy(self) -> "DirectedGraph[Node]":
        clone: DirectedGraph[Node] = DirectedGraph()
        for node in self._succ:
            clone.add_node(node)
        for src, dst in self.iter_edges():
            clone.add_edge(src, dst)
        return clone

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> set[Node]:
        return set(self._succ)

    @property
    def edges(self) -> set[tuple[Node, Node]]:
        return {(src, dst) for src, dsts in self._succ.items() for dst in dsts}

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate nodes in insertion order without materializing a set."""
        return iter(self._succ)

    def iter_edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate edges grouped by source, in insertion order, copy-free.

        Do not mutate the adjacency of the sources being iterated; the
        fixpoint rules only ever add edges to *other* relations while
        scanning one, which keeps lazy iteration safe.
        """
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def edge_sort_key(self, src: Node, dst: Node) -> tuple[int, int]:
        """Position of an edge in ``iter_edges`` order.

        The incremental engine tags each newly observed edge with this key
        so a worklist round can process new edges in exactly the order the
        batch fixpoint would have encountered them while rescanning the
        whole relation — the property that makes the two engines'
        first-reason-wins provenance and cycle witnesses byte-identical.
        """
        return (self._node_index[src], self._succ[src][dst])

    def successors(self, node: Node) -> set[Node]:
        return set(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> set[Node]:
        return set(self._pred.get(node, ()))

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, ())

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    # -- algorithms --------------------------------------------------------

    def find_cycle(self) -> list[Node] | None:
        """Return one cycle as a node list ``[n0, n1, ..., n0]``, or None.

        Iterative DFS with colouring; deterministic given insertion order
        (neighbours are visited in sorted order when the nodes are sortable,
        insertion order otherwise).
        """
        white, grey, black = 0, 1, 2
        colour = {node: white for node in self._succ}
        parent: dict[Node, Node] = {}

        for root in self._iteration_order(self._succ):
            if colour[root] != white:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._iteration_order(self._succ[root])))
            ]
            colour[root] = grey
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for nxt in neighbours:
                    if colour[nxt] == grey or nxt == node:
                        # Found a cycle: unwind parents from node back to nxt.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                    if colour[nxt] == white:
                        colour[nxt] = grey
                        parent[nxt] = node
                        stack.append(
                            (nxt, iter(self._iteration_order(self._succ[nxt])))
                        )
                        advanced = True
                        break
                if not advanced:
                    colour[node] = black
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_order(self) -> list[Node]:
        """Return a topological order (Kahn); raises ValueError on a cycle."""
        indegree = {node: len(self._pred[node]) for node in self._succ}
        ready = [node for node in self._iteration_order(self._succ) if indegree[node] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in self._iteration_order(self._succ[node]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order

    def reachable_from(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding ``node`` unless on a cycle)."""
        seen: set[Node] = set()
        frontier = list(self._succ.get(node, ()))
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(self._succ.get(cur, ()))
        return seen

    def transitive_closure(self) -> "DirectedGraph[Node]":
        closure: DirectedGraph[Node] = DirectedGraph()
        for node in self._succ:
            closure.add_node(node)
            for dst in self.reachable_from(node):
                closure.add_edge(node, dst)
        return closure

    def union(self, other: "DirectedGraph[Node]") -> "DirectedGraph[Node]":
        merged = self.copy()
        for node in other.iter_nodes():
            merged.add_node(node)
        for src, dst in other.iter_edges():
            merged.add_edge(src, dst)
        return merged

    @staticmethod
    def _iteration_order(nodes: Iterable[Node]) -> list[Node]:
        """Sort nodes when possible so that algorithms are deterministic."""
        items = list(nodes)
        try:
            return sorted(items)  # type: ignore[type-var]
        except TypeError:
            return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectedGraph(nodes={len(self._succ)}, edges={len(self.edges)})"


class OnlineTopology(Generic[Node]):
    """Incremental cycle detection via an online topological order.

    Pearce–Kelly (2006): maintain a total order ``ord`` consistent with all
    edges inserted so far.  Inserting ``src -> dst`` with
    ``ord[src] < ord[dst]`` costs O(1); otherwise only the *affected
    region* — nodes ordered between ``dst`` and ``src`` and reachable
    from/to the new edge — is searched and reordered.  If the forward
    search from ``dst`` reaches ``src``, the insertion closes a cycle,
    which is reported immediately as a witness path.

    Dependency relations only grow, so once a cycle exists it exists
    forever; after the first cycle is reported the structure stops
    maintaining the order and records further insertions in O(1).
    """

    def __init__(self) -> None:
        self._index: dict[Node, int] = {}
        self._succ: dict[Node, list[Node]] = {}
        self._pred: dict[Node, list[Node]] = {}
        self._edges: set[tuple[Node, Node]] = set()
        #: the first cycle closed by an insertion, as ``[n0, ..., n0]``
        self.cycle: list[Node] | None = None

    def __len__(self) -> int:
        return len(self._index)

    @property
    def has_cycle(self) -> bool:
        return self.cycle is not None

    def add_node(self, node: Node) -> None:
        if node not in self._index:
            self._index[node] = len(self._index)
            self._succ[node] = []
            self._pred[node] = []

    def add_edge_checked(self, src: Node, dst: Node) -> list[Node] | None:
        """Insert ``src -> dst``; return the first cycle it closes, or None.

        The witness has the shape ``[src, dst, ..., src]``: the new edge
        followed by an existing path back from ``dst`` to ``src``.  Once a
        cycle has been reported (on this or an earlier insertion), later
        insertions return None without searching — ``cycle`` keeps the
        original witness.
        """
        self.add_node(src)
        self.add_node(dst)
        if (src, dst) in self._edges:
            return None
        self._edges.add((src, dst))
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        if self.cycle is not None:
            return None  # already permanently cyclic; order abandoned
        if src is dst or src == dst:
            self.cycle = [src, src]
            return self.cycle
        lower, upper = self._index[dst], self._index[src]
        if lower > upper:
            return None  # order already consistent
        return self._discover(src, dst, lower, upper)

    def _discover(
        self, src: Node, dst: Node, lower: int, upper: int
    ) -> list[Node] | None:
        """The PK affected-region pass: find a cycle or restore the order."""
        index = self._index
        # Forward from dst, bounded by ord <= ord[src]; reaching src is a
        # cycle (indexes are unique, so ord == upper identifies src).
        forward: list[Node] = []
        parent: dict[Node, Node] = {}
        seen = {dst}
        stack = [dst]
        while stack:
            node = stack.pop()
            forward.append(node)
            for nxt in self._succ[node]:
                if nxt in seen:
                    continue
                nxt_index = index[nxt]
                if nxt_index == upper:
                    path = [node]
                    while path[-1] is not dst:
                        path.append(parent[path[-1]])
                    path.reverse()
                    self.cycle = [src, *path, src]
                    return self.cycle
                if nxt_index < upper:
                    seen.add(nxt)
                    parent[nxt] = node
                    stack.append(nxt)
        # Backward from src, bounded by ord >= ord[dst].
        backward: list[Node] = []
        seen_back = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            backward.append(node)
            for prv in self._pred[node]:
                if prv not in seen_back and index[prv] > lower:
                    seen_back.add(prv)
                    stack.append(prv)
        # Reorder: everything reaching src moves before everything reachable
        # from dst, reusing the affected nodes' own index pool.
        backward.sort(key=index.__getitem__)
        forward.sort(key=index.__getitem__)
        pool = sorted(index[node] for node in backward + forward)
        for node, slot in zip(backward + forward, pool):
            index[node] = slot
        return None
