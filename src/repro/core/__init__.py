"""The paper's primary contribution: the formal model of oo-serializability.

This package implements Definitions 1-16 and Axiom 1 of Rakow, Gu and
Neuhold, *Serializability in Object-Oriented Database Systems* (ICDE 1990):

- :mod:`repro.core.actions` / :mod:`repro.core.transactions` -- messages,
  actions, object-oriented transaction trees and transaction systems
  (Definitions 1-4).
- :mod:`repro.core.extension` -- the virtual-object extension that breaks
  call cycles (Definition 5).
- :mod:`repro.core.commutativity` -- semantic commutativity specifications
  (Definition 9).
- :mod:`repro.core.schedule` -- object schedules, conformity and seriality
  (Definitions 6-8).
- :mod:`repro.core.dependency` -- dependency inheritance: action and
  transaction dependency relations (Axiom 1, Definitions 10-11).
- :mod:`repro.core.serializability` -- equivalence and oo-serializability of
  object and system schedules (Definitions 12-16), plus the conventional
  conflict-serializability baseline.
"""

from repro.core.actions import ActionNode, Invocation, format_action_id
from repro.core.commutativity import (
    CommutativityRegistry,
    CommutativitySpec,
    ConflictAll,
    EscrowCommutativity,
    MatrixCommutativity,
    PredicateCommutativity,
    ReadWriteCommutativity,
)
from repro.core.dependency import DependencyAnalysis
from repro.core.extension import ExtensionResult, extend_system
from repro.core.graph import DirectedGraph
from repro.core.identifiers import SYSTEM_OBJECT, is_virtual, virtual_object_id
from repro.core.schedule import ObjectSchedule
from repro.core.serializability import (
    ObjectVerdict,
    SystemVerdict,
    analyze_system,
    conventional_serializable,
    conventional_serialization_graph,
)
from repro.core.transactions import OOTransaction, TransactionSystem

__all__ = [
    "ActionNode",
    "CommutativityRegistry",
    "CommutativitySpec",
    "ConflictAll",
    "DependencyAnalysis",
    "DirectedGraph",
    "EscrowCommutativity",
    "ExtensionResult",
    "Invocation",
    "MatrixCommutativity",
    "OOTransaction",
    "ObjectSchedule",
    "ObjectVerdict",
    "PredicateCommutativity",
    "ReadWriteCommutativity",
    "SYSTEM_OBJECT",
    "SystemVerdict",
    "TransactionSystem",
    "analyze_system",
    "conventional_serializable",
    "conventional_serialization_graph",
    "extend_system",
    "format_action_id",
    "is_virtual",
    "virtual_object_id",
]
