"""Vbox-style black-box certification of long committed histories.

The exact oracle (:mod:`repro.core.dependency`) re-derives the Definition
10-16 fixpoint from the committed projection; even incrementally that pays
a pairwise Axiom 1 / Definition 7 scan per object, which caps fuzz
histories at hundreds of actions.  Following Vbox (arXiv 2503.05163), the
certifier here exploits two facts the executor already knows:

1. **The commit order is known.**  Transactions are fed to the certifier
   in the order they committed, so any dependency pointing from a later
   commit to an earlier one is the only way a cycle can ever close.

2. **Per-object effect orders are known.**  After
   :func:`~repro.core.dependency.linearize_effects`, every action's
   ``seq`` stamp is its object-schedule position.  If each newly committed
   transaction only *appends* to every object timeline it touches — its
   stamps are larger than everything already certified on that object —
   then every Axiom 1 bootstrap edge points forward in commit order.

Under those two facts acceptance is sound without running the engine at
all: Definition 10 lifts an action edge to the two endpoint *callers*
(same transactions), Definition 11 and the cross-object closure move a
constraint between objects without changing its endpoint transactions,
and Definition 15 records it redundantly — no derivation rule ever flips
an edge's direction or its endpoint tops.  Forward-only bootstrap edges
therefore derive forward-only transaction dependencies: every watched
relation is acyclic and the exact engine would certify the same history.
Inside one transaction the certifier additionally checks that every
sibling group is totally ordered by program precedence, which makes every
same-tree pair a ``same_process`` pair — exempt from conflict by
Definition 9 — so intra-transaction edges reduce to the Definition 7
partial order.

Everything else is *suspicious* and **escalates**: a straggler stamp that
lands inside an already-certified timeline next to a conflicting action,
an unordered sibling pair, a non-monotone stamp inside one tree, or a
Definition 5 extension that manufactures virtual duplicates.  Escalation
is sticky — the certifier replays the full fed history through the exact
:class:`~repro.core.dependency.IncrementalDependencyEngine` (same
strictness, online cycle watchers) and routes every later commit through
it, so verdicts are exactly the engine's.  On violation the caller
obtains the canonical report (witness strings included) from
:func:`repro.fuzz.oracle.check_history`, which re-analyzes the same
already-linearized, already-extended trees — byte-identical to judging
the history without a certifier in the loop.

Conflict-sparse stretches — the common case in long histories — therefore
certify in near-linear time: one tree walk plus an O(1) append per action,
with a bounded ``bisect`` window scan only when stamps interleave.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.dependency import IncrementalDependencyEngine, linearize_effects
from repro.core.extension import extend_system
from repro.core.identifiers import SYSTEM_OBJECT, ObjectId, is_virtual
from repro.core.transactions import OOTransaction, TransactionSystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz.oracle import Ablation, OracleReport
    from repro.runtime.executor import ExecutionResult

#: escalation reasons (stable strings: tests and metrics key off them)
ESCALATE_EXTENSION = "extension"
ESCALATE_UNORDERED_SIBLINGS = "unordered-siblings"
ESCALATE_NONMONOTONE = "nonmonotone-seq"
ESCALATE_WINDOW = "straggler-window"
ESCALATE_CONFLICT = "conflicting-straggler"


@dataclass
class CertificationReport:
    """Outcome of certifying one committed history.

    Mirrors the :class:`~repro.fuzz.oracle.OracleReport` consumer surface
    (``violation``, ``oo_serializable``, ``description``) so existing
    tooling can take either; :meth:`as_oracle_report` converts outright.
    """

    ok: bool
    committed: int
    actions: int
    fast_commits: int
    escalated_commits: int
    stragglers_scanned: int
    escalated: bool
    escalation_reason: str | None
    gave_up: int = 0
    #: canonical exact-engine report, attached whenever ``ok`` is False
    #: (and on demand for consumers that need the conventional baseline)
    oracle: "OracleReport | None" = field(default=None, repr=False)

    @property
    def violation(self) -> bool:
        return not self.ok

    @property
    def oo_serializable(self) -> bool:
        return self.ok

    @property
    def description(self) -> str:
        if self.oracle is not None:
            return self.oracle.description
        mode = (
            f"escalated to exact engine ({self.escalation_reason})"
            if self.escalated
            else "fast path"
        )
        verdict = "oo-serializable" if self.ok else "NOT oo-serializable"
        return (
            f"certified {verdict}: {self.committed} committed / "
            f"{self.actions} actions via {mode} "
            f"({self.fast_commits} fast, {self.escalated_commits} exact)"
        )

    def as_oracle_report(self) -> "OracleReport":
        """This verdict in :class:`OracleReport` shape.

        A fast-path acceptance never computed the conventional baseline or
        constraint counts; they are reported as the verdict itself / zero,
        which keeps every boolean consumer correct (``oo_only`` is then
        simply False — the fast path does not measure the admission delta).
        """
        if self.oracle is not None:
            return self.oracle
        from repro.fuzz.oracle import OracleReport

        return OracleReport(
            oo_serializable=self.ok,
            conventional_serializable=self.ok,
            oo_constraints=0,
            conventional_constraints=0,
            committed=self.committed,
            description=self.description,
            gave_up=self.gave_up,
        )


class _Timeline:
    """One object's certified effect order: parallel (seqs, actions) lists."""

    __slots__ = ("seqs", "actions")

    def __init__(self) -> None:
        self.seqs: list[int] = []
        self.actions: list[ActionNode] = []


class OnlineCertifier:
    """Certify committed transactions one at a time against a growing history.

    Parameters
    ----------
    system:
        The transaction system holding (or receiving) the committed trees.
        The certifier mutates it exactly like the exact oracle would:
        re-stamping (:func:`linearize_effects`) and the Definition 5
        extension — both idempotent — unless ``pre_extended`` says the
        caller already ran them globally.
    commutativity:
        Registry used for the straggler conflict screen *and* by the
        escalation engine.  Pass a private copy when another analysis
        shares the source registry concurrently.
    strict_cross_object:
        Oracle strictness for the protocol under test
        (:func:`repro.fuzz.oracle.strictness_for`).
    pre_extended:
        The caller linearized and extended the whole system up front (the
        offline :func:`certify_history` path); per-commit passes are
        skipped and virtual duplicates are expected to sit inside the
        trees they were attached to.
    straggler_scan_limit:
        Longest already-certified suffix of one object timeline the fast
        path will scan for conflicts before escalating instead.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; certification
        counters are registered on it.
    """

    def __init__(
        self,
        system: TransactionSystem,
        commutativity: CommutativityRegistry,
        *,
        strict_cross_object: bool = True,
        pre_extended: bool = False,
        straggler_scan_limit: int = 64,
        metrics=None,
    ):
        self.system = system
        self.commutativity = commutativity
        self.strict_cross_object = strict_cross_object
        self.pre_extended = pre_extended
        self.straggler_scan_limit = straggler_scan_limit
        self.committed = 0
        self.actions = 0
        self.fast_commits = 0
        self.escalated_commits = 0
        self.stragglers_scanned = 0
        self.escalated = False
        self.escalation_reason: str | None = None
        #: flips at the first commit whose integration closes a cycle
        self.violated = False
        self._engine: IncrementalDependencyEngine | None = None
        #: (txn, extras) in fed order — the escalation catch-up replay
        self._log: list[tuple[OOTransaction, tuple[ActionNode, ...]]] = []
        self._timelines: dict[ObjectId, _Timeline] = {}
        self._top_ids = {id(txn) for txn in system._tops}
        if metrics is not None:
            self._m_fast = metrics.counter(
                "certify_fast_commits_total",
                "commits certified on the fast path",
            )
            self._m_exact = metrics.counter(
                "certify_escalated_commits_total",
                "commits routed through the exact engine",
            )
            self._m_stragglers = metrics.counter(
                "certify_stragglers_scanned_total",
                "timeline entries scanned for straggler conflicts",
            )
        else:
            self._m_fast = self._m_exact = self._m_stragglers = None

    # -- public API ----------------------------------------------------------

    @property
    def oo_serializable(self) -> bool:
        return not self.violated

    def observe_commit(self, txn: OOTransaction) -> bool:
        """Certify one more committed transaction.

        Returns True while the history so far is certified
        oo-serializable; the first False is final (violations are monotone
        — later commits cannot undo a closed cycle), matching
        ``run_per_transaction(stop_on_violation=True)``.
        """
        if self.violated:
            return False
        self.committed += 1
        if id(txn) not in self._top_ids:
            self.system._tops.append(txn)
            self._top_ids.add(id(txn))
        if self._engine is not None:
            return self._feed_engine(txn)
        extras: tuple[ActionNode, ...] = ()
        if not self.pre_extended:
            linearize_effects(self.system, tops=[txn])
            extras = tuple(extend_system(self.system, tops=[txn]).duplicates)
        self._log.append((txn, extras))
        # Virtual duplicates break the fast path's premise that every
        # same-tree pair is program-ordered (duplicates are appended to
        # their peer's children without precedence edges) — exact territory.
        reason = ESCALATE_EXTENSION if extras else self._screen(txn)
        if reason is None:
            self.fast_commits += 1
            if self._m_fast is not None:
                self._m_fast.value += 1
            return True
        self.escalate(reason)
        self.escalated_commits += 1
        if self._m_exact is not None:
            self._m_exact.value += 1
        return not self.violated

    def escalate(self, reason: str) -> None:
        """Switch to the exact engine (sticky), replaying the fed history.

        Public so callers that *know* the fast path cannot apply — e.g.
        the offline path when the global extension produced duplicates —
        can route everything through the engine from the start.
        """
        if self._engine is not None:
            return
        self.escalated = True
        self.escalation_reason = reason
        engine = IncrementalDependencyEngine(
            self.system,
            self.commutativity,
            propagate_cross_object=self.strict_cross_object,
            track_cycles=True,
            linearize=not self.pre_extended,
            extend=not self.pre_extended,
        )
        self._engine = engine
        for txn, extras in self._log:
            if engine.violated:
                break
            # Logged trees are already re-stamped and extended; hand the
            # recorded duplicates over instead of re-deriving them.
            engine.append_transaction(txn, extras=extras)
        self._log.clear()
        self.violated = engine.violated

    def report(self, *, gave_up: int = 0) -> CertificationReport:
        return CertificationReport(
            ok=not self.violated,
            committed=self.committed,
            actions=self.actions,
            fast_commits=self.fast_commits,
            escalated_commits=self.escalated_commits,
            stragglers_scanned=self.stragglers_scanned,
            escalated=self.escalated,
            escalation_reason=self.escalation_reason,
            gave_up=gave_up,
        )

    # -- the fast path --------------------------------------------------------

    def _screen(self, txn: OOTransaction) -> str | None:
        """One tree walk deciding fast acceptance; a reason string escalates.

        The walk checks, in order: (a) every sibling group is totally
        program-ordered, (b) per object, the tree's own stamps appear in
        call (DFS) order, (c) per object, the tree's stamps land after
        everything already certified — or, for stragglers, inside a short
        window free of conflicting actions from other transactions.
        """
        groups: dict[ObjectId, list[ActionNode]] = {}
        last_seq: dict[ObjectId, int] = {}
        for action in txn.actions():
            children = action.children
            if children:
                real = [c for c in children if not c.virtual]
                for i in range(len(real) - 1):
                    if not real[i].precedes_sibling(real[i + 1]):
                        return ESCALATE_UNORDERED_SIBLINGS
            obj = action.obj
            if obj == SYSTEM_OBJECT:
                continue
            if not self.pre_extended and (action.virtual or is_virtual(obj)):
                # Another analysis (the optimistic protocol's certifier
                # extends committed trees during validation) moved an
                # offender onto a virtual object; its duplicate peers hang
                # off *earlier* trees the timelines never saw.  Exact
                # territory.  (Offline, the up-front global extension
                # pre-escalated any history with duplicates, and a moved
                # offender without peers is a singleton timeline — safe.)
                return ESCALATE_EXTENSION
            if action.virtual:
                continue
            self.actions += 1
            prev = last_seq.get(obj)
            if prev is not None and action.seq < prev:
                return ESCALATE_NONMONOTONE
            last_seq[obj] = action.seq
            groups.setdefault(obj, []).append(action)

        in_conflict = self.commutativity.in_conflict
        limit = self.straggler_scan_limit
        for obj, group in groups.items():
            group.sort(key=lambda a: (a.seq, a.aid))
            timeline = self._timelines.get(obj)
            if timeline is None:
                timeline = self._timelines[obj] = _Timeline()
            seqs, certified = timeline.seqs, timeline.actions
            for action in group:
                if not seqs or action.seq > seqs[-1]:
                    seqs.append(action.seq)
                    certified.append(action)
                    continue
                # Straggler: the stamp lands inside the certified timeline.
                # Only actions stamped *after* it can receive a backward
                # Axiom 1 edge, so scanning the suffix window suffices
                # (bisect_left keeps equal stamps inside the window: a tie
                # with a conflicting action is order-ambiguous → exact).
                idx = bisect_left(seqs, action.seq)
                window = certified[idx:]
                if len(window) > limit:
                    return ESCALATE_WINDOW
                self.stragglers_scanned += len(window)
                if self._m_stragglers is not None:
                    self._m_stragglers.value += len(window)
                for other in window:
                    if other.top is action.top:
                        continue  # same-tree pairs are program-ordered here
                    if not (action.is_primitive or other.is_primitive):
                        continue  # Axiom 1 needs a primitive member
                    if in_conflict(action, other):
                        return ESCALATE_CONFLICT
                seqs.insert(idx, action.seq)
                certified.insert(idx, action)
        return None

    # -- the exact path -------------------------------------------------------

    def _feed_engine(self, txn: OOTransaction) -> bool:
        engine = self._engine
        assert engine is not None
        for action in txn.actions():
            if action.obj != SYSTEM_OBJECT and not action.virtual:
                self.actions += 1
        self.escalated_commits += 1
        if self._m_exact is not None:
            self._m_exact.value += 1
        if not engine.violated:
            if self.pre_extended:
                engine.append_transaction(txn, extras=())
            else:
                linearize_effects(self.system, tops=[txn])
                extras = list(extend_system(self.system, tops=[txn]).duplicates)
                extras.extend(self._foreign_duplicates(txn))
                engine.append_transaction(txn, extras=tuple(extras))
        self.violated = engine.violated
        return not self.violated

    def _foreign_duplicates(self, txn: OOTransaction) -> list[ActionNode]:
        """Duplicates another analysis attached for this tree's offenders.

        If an external certifier already extended ``txn`` (optimistic
        validation), our own extension pass is an idempotent no-op and the
        virtual duplicates it created hang off earlier trees.  A virtual
        object's action set is fixed at break time — the offender plus a
        snapshot of its peers — so sweeping the virtual objects mentioned
        by this tree recovers exactly the duplicates the engine must
        integrate alongside it (already-seen ones are deduplicated there).
        """
        swept: list[ActionNode] = []
        seen_objects: set[ObjectId] = set()
        for action in txn.actions():
            obj = action.obj
            if action.virtual or not is_virtual(obj) or obj in seen_objects:
                continue
            seen_objects.add(obj)
            swept.extend(
                other
                for other in self.system.actions_on(obj)
                if other.virtual
            )
        return swept


def certified_base(source: TransactionSystem) -> TransactionSystem:
    """An empty system sharing ``source``'s stamp clock and object universe.

    The online service feeds committed trees into a certifier-private
    system so the certifier's top list is exactly the commit order, while
    stamps and declared objects stay those of the live database.
    """
    base = TransactionSystem()
    base._seq_counter = source._seq_counter
    for oid in sorted(source._declared_objects):
        base.declare_object(oid)
    return base


def _committed_in_commit_order(result: "ExecutionResult", projection):
    """The projection's trees sorted by (commit tick, label)."""
    ticks = {
        o.final_ctx.txn_id: o.final_ctx.stats.commit_tick
        for o in result.outcomes
        if o.committed and o.final_ctx is not None
    }
    return sorted(
        projection._tops,
        key=lambda txn: (ticks.get(txn.label, 0), txn.label),
    )


def certify_history(
    result: "ExecutionResult",
    ablation: "Ablation | None" = None,
    *,
    strict_cross_object: bool = True,
    straggler_scan_limit: int = 64,
    with_oracle: bool = True,
) -> CertificationReport:
    """Certify one run's committed history, cheaply when possible.

    Performs the exact oracle's tree mutations — committed projection,
    global re-stamping, global Definition 5 extension — then feeds the
    committed trees through an :class:`OnlineCertifier` in commit order.
    The verdict equals :func:`repro.fuzz.oracle.check_history`'s
    ``oo_serializable`` bit; on violation (with ``with_oracle``) the
    canonical report, witnesses included, is attached as ``.oracle`` so
    shrinker and replay tooling see the exact engine's bytes.
    """
    from repro.oodb.trace import committed_projection

    db = result.db
    registry = db.commutativity_registry()
    if ablation is not None:
        registry = ablation.apply(registry)
    projection = committed_projection(db.system, result.committed_labels)
    linearize_effects(projection)
    extension = extend_system(projection)
    certifier = OnlineCertifier(
        projection,
        registry,
        strict_cross_object=strict_cross_object,
        pre_extended=True,
        straggler_scan_limit=straggler_scan_limit,
    )
    if extension.duplicates:
        certifier.escalate(ESCALATE_EXTENSION)
    for txn in _committed_in_commit_order(result, projection):
        if not certifier.observe_commit(txn):
            break
    report = certifier.report(gave_up=len(result.gave_up))
    if report.violation and with_oracle:
        from repro.fuzz.oracle import check_history

        report.oracle = check_history(
            result, ablation, strict_cross_object=strict_cross_object
        )
    return report


def judge_history(
    result: "ExecutionResult",
    ablation: "Ablation | None" = None,
    *,
    strict_cross_object: bool = True,
) -> bool:
    """``certify_history(...).violation``, skipping the canonical report."""
    return certify_history(
        result,
        ablation,
        strict_cross_object=strict_cross_object,
        with_oracle=False,
    ).violation
