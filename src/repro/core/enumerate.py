"""Exhaustive schedule-space enumeration.

The cleanest quantitative form of "oo-serializability admits more
concurrency": take a small set of transaction programs, enumerate **every**
interleaving of their primitive actions (respecting program order), and
classify each schedule under both criteria.  Since conventional conflict
serializability implies oo-serializability (semantics only remove
conflicts), every schedule falls into one of three classes:

- ``both`` — serializable under both criteria,
- ``oo_only`` — the concurrency *gained* by the paper's definition,
- ``neither`` — genuinely non-serializable.

Used by bench C5 and by the property tests (the ``conventional_only`` class
must always be empty).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.core.commutativity import CommutativityRegistry
from repro.core.serializability import analyze_system, conventional_serializable
from repro.core.transactions import TransactionSystem

#: builds a *fresh* system + registry; called once per enumerated schedule
SystemBuilder = Callable[[], tuple[TransactionSystem, CommutativityRegistry]]


@dataclass
class ScheduleSpace:
    """Census of all interleavings of one transaction set."""

    total: int = 0
    both: int = 0
    oo_only: int = 0
    neither: int = 0
    conventional_only: int = 0  # must stay 0: oo admits a superset
    #: one example interleaving per class (tuples of (top, index))
    examples: dict[str, tuple] = field(default_factory=dict)

    @property
    def conventional_ok(self) -> int:
        return self.both + self.conventional_only

    @property
    def oo_ok(self) -> int:
        return self.both + self.oo_only

    @property
    def gain(self) -> float:
        """Relative concurrency gain: extra admissible schedules / conventional."""
        if self.conventional_ok == 0:
            return float("inf") if self.oo_only else 0.0
        return self.oo_only / self.conventional_ok

    def row(self) -> list:
        return [
            self.total,
            self.conventional_ok,
            self.oo_ok,
            self.oo_only,
            f"{100 * self.oo_ok / max(1, self.total):.0f}%",
            f"{100 * self.conventional_ok / max(1, self.total):.0f}%",
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "schedules",
            "conv-ok",
            "oo-ok",
            "oo-only",
            "oo-admit%",
            "conv-admit%",
        ]


def interleavings(counts: list[int]) -> Iterator[tuple[int, ...]]:
    """All merge orders of ``len(counts)`` streams with the given lengths.

    Yields tuples of stream indices, e.g. ``counts=[2, 1]`` yields
    ``(0,0,1), (0,1,0), (1,0,0)``.
    """

    def recurse(remaining: list[int], prefix: list[int]) -> Iterator[tuple[int, ...]]:
        if not any(remaining):
            yield tuple(prefix)
            return
        for stream, left in enumerate(remaining):
            if left:
                remaining[stream] -= 1
                prefix.append(stream)
                yield from recurse(remaining, prefix)
                prefix.pop()
                remaining[stream] += 1

    return recurse(list(counts), [])


def count_interleavings(counts: list[int]) -> int:
    """Multinomial coefficient: the size of the schedule space."""
    from math import factorial

    total = factorial(sum(counts))
    for count in counts:
        total //= factorial(count)
    return total


def classify_schedules(
    build: SystemBuilder,
    *,
    limit: int | None = None,
    propagate_cross_object: bool = True,
) -> ScheduleSpace:
    """Enumerate and classify every interleaving of the built system.

    ``build`` must return a fresh, *deterministic* system: the enumeration
    relies on each rebuild producing the same per-transaction primitive
    sequences (in program order).  ``limit`` caps the number of schedules
    (safety valve; the census is then partial).
    """
    probe, _ = build()
    per_top = [
        [a for a in txn.actions() if a.is_primitive] for txn in probe.tops
    ]
    counts = [len(prims) for prims in per_top]
    space = ScheduleSpace()

    for order in interleavings(counts):
        if limit is not None and space.total >= limit:
            break
        system, registry = build()
        streams = [
            [a for a in txn.actions() if a.is_primitive] for txn in system.tops
        ]
        positions = [0] * len(streams)
        sequence = []
        for stream in order:
            sequence.append(streams[stream][positions[stream]])
            positions[stream] += 1
        system.order_primitives(sequence)

        conventional = conventional_serializable(system)
        verdict, _ = analyze_system(
            system, registry, propagate_cross_object=propagate_cross_object
        )
        space.total += 1
        if conventional and verdict.oo_serializable:
            space.both += 1
            space.examples.setdefault("both", order)
        elif verdict.oo_serializable:
            space.oo_only += 1
            space.examples.setdefault("oo_only", order)
        elif conventional:
            space.conventional_only += 1
            space.examples.setdefault("conventional_only", order)
        else:
            space.neither += 1
            space.examples.setdefault("neither", order)
    return space
