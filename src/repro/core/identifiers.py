"""Identifiers for objects and actions.

Objects are identified by strings (``"BpTree"``, ``"Page4712"``); the paper's
*system object* (Definition 4) has the reserved identifier
:data:`SYSTEM_OBJECT`.  The extension construction (Definition 5) introduces
*virtual objects*; a virtual object identifier is derived from the original
one by appending a prime marker, so that ``Node6`` begets ``Node6′``,
``Node6″`` and so on (one virtual object per broken cycle).

Actions are numbered hierarchically (Definition 2): the root action of the
i-th top-level transaction is ``(i,)``, its j-th called action ``(i, j)``,
etc.  :func:`format_action_id` renders such a tuple the way the paper writes
subscripts, e.g. ``a_112`` becomes ``"1.1.2"``.
"""

from __future__ import annotations

ObjectId = str
ActionId = tuple[int, ...]

#: The system object S of Definition 4.  Every top-level transaction is an
#: action on this object.
SYSTEM_OBJECT: ObjectId = "$SYSTEM"

#: Marker appended to an object identifier to form a virtual object id.
VIRTUAL_MARKER = "′"


def virtual_object_id(oid: ObjectId, generation: int = 1) -> ObjectId:
    """Return the identifier of the ``generation``-th virtual copy of ``oid``.

    >>> virtual_object_id("Node6")
    'Node6′'
    >>> virtual_object_id("Node6", 2)
    'Node6′′'
    """
    if generation < 1:
        raise ValueError("generation must be >= 1")
    return oid + VIRTUAL_MARKER * generation


def is_virtual(oid: ObjectId) -> bool:
    """True iff ``oid`` names a virtual object created by the extension."""
    return oid.endswith(VIRTUAL_MARKER)


def original_object_id(oid: ObjectId) -> ObjectId:
    """Strip virtual markers, returning the original object identifier."""
    return oid.rstrip(VIRTUAL_MARKER)


def format_action_id(aid: ActionId) -> str:
    """Render a hierarchical action number, e.g. ``(1, 1, 2) -> '1.1.2'``."""
    return ".".join(str(part) for part in aid)


def parse_action_id(text: str) -> ActionId:
    """Inverse of :func:`format_action_id`.

    >>> parse_action_id("1.1.2")
    (1, 1, 2)
    """
    if not text:
        raise ValueError("empty action id")
    return tuple(int(part) for part in text.split("."))


def is_call_ancestor(ancestor: ActionId, descendant: ActionId) -> bool:
    """True iff ``ancestor`` calls ``descendant`` directly or indirectly.

    This is the transitive (non-reflexive) call relationship ``->*`` of
    Definition 1 restricted to the numbering: an action's number is a proper
    prefix of every action it (transitively) calls.
    """
    return (
        len(ancestor) < len(descendant)
        and descendant[: len(ancestor)] == ancestor
    )
