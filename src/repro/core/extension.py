"""The extension of a transaction system (Definition 5, Example 3/Figure 6).

If a transaction ``t`` calls an action ``a`` directly or indirectly and both
access the same object ``O``, the call path forms a cycle over ``O`` — the
paper's running instance is the B-link split, where ``Node6.insert`` ends up
calling ``Node6.rearrange`` through the leaf level.  Because the model must
distinguish the *actions* of an object from the *transactions* on it, the
system is extended:

- a fresh virtual object ``O′`` is added;
- the deeper action ``a`` is re-targeted to ``O′`` (``ACT_O := ACT_O - {a}``);
- every remaining action ``b`` on ``O`` is *virtually duplicated*: a virtual
  action ``b′`` on ``O′`` is added as a call child of ``b``, so that the
  dependencies recorded at ``O′`` are inherited along these call
  relationships back to the original object (via Definition 10).

The construction is iterated until no action has a proper call ancestor on
its own object.  Virtual duplicates inherit the ``seq`` stamp of their
original, so the Axiom 1 order on the virtual object replays the original
execution order.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.actions import ActionNode
from repro.core.identifiers import ObjectId, VIRTUAL_MARKER, original_object_id
from repro.core.transactions import TransactionSystem


@dataclass
class ExtensionResult:
    """Outcome of :func:`extend_system` (the system is modified in place)."""

    system: TransactionSystem
    #: virtual object id -> object id it was split from
    virtual_objects: dict[ObjectId, ObjectId] = field(default_factory=dict)
    #: actions re-targeted from an original object to a virtual object
    moved: list[ActionNode] = field(default_factory=list)
    #: virtual duplicate actions added as children of originals
    duplicates: list[ActionNode] = field(default_factory=list)

    @property
    def was_extended(self) -> bool:
        return bool(self.virtual_objects)

    def summary(self) -> str:
        if not self.was_extended:
            return "no call cycles; system unchanged"
        lines = []
        for virtual, source in sorted(self.virtual_objects.items()):
            moved_here = [m.label for m in self.moved if m.obj == virtual]
            dup_count = sum(1 for d in self.duplicates if d.obj == virtual)
            lines.append(
                f"{virtual}: split from {source}, moved {moved_here}, "
                f"{dup_count} virtual duplicate(s)"
            )
        return "\n".join(lines)


def find_offending_action(
    system: TransactionSystem, tops: Iterable | None = None
) -> ActionNode | None:
    """Find an action with a proper call ancestor on the same object.

    Such an action violates the premise that, seen from one object, callers
    (transactions) and accessors (actions) are disjoint roles.  Returns the
    first offender in deterministic (transaction, aid) order, or None.
    ``tops`` restricts the scan to the given transactions' trees (a call
    cycle lies within one tree, so scanning only newly appended trees is
    sound when the rest of the system is already extension-free).
    """
    for txn in system.tops if tops is None else tops:
        for action in txn.actions():
            if action.virtual:
                continue
            for ancestor in action.ancestors():
                if ancestor.obj == action.obj:
                    return action
    return None


def extend_system(
    system: TransactionSystem, tops: Iterable | None = None
) -> ExtensionResult:
    """Apply Definition 5 until the system is free of call cycles.

    Mutates ``system`` in place and returns an :class:`ExtensionResult`
    describing the virtual objects, moved actions and duplicates.  Calling
    this on an already-extended system is a no-op.

    ``tops`` restricts the *offender scan* to the given transactions' trees
    — used by the incremental engine when appending a transaction to an
    already-extended system.  Peer duplication is never restricted: once an
    offender is found, every action on its object (whichever tree it lives
    in) is virtually duplicated, exactly as in the unrestricted pass.
    """
    result = ExtensionResult(system=system)
    generations: dict[ObjectId, int] = {}

    while True:
        offender = find_offending_action(system, tops)
        if offender is None:
            break
        _break_cycle(system, offender, generations, result)
    return result


def _break_cycle(
    system: TransactionSystem,
    offender: ActionNode,
    generations: dict[ObjectId, int],
    result: ExtensionResult,
) -> None:
    source_object = offender.obj
    base = original_object_id(source_object)
    generations[base] = generations.get(base, 0) + 1
    virtual_object = base + VIRTUAL_MARKER * generations[base]
    while virtual_object in result.virtual_objects or virtual_object in system.objects:
        generations[base] += 1
        virtual_object = base + VIRTUAL_MARKER * generations[base]

    # Snapshot ACT_O before mutating: these are the actions to duplicate.
    peers = [a for a in system.actions_on(source_object) if a is not offender]

    offender.obj = virtual_object
    result.virtual_objects[virtual_object] = source_object
    result.moved.append(offender)
    system.declare_object(virtual_object)

    for peer in peers:
        duplicate = ActionNode(
            aid=peer.aid + (len(peer.children) + 1,),
            obj=virtual_object,
            method=peer.method,
            args=peer.args,
            parent=peer,
            top=peer.top,
            seq=peer.seq,  # replay the original Axiom 1 order on O′
            state=peer.state,
            virtual=True,
            original=peer,
        )
        peer.children.append(duplicate)
        result.duplicates.append(duplicate)
