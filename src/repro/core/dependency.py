"""Dependency inheritance (Axiom 1, Definitions 10, 11 and 15).

This module turns an executed transaction system plus a commutativity
registry into the per-object dependency relations.  The computation follows
the paper's information-flow story ("divide et impera", Section 1):

1. **Bootstrap (Axiom 1).**  Conflicting primitive actions on an object are
   totally ordered — we take the execution order (``seq`` stamps).  The same
   bootstrap applies when exactly one action of a conflicting pair is
   primitive: the primitive side has no deeper structure to inherit from, so
   its order "must be given" and the execution order supplies it.

2. **Lifting (Definition 10).**  If two actions on ``O`` are in conflict and
   an action dependency orders them, the dependency is inherited upward to
   the calling actions, which play the role of transactions on ``O``:
   ``t ↝ t'``.  Dependencies of *commuting* actions are **not** lifted —
   this is where oo-serializability gains concurrency over the conventional
   definition.

3. **Information flow (Definition 11).**  A transaction dependency recorded
   at ``P`` whose endpoints are both actions on another object ``O`` becomes
   an action dependency of ``O``'s schedule.  Steps 2-3 repeat to a fixpoint;
   for layered systems this is the usual level-by-level inheritance, but the
   fixpoint also covers the paper's non-layered call structures.

4. **Added dependencies (Definition 15).**  A transaction dependency whose
   endpoints are actions on *different* objects cannot be recorded as an
   action dependency anywhere; it is recorded redundantly at both objects in
   their *added action dependency* relations.

5. **Cross-object closure (reconstruction).**  Recording alone does not make
   contradictions *detectable* when the two call paths have different depths
   (DESIGN.md documents a counterexample schedule).  Commutativity is only
   defined per object, so a cross-object pair can never be shown to commute;
   we therefore keep lifting such a dependency to the calling actions until
   both endpoints are actions on one common object — where the object's
   commutativity may stop it, preserving the paper's concurrency gain — or
   both are top-level roots, where it becomes a top-level ordering
   constraint.  ``propagate_cross_object=False`` restores the literal
   Definition 15/16 reading (used by ablation benches).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.extension import extend_system
from repro.core.identifiers import SYSTEM_OBJECT, ObjectId
from repro.core.schedule import ObjectSchedule
from repro.core.transactions import TransactionSystem


def linearize_effects(system: TransactionSystem) -> None:
    """Re-stamp each method action at its first own-object effect.

    The execution trace stamps an action's ``seq`` when its scheduler
    request is granted.  For protocols that lock the accessed object itself
    this *is* the object-level serialization point.  But under
    page-granularity protocols (flat 2PL, closed nesting) a method action
    acquires no lock on its object: its stamp records dispatch time, while
    the actual serialization of two conflicting method executions happens at
    their first page conflict — which, after an interleaving switch, can
    contradict dispatch order.  Axiom 1 would then bootstrap edges (via the
    primitive virtual duplicates of Definition 5, which inherit the stamp)
    that invert the real execution order, manufacturing cycles in perfectly
    serializable 2PL histories.

    The honest object-schedule position of a method action is therefore the
    ``seq`` of its first *direct* primitive child — its first access to its
    own object's page.  For object-locking protocols this never reorders
    conflicting pairs (the grant stamp precedes all children and conflicting
    actions cannot overlap), so the rewrite is safe to apply universally.
    Actions without direct primitive children fall back to their subtree's
    first effect, and childless actions keep their stamp.  The rewrite is
    idempotent and must run before the Definition 5 extension (duplicates
    copy their original's stamp).
    """
    effective: dict[int, int] = {}

    def eff(action: ActionNode) -> int:
        key = id(action)
        if key in effective:
            return effective[key]
        if action.is_primitive:
            value = action.seq
        else:
            direct = [c.seq for c in action.children if c.is_primitive]
            if direct:
                value = min(direct)
            elif action.children:
                value = min(eff(c) for c in action.children)
            else:
                value = action.seq
        effective[key] = value
        return value

    updates = [
        (action, eff(action))
        for action in system.all_actions()
        if not action.is_primitive and not action.virtual
    ]
    for action, value in updates:
        action.seq = value


class DependencyAnalysis:
    """Computes every object schedule of a transaction system.

    Parameters
    ----------
    system:
        The executed transaction system.  Unless ``extend=False``, the
        Definition 5 extension is applied first (mutating the system) so
        that no action has a call ancestor on its own object.
    commutativity:
        The registry of per-object commutativity specifications.
    extend:
        Disable the extension only to demonstrate why it is needed (the
        ablation bench A2); verdicts on unextended systems with call cycles
        are not trustworthy.
    linearize:
        Apply :func:`linearize_effects` first (default), re-stamping each
        method action at its first own-object effect so that Axiom 1
        bootstraps from execution order rather than dispatch order.
    """

    def __init__(
        self,
        system: TransactionSystem,
        commutativity: CommutativityRegistry,
        *,
        extend: bool = True,
        propagate_cross_object: bool = True,
        linearize: bool = True,
    ):
        self.system = system
        self.commutativity = commutativity
        if linearize:
            linearize_effects(system)
        self.extension = extend_system(system) if extend else None
        self.propagate_cross_object = propagate_cross_object
        #: top-level ordering constraints discovered by the cross-object
        #: closure (pairs of root actions)
        self.top_cross_deps: set[tuple[ActionNode, ActionNode]] = set()
        self._schedules: dict[ObjectId, ObjectSchedule] | None = None

    # -- public API ----------------------------------------------------------

    def schedules(self) -> dict[ObjectId, ObjectSchedule]:
        """Compute (once) and return all object schedules, keyed by object."""
        if self._schedules is None:
            self._schedules = self._compute()
        return self._schedules

    def schedule(self, oid: ObjectId) -> ObjectSchedule:
        return self.schedules()[oid]

    # -- computation -----------------------------------------------------------

    def _conflict(self, a: ActionNode, b: ActionNode) -> bool:
        """Definition 9 conflict test, never raising for same-object pairs."""
        return self.commutativity.in_conflict(a, b)

    def _compute(self) -> dict[ObjectId, ObjectSchedule]:
        system = self.system
        objects = sorted(system.objects - {SYSTEM_OBJECT})
        schedules: dict[ObjectId, ObjectSchedule] = {}

        for oid in objects:
            sched = ObjectSchedule(system=system, oid=oid)
            sched.actions = system.actions_on(oid)
            sched.transactions = system.transactions_on(oid)
            for action in sched.actions:
                sched.action_dep.add_node(action)
            for caller in sched.transactions:
                sched.txn_dep.add_node(caller)
            self._bootstrap(sched)
            self._program_precedence(sched)
            schedules[oid] = sched

        self._fixpoint(schedules)
        self._added_dependencies(schedules)
        return schedules

    def _program_precedence(self, sched: ObjectSchedule) -> None:
        """Definition 7: the object precedence relation is part of ``<·``.

        The action dependency relation "must include the given precedences";
        in a conform schedule these edges agree with the execution order, in
        a non-conform one they surface as extra (possibly contradictory)
        dependencies.
        """
        from repro.core.schedule import program_precedes

        actions = sched.actions
        for i, first in enumerate(actions):
            for second in actions[i + 1 :]:
                if program_precedes(first, second):
                    sched.action_dep.add_edge(first, second)
                    sched.record_reason(
                        "action", first, second, "Definition 7: program precedence"
                    )
                elif program_precedes(second, first):
                    sched.action_dep.add_edge(second, first)
                    sched.record_reason(
                        "action", second, first, "Definition 7: program precedence"
                    )

    def _bootstrap(self, sched: ObjectSchedule) -> None:
        """Axiom 1: order conflicting pairs with a primitive member by seq."""
        actions = sched.actions
        for i, first in enumerate(actions):
            for second in actions[i + 1 :]:
                if not (first.is_primitive or second.is_primitive):
                    continue
                if self._conflict(first, second):
                    # ``actions`` is sorted by seq: first executed first.
                    sched.action_dep.add_edge(first, second)
                    sched.record_reason(
                        "action",
                        first,
                        second,
                        f"Axiom 1: executed {first.seq} < {second.seq}",
                    )

    def _fixpoint(self, schedules: dict[ObjectId, ObjectSchedule]) -> None:
        """Alternate Definitions 10, 11 and the cross-object closure until
        nothing new is derivable (the relations are finite and only grow)."""
        cross_seen: set[tuple[int, int]] = set()
        changed = True
        while changed:
            changed = False
            # Definition 10: lift conflicting action dependencies to callers.
            for sched in schedules.values():
                for src, dst in list(sched.action_dep.edges):
                    if not self._conflict(src, dst):
                        continue
                    caller_src, caller_dst = src.parent, dst.parent
                    if caller_src is None or caller_dst is None:
                        continue
                    if caller_src is caller_dst:
                        continue
                    if not sched.txn_dep.has_edge(caller_src, caller_dst):
                        sched.txn_dep.add_edge(caller_src, caller_dst)
                        sched.record_reason(
                            "txn",
                            caller_src,
                            caller_dst,
                            f"Definition 10: conflicting actions "
                            f"{src.label} <· {dst.label}",
                        )
                        changed = True
            # Definition 11: transaction dependencies whose endpoints are
            # actions on one object flow into that object's action deps;
            # cross-object pairs enter the closure work set.
            for sched in schedules.values():
                for src, dst in list(sched.txn_dep.edges):
                    if src.obj != dst.obj:
                        if self.propagate_cross_object:
                            if self._push_cross(src, dst, schedules, cross_seen):
                                changed = True
                        continue
                    target = schedules.get(src.obj)
                    if target is None:
                        continue
                    if not target.action_dep.has_edge(src, dst):
                        target.action_dep.add_edge(src, dst)
                        target.record_reason(
                            "action",
                            src,
                            dst,
                            f"Definition 11: inherited from {sched.oid}",
                        )
                        changed = True

    def _push_cross(
        self,
        src: ActionNode,
        dst: ActionNode,
        schedules: dict[ObjectId, ObjectSchedule],
        seen: set[tuple[int, int]],
    ) -> bool:
        """Lift one cross-object dependency toward a common object.

        A pair of actions on different objects cannot be shown to commute
        (commutativity is per object), so the ordering constraint between
        them is inherited by their callers: the deeper endpoint is replaced
        by its caller until both endpoints are actions on one object (then
        the constraint joins that object's ``<·`` and the usual machinery —
        including commutativity — takes over) or both are top-level roots
        (then it is a top-level ordering constraint).
        """
        changed = False
        pair: tuple[ActionNode, ActionNode] | None = (src, dst)
        while pair is not None:
            left, right = pair
            key = (id(left), id(right))
            if key in seen:
                return changed
            seen.add(key)
            if left.parent is None and right.parent is None:
                if (left, right) not in self.top_cross_deps:
                    self.top_cross_deps.add((left, right))
                    changed = True
                return changed
            if left.obj == right.obj:
                target = schedules.get(left.obj)
                if target is not None and left in target.action_dep.nodes \
                        and right in target.action_dep.nodes:
                    if not target.action_dep.has_edge(left, right):
                        target.action_dep.add_edge(left, right)
                        target.record_reason(
                            "action",
                            left,
                            right,
                            f"cross-object closure (from {src.label} -> "
                            f"{dst.label})",
                        )
                        changed = True
                    return changed
            # Lift the deeper side; on equal depth lift both.
            if left.depth > right.depth and left.parent is not None:
                pair = (left.parent, right)
            elif right.depth > left.depth and right.parent is not None:
                pair = (left, right.parent)
            else:
                next_left = left.parent if left.parent is not None else left
                next_right = right.parent if right.parent is not None else right
                if next_left is left and next_right is right:
                    return changed
                pair = (next_left, next_right)
            if pair[0] is pair[1]:
                return changed  # same caller: intra-unit, no constraint
        return changed

    def _added_dependencies(self, schedules: dict[ObjectId, ObjectSchedule]) -> None:
        """Definition 15: record cross-object transaction dependencies at
        both endpoint objects, redundantly."""
        for sched in schedules.values():
            for src, dst in sched.txn_dep.edges:
                if src.obj == dst.obj:
                    continue
                for endpoint_obj in (src.obj, dst.obj):
                    target = schedules.get(endpoint_obj)
                    if target is not None:
                        target.added_dep.add_edge(src, dst)
                        target.record_reason(
                            "added",
                            src,
                            dst,
                            f"Definition 15: recorded from {sched.oid}",
                        )


def order_by_seq(actions: Iterable[ActionNode]) -> list[ActionNode]:
    """Utility: sort actions by execution order (seq, then aid)."""
    return sorted(actions, key=lambda a: (a.seq, a.aid))
