"""Dependency inheritance (Axiom 1, Definitions 10, 11 and 15).

This module turns an executed transaction system plus a commutativity
registry into the per-object dependency relations.  The computation follows
the paper's information-flow story ("divide et impera", Section 1):

1. **Bootstrap (Axiom 1).**  Conflicting primitive actions on an object are
   totally ordered — we take the execution order (``seq`` stamps).  The same
   bootstrap applies when exactly one action of a conflicting pair is
   primitive: the primitive side has no deeper structure to inherit from, so
   its order "must be given" and the execution order supplies it.

2. **Lifting (Definition 10).**  If two actions on ``O`` are in conflict and
   an action dependency orders them, the dependency is inherited upward to
   the calling actions, which play the role of transactions on ``O``:
   ``t ↝ t'``.  Dependencies of *commuting* actions are **not** lifted —
   this is where oo-serializability gains concurrency over the conventional
   definition.

3. **Information flow (Definition 11).**  A transaction dependency recorded
   at ``P`` whose endpoints are both actions on another object ``O`` becomes
   an action dependency of ``O``'s schedule.  Steps 2-3 repeat to a fixpoint;
   for layered systems this is the usual level-by-level inheritance, but the
   fixpoint also covers the paper's non-layered call structures.

4. **Added dependencies (Definition 15).**  A transaction dependency whose
   endpoints are actions on *different* objects cannot be recorded as an
   action dependency anywhere; it is recorded redundantly at both objects in
   their *added action dependency* relations.

5. **Cross-object closure (reconstruction).**  Recording alone does not make
   contradictions *detectable* when the two call paths have different depths
   (DESIGN.md documents a counterexample schedule).  Commutativity is only
   defined per object, so a cross-object pair can never be shown to commute;
   we therefore keep lifting such a dependency to the calling actions until
   both endpoints are actions on one common object — where the object's
   commutativity may stop it, preserving the paper's concurrency gain — or
   both are top-level roots, where it becomes a top-level ordering
   constraint.  ``propagate_cross_object=False`` restores the literal
   Definition 15/16 reading (used by ablation benches).

Two engines compute the same fixpoint:

- the legacy **batch** fixpoint rescans every edge of every relation per
  round until nothing changes — simple, but quadratic in rounds × edges;
- the **incremental** :class:`IncrementalDependencyEngine` (the default)
  is worklist-driven: each edge is processed exactly once, when it is first
  derived, and appended transactions (``append_transaction``) only pay for
  their own deltas.  With ``track_cycles=True`` every relation is watched
  by an online topological order (:class:`repro.core.graph.OnlineTopology`),
  so the first contradiction is reported at the insertion that closes it.

For one-shot analyses the worklist is drained in *stratified* rounds that
replay the batch engine's derivation order edge for edge, which makes the
two engines byte-identical — verdicts, edge sets, first-reason-wins
provenance and cycle witnesses (pinned by the differential test suite).
``REPRO_ANALYSIS=batch|incremental`` selects the engine globally.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.extension import extend_system
from repro.core.graph import OnlineTopology
from repro.core.identifiers import SYSTEM_OBJECT, ObjectId
from repro.core.schedule import ObjectSchedule, program_precedes
from repro.core.transactions import OOTransaction, TransactionSystem
from repro.errors import ReproError

#: environment variable selecting the analysis engine for all consumers
ANALYSIS_ENGINE_ENV = "REPRO_ANALYSIS"


def analysis_engine() -> str:
    """The configured analysis engine: ``incremental`` (default) or ``batch``."""
    value = os.environ.get(ANALYSIS_ENGINE_ENV, "incremental").strip().lower()
    if value not in ("batch", "incremental"):
        raise ReproError(
            f"unknown {ANALYSIS_ENGINE_ENV} value {value!r}: "
            f"expected 'batch' or 'incremental'"
        )
    return value


def linearize_effects(
    system: TransactionSystem, tops: Iterable[OOTransaction] | None = None
) -> None:
    """Re-stamp each method action at its first own-object effect.

    The execution trace stamps an action's ``seq`` when its scheduler
    request is granted.  For protocols that lock the accessed object itself
    this *is* the object-level serialization point.  But under
    page-granularity protocols (flat 2PL, closed nesting) a method action
    acquires no lock on its object: its stamp records dispatch time, while
    the actual serialization of two conflicting method executions happens at
    their first page conflict — which, after an interleaving switch, can
    contradict dispatch order.  Axiom 1 would then bootstrap edges (via the
    primitive virtual duplicates of Definition 5, which inherit the stamp)
    that invert the real execution order, manufacturing cycles in perfectly
    serializable 2PL histories.

    The honest object-schedule position of a method action is therefore the
    ``seq`` of its first *direct* primitive child — its first access to its
    own object's page.  For object-locking protocols this never reorders
    conflicting pairs (the grant stamp precedes all children and conflicting
    actions cannot overlap), so the rewrite is safe to apply universally.
    Actions without direct primitive children fall back to their subtree's
    first effect, and childless actions keep their stamp.  The rewrite is
    idempotent and must run before the Definition 5 extension (duplicates
    copy their original's stamp).

    ``tops`` restricts the rewrite to the given transactions' trees (the
    incremental engine re-stamps only what it appends; the recursion never
    leaves a tree, so a restricted pass equals the global one restricted).
    """
    effective: dict[int, int] = {}

    def eff(action: ActionNode) -> int:
        key = id(action)
        if key in effective:
            return effective[key]
        if action.is_primitive:
            value = action.seq
        else:
            direct = [c.seq for c in action.children if c.is_primitive]
            if direct:
                value = min(direct)
            elif action.children:
                value = min(eff(c) for c in action.children)
            else:
                value = action.seq
        effective[key] = value
        return value

    if tops is None:
        source: Iterable[ActionNode] = system.all_actions()
    else:
        source = (action for txn in tops for action in txn.actions())
    updates = [
        (action, eff(action))
        for action in source
        if not action.is_primitive and not action.virtual
    ]
    for action, value in updates:
        action.seq = value


class DependencyAnalysis:
    """Computes every object schedule of a transaction system.

    Parameters
    ----------
    system:
        The executed transaction system.  Unless ``extend=False``, the
        Definition 5 extension is applied first (mutating the system) so
        that no action has a call ancestor on its own object.
    commutativity:
        The registry of per-object commutativity specifications.
    extend:
        Disable the extension only to demonstrate why it is needed (the
        ablation bench A2); verdicts on unextended systems with call cycles
        are not trustworthy.
    linearize:
        Apply :func:`linearize_effects` first (default), re-stamping each
        method action at its first own-object effect so that Axiom 1
        bootstraps from execution order rather than dispatch order.
    engine:
        ``"batch"`` or ``"incremental"``; default from ``REPRO_ANALYSIS``
        (incremental).  Both produce byte-identical schedules.
    """

    def __init__(
        self,
        system: TransactionSystem,
        commutativity: CommutativityRegistry,
        *,
        extend: bool = True,
        propagate_cross_object: bool = True,
        linearize: bool = True,
        engine: str | None = None,
    ):
        self.system = system
        self.commutativity = commutativity
        self.engine = engine if engine is not None else analysis_engine()
        if linearize:
            linearize_effects(system)
        self.extension = extend_system(system) if extend else None
        self.propagate_cross_object = propagate_cross_object
        #: top-level ordering constraints discovered by the cross-object
        #: closure (pairs of root actions)
        self.top_cross_deps: set[tuple[ActionNode, ActionNode]] = set()
        self._schedules: dict[ObjectId, ObjectSchedule] | None = None

    # -- public API ----------------------------------------------------------

    def schedules(self) -> dict[ObjectId, ObjectSchedule]:
        """Compute (once) and return all object schedules, keyed by object."""
        if self._schedules is None:
            if self.engine == "batch":
                self._schedules = self._compute()
            else:
                core = IncrementalDependencyEngine(
                    self.system,
                    self.commutativity,
                    propagate_cross_object=self.propagate_cross_object,
                    linearize=False,  # the constructor already ran it
                    extend=False,  # likewise
                )
                core.top_cross_deps = self.top_cross_deps
                core.run()
                self._schedules = core.schedules
        return self._schedules

    def schedule(self, oid: ObjectId) -> ObjectSchedule:
        return self.schedules()[oid]

    # -- computation -----------------------------------------------------------

    def _conflict(self, a: ActionNode, b: ActionNode) -> bool:
        """Definition 9 conflict test, never raising for same-object pairs."""
        return self.commutativity.in_conflict(a, b)

    def _compute(self) -> dict[ObjectId, ObjectSchedule]:
        system = self.system
        objects = sorted(system.objects - {SYSTEM_OBJECT})
        schedules: dict[ObjectId, ObjectSchedule] = {}

        for oid in objects:
            sched = ObjectSchedule(system=system, oid=oid)
            sched.actions = system.actions_on(oid)
            sched.transactions = system.transactions_on(oid)
            for action in sched.actions:
                sched.action_dep.add_node(action)
            for caller in sched.transactions:
                sched.txn_dep.add_node(caller)
            self._bootstrap(sched)
            self._program_precedence(sched)
            schedules[oid] = sched

        self._fixpoint(schedules)
        self._added_dependencies(schedules)
        return schedules

    def _program_precedence(self, sched: ObjectSchedule) -> None:
        """Definition 7: the object precedence relation is part of ``<·``.

        The action dependency relation "must include the given precedences";
        in a conform schedule these edges agree with the execution order, in
        a non-conform one they surface as extra (possibly contradictory)
        dependencies.
        """
        actions = sched.actions
        for i, first in enumerate(actions):
            for second in actions[i + 1 :]:
                if program_precedes(first, second):
                    sched.action_dep.add_edge(first, second)
                    sched.record_reason(
                        "action", first, second, "Definition 7: program precedence"
                    )
                elif program_precedes(second, first):
                    sched.action_dep.add_edge(second, first)
                    sched.record_reason(
                        "action", second, first, "Definition 7: program precedence"
                    )

    def _bootstrap(self, sched: ObjectSchedule) -> None:
        """Axiom 1: order conflicting pairs with a primitive member by seq."""
        actions = sched.actions
        for i, first in enumerate(actions):
            for second in actions[i + 1 :]:
                if not (first.is_primitive or second.is_primitive):
                    continue
                if self._conflict(first, second):
                    # ``actions`` is sorted by seq: first executed first.
                    sched.action_dep.add_edge(first, second)
                    sched.record_reason(
                        "action",
                        first,
                        second,
                        "Axiom 1: executed {} < {}",
                        first.seq,
                        second.seq,
                    )

    def _fixpoint(self, schedules: dict[ObjectId, ObjectSchedule]) -> None:
        """Alternate Definitions 10, 11 and the cross-object closure until
        nothing new is derivable (the relations are finite and only grow)."""
        cross_seen: set[tuple[int, int]] = set()
        changed = True
        while changed:
            changed = False
            # Definition 10: lift conflicting action dependencies to callers.
            # (Lazy iteration is safe: the loop only adds txn edges.)
            for sched in schedules.values():
                for src, dst in sched.action_dep.iter_edges():
                    if not self._conflict(src, dst):
                        continue
                    caller_src, caller_dst = src.parent, dst.parent
                    if caller_src is None or caller_dst is None:
                        continue
                    if caller_src is caller_dst:
                        continue
                    if not sched.txn_dep.has_edge(caller_src, caller_dst):
                        sched.txn_dep.add_edge(caller_src, caller_dst)
                        sched.record_reason(
                            "txn",
                            caller_src,
                            caller_dst,
                            "Definition 10: conflicting actions {} <· {}",
                            src,
                            dst,
                        )
                        changed = True
            # Definition 11: transaction dependencies whose endpoints are
            # actions on one object flow into that object's action deps;
            # cross-object pairs enter the closure work set.  (Lazy again:
            # only action relations are mutated while txn edges are read.)
            for sched in schedules.values():
                for src, dst in sched.txn_dep.iter_edges():
                    if src.obj != dst.obj:
                        if self.propagate_cross_object:
                            if self._push_cross(src, dst, schedules, cross_seen):
                                changed = True
                        continue
                    target = schedules.get(src.obj)
                    if target is None:
                        continue
                    if not target.action_dep.has_edge(src, dst):
                        target.action_dep.add_edge(src, dst)
                        target.record_reason(
                            "action",
                            src,
                            dst,
                            "Definition 11: inherited from {}",
                            sched.oid,
                        )
                        changed = True

    def _push_cross(
        self,
        src: ActionNode,
        dst: ActionNode,
        schedules: dict[ObjectId, ObjectSchedule],
        seen: set[tuple[int, int]],
    ) -> bool:
        """Lift one cross-object dependency toward a common object.

        A pair of actions on different objects cannot be shown to commute
        (commutativity is per object), so the ordering constraint between
        them is inherited by their callers: the deeper endpoint is replaced
        by its caller until both endpoints are actions on one object (then
        the constraint joins that object's ``<·`` and the usual machinery —
        including commutativity — takes over) or both are top-level roots
        (then it is a top-level ordering constraint).
        """
        changed = False
        pair: tuple[ActionNode, ActionNode] | None = (src, dst)
        while pair is not None:
            left, right = pair
            key = (id(left), id(right))
            if key in seen:
                return changed
            seen.add(key)
            if left.parent is None and right.parent is None:
                if (left, right) not in self.top_cross_deps:
                    self.top_cross_deps.add((left, right))
                    changed = True
                return changed
            if left.obj == right.obj:
                target = schedules.get(left.obj)
                if target is not None and left in target.action_dep \
                        and right in target.action_dep:
                    if not target.action_dep.has_edge(left, right):
                        target.action_dep.add_edge(left, right)
                        target.record_reason(
                            "action",
                            left,
                            right,
                            "cross-object closure (from {} -> {})",
                            src,
                            dst,
                        )
                        changed = True
                    return changed
            # Lift the deeper side; on equal depth lift both.
            if left.depth > right.depth and left.parent is not None:
                pair = (left.parent, right)
            elif right.depth > left.depth and right.parent is not None:
                pair = (left, right.parent)
            else:
                next_left = left.parent if left.parent is not None else left
                next_right = right.parent if right.parent is not None else right
                if next_left is left and next_right is right:
                    return changed
                pair = (next_left, next_right)
            if pair[0] is pair[1]:
                return changed  # same caller: intra-unit, no constraint
        return changed

    def _added_dependencies(self, schedules: dict[ObjectId, ObjectSchedule]) -> None:
        """Definition 15: record cross-object transaction dependencies at
        both endpoint objects, redundantly."""
        for sched in schedules.values():
            for src, dst in sched.txn_dep.iter_edges():
                if src.obj == dst.obj:
                    continue
                for endpoint_obj in (src.obj, dst.obj):
                    target = schedules.get(endpoint_obj)
                    if target is not None:
                        target.added_dep.add_edge(src, dst)
                        target.record_reason(
                            "added",
                            src,
                            dst,
                            "Definition 15: recorded from {}",
                            sched.oid,
                        )


class IncrementalDependencyEngine:
    """Worklist-driven evaluation of the Definition 10/11/15 fixpoint.

    Every newly derived edge is *observed* exactly once: it is recorded in
    its relation, tagged with its position in the relation's iteration
    order, and queued.  :meth:`_drain` then processes queued edges in
    stratified rounds — a Definition 10 phase over new action dependencies
    followed by a Definition 11/closure phase over new transaction
    dependencies, schedules in sorted object order, edges in relation
    order — which replays the batch fixpoint's derivation order exactly
    (the batch engine rescans *all* edges per round but only the new ones
    derive anything).  One-shot analyses are therefore byte-identical to
    the batch engine while doing O(edges) instead of O(rounds × edges)
    rule evaluations.

    The engine is also *appendable*: :meth:`append_transaction` integrates
    one more executed transaction into an existing analysis — re-stamping
    and extending only the new tree, bootstrapping only pairs with a new
    member — which is how the optimistic certifier validates each commit
    against the already-analyzed committed prefix instead of re-analyzing
    from empty.

    With ``track_cycles=True`` every relation feeds an
    :class:`~repro.core.graph.OnlineTopology` watcher (per-object action,
    transaction and combined ``<· ∪ <+`` relations, plus the global
    top-level graph), Definition 15 recording happens eagerly, and
    :attr:`violated` flips at the exact insertion that closes the first
    cycle — the boolean consumers (certifier, fuzz oracle fast path) stop
    there.  Without it, added dependencies are recorded in a batch-shaped
    finalize pass so the resulting schedules match the batch engine
    byte for byte.
    """

    def __init__(
        self,
        system: TransactionSystem,
        commutativity: CommutativityRegistry,
        *,
        propagate_cross_object: bool = True,
        track_cycles: bool = False,
        linearize: bool = True,
        extend: bool = True,
        metrics=None,
    ):
        self.system = system
        self.commutativity = commutativity
        self.propagate_cross_object = propagate_cross_object
        self.track_cycles = track_cycles
        self.linearize = linearize
        self.extend = extend
        # Optional observability (a repro.obs.metrics.MetricsRegistry):
        # callers that own a registry — the optimistic certifier, the CLI —
        # see how much dependency work their analyses actually did.
        if metrics is not None:
            self._m_appends = metrics.counter(
                "analysis_appends_total",
                "transactions appended to the incremental analysis",
            )
            self._m_edges = metrics.counter(
                "analysis_edges_total",
                "dependency edges recorded (action- and txn-level)",
            )
            self._m_cross = metrics.counter(
                "analysis_cross_lifts_total",
                "cross-object constraints lifted toward a common object",
            )
        else:
            self._m_appends = self._m_edges = self._m_cross = None
        self.schedules: dict[ObjectId, ObjectSchedule] = {}
        self.top_cross_deps: set[tuple[ActionNode, ActionNode]] = set()
        #: set as soon as any watched relation becomes cyclic (track_cycles)
        self.violated = False
        self._seen_actions: set[int] = set()
        self._seen_callers: dict[ObjectId, set[int]] = {}
        self._cross_seen: set[tuple[int, int]] = set()
        #: per-object queues of (relation-order key, src, dst)
        self._pending_action: dict[ObjectId, list] = {}
        self._pending_txn: dict[ObjectId, list] = {}
        self._watch_action: dict[ObjectId, OnlineTopology] = {}
        self._watch_txn: dict[ObjectId, OnlineTopology] = {}
        self._watch_combined: dict[ObjectId, OnlineTopology] = {}
        self._watch_global: OnlineTopology = OnlineTopology()

    # -- public API ----------------------------------------------------------

    @property
    def system_oo_serializable(self) -> bool:
        """Definition 16 on everything integrated so far (track_cycles)."""
        return not self.violated

    def run(self) -> dict[ObjectId, ObjectSchedule]:
        """One-shot: integrate every transaction, batch-order, and drain."""
        if self.linearize:
            linearize_effects(self.system)
        if self.extend:
            extend_system(self.system)
        # One sweep over the trees instead of ``actions_on`` per object —
        # the latter costs O(objects × actions) in repeated full scans.
        groups: dict[ObjectId, list[ActionNode]] = {}
        for action in self.system.all_actions():
            if action.obj != SYSTEM_OBJECT:
                groups.setdefault(action.obj, []).append(action)
        objects = sorted(self.system.objects - {SYSTEM_OBJECT})
        for oid in objects:
            self._schedule_for(oid)
        for oid in objects:
            group = groups.get(oid)
            if group:
                group.sort(key=lambda a: (a.seq, a.aid))
                self._integrate_object(self.schedules[oid], group)
        self._drain()
        if not self.track_cycles:
            self._finalize_added()
        return self.schedules

    def run_per_transaction(self, *, stop_on_violation: bool = True) -> bool:
        """Integrate the system's transactions one by one, oldest first.

        Re-stamping and extension are applied globally *up front* (exactly
        the tree mutations a one-shot analysis performs), so the fixpoint
        reached after the last transaction equals the one-shot fixpoint —
        but with ``stop_on_violation`` the walk stops at the first
        transaction whose integration closes a cycle, skipping the whole
        tail.  Dependency relations only grow with each appended
        transaction, so an early violation is final.  Returns
        :attr:`violated`.  Requires ``track_cycles=True``.
        """
        if not self.track_cycles:
            raise ReproError("run_per_transaction requires track_cycles=True")
        if self.linearize:
            linearize_effects(self.system)
        if self.extend:
            extend_system(self.system)
        for txn in self.system.tops:
            if stop_on_violation and self.violated:
                break
            self._integrate_tree(txn)
            self._drain()
        return self.violated

    def append_transaction(
        self, txn: OOTransaction, *, extras: Iterable[ActionNode] | None = None
    ) -> None:
        """Extend the analysis with one more executed transaction.

        The transaction is added to the engine's system if missing; only
        its tree is re-stamped and extended (committed trees are already
        extension-free), and only dependency deltas involving its actions
        (plus any virtual duplicates the extension hangs off committed
        trees) are derived.

        When ``extras`` is given (any sequence, including an empty one) the
        tree is taken as already re-stamped and extended — the caller did
        the linearize/extend pass itself, e.g. globally up front — and the
        given duplicates are integrated alongside the tree's own actions.
        """
        if all(existing is not txn for existing in self.system._tops):
            self.system._tops.append(txn)
        if self._m_appends is not None:
            self._m_appends.value += 1
        if extras is None:
            if self.linearize:
                linearize_effects(self.system, tops=[txn])
            extras = []
            if self.extend:
                extension = extend_system(self.system, tops=[txn])
                extras = extension.duplicates
        self._integrate_tree(txn, extras=extras)
        self._drain()

    # -- integration ---------------------------------------------------------

    def _conflict(self, a: ActionNode, b: ActionNode) -> bool:
        return self.commutativity.in_conflict(a, b)

    def _schedule_for(self, oid: ObjectId) -> ObjectSchedule:
        sched = self.schedules.get(oid)
        if sched is None:
            sched = ObjectSchedule(system=self.system, oid=oid)
            self.schedules[oid] = sched
        return sched

    def _integrate_tree(
        self, txn: OOTransaction, extras: Iterable[ActionNode] = ()
    ) -> None:
        """Queue every not-yet-seen action of ``txn`` (plus ``extras`` —
        virtual duplicates the extension attached to other trees)."""
        fresh: dict[ObjectId, list[ActionNode]] = {}
        for action in list(txn.actions()) + list(extras):
            if action.obj == SYSTEM_OBJECT or id(action) in self._seen_actions:
                continue
            fresh.setdefault(action.obj, []).append(action)
        for oid in sorted(fresh):
            new_actions = sorted(fresh[oid], key=lambda a: (a.seq, a.aid))
            self._integrate_object(self._schedule_for(oid), new_actions)

    def _integrate_object(
        self, sched: ObjectSchedule, new_actions: list[ActionNode]
    ) -> None:
        """Merge new actions into a schedule and derive their base facts.

        When the schedule is empty this reproduces the batch engine's
        per-object setup (nodes, Axiom 1, Definition 7) in the identical
        iteration order; on later appends only pairs with a new member are
        examined.
        """
        if not new_actions:
            return
        new_ids = {id(a) for a in new_actions}
        self._seen_actions.update(new_ids)
        if sched.actions:
            merged = sorted(
                sched.actions + new_actions, key=lambda a: (a.seq, a.aid)
            )
        else:
            merged = list(new_actions)
        sched.actions = merged
        for action in merged:
            if id(action) in new_ids:
                sched.action_dep.add_node(action)

        callers_seen = self._seen_callers.setdefault(sched.oid, set())
        new_callers: list[ActionNode] = []
        for action in merged:
            if id(action) not in new_ids:
                continue
            caller = action.parent
            if caller is not None and id(caller) not in callers_seen:
                callers_seen.add(id(caller))
                new_callers.append(caller)
        if new_callers:
            new_callers.sort(key=lambda a: (a.seq, a.aid))
            if sched.transactions:
                sched.transactions = sorted(
                    sched.transactions + new_callers,
                    key=lambda a: (a.seq, a.aid),
                )
            else:
                sched.transactions = list(new_callers)
            for caller in new_callers:
                sched.txn_dep.add_node(caller)

        position = {id(a): i for i, a in enumerate(merged)}

        # Axiom 1 over pairs with a new member (and a primitive member).
        for outer in merged:
            if id(outer) not in new_ids:
                continue
            outer_pos = position[id(outer)]
            for inner in merged:
                if inner is outer:
                    continue
                inner_pos = position[id(inner)]
                if id(inner) in new_ids and inner_pos < outer_pos:
                    continue  # the pair was handled with roles swapped
                first, second = (
                    (outer, inner) if outer_pos < inner_pos else (inner, outer)
                )
                if not (first.is_primitive or second.is_primitive):
                    continue
                if self._conflict(first, second):
                    self._observe_action(
                        sched,
                        first,
                        second,
                        "Axiom 1: executed {} < {}",
                        (first.seq, second.seq),
                    )

        # Definition 7 over pairs with a new member.
        for outer in merged:
            if id(outer) not in new_ids:
                continue
            outer_pos = position[id(outer)]
            for inner in merged:
                if inner is outer:
                    continue
                inner_pos = position[id(inner)]
                if id(inner) in new_ids and inner_pos < outer_pos:
                    continue
                first, second = (
                    (outer, inner) if outer_pos < inner_pos else (inner, outer)
                )
                if program_precedes(first, second):
                    self._observe_action(
                        sched, first, second, "Definition 7: program precedence", ()
                    )
                elif program_precedes(second, first):
                    self._observe_action(
                        sched, second, first, "Definition 7: program precedence", ()
                    )

    # -- observation (the append/observe_edge surface) ------------------------

    def observe_edge(
        self, oid: ObjectId, relation: str, src: ActionNode, dst: ActionNode
    ) -> None:
        """Record an externally supplied edge and propagate its consequences.

        ``relation`` is ``"action"`` or ``"txn"``.  Mostly a testing/embedding
        hook; the executor-facing surface is :meth:`append_transaction`.
        """
        sched = self._schedule_for(oid)
        if relation == "action":
            self._observe_action(sched, src, dst, "observed", ())
        elif relation == "txn":
            self._observe_txn(sched, src, dst, "observed", ())
        else:
            raise ReproError(f"unknown relation {relation!r}")
        self._drain()

    def _observe_action(
        self,
        sched: ObjectSchedule,
        src: ActionNode,
        dst: ActionNode,
        template: str,
        args: tuple,
    ) -> None:
        graph = sched.action_dep
        if graph.has_edge(src, dst):
            return
        graph.add_edge(src, dst)
        if self._m_edges is not None:
            self._m_edges.value += 1
        sched.record_reason("action", src, dst, template, *args)
        self._pending_action.setdefault(sched.oid, []).append(
            (graph.edge_sort_key(src, dst), src, dst)
        )
        if self.track_cycles:
            if self._watch(self._watch_action, sched.oid).add_edge_checked(src, dst):
                self.violated = True
            if self._watch(self._watch_combined, sched.oid).add_edge_checked(src, dst):
                self.violated = True

    def _observe_txn(
        self,
        sched: ObjectSchedule,
        src: ActionNode,
        dst: ActionNode,
        template: str,
        args: tuple,
    ) -> None:
        graph = sched.txn_dep
        if graph.has_edge(src, dst):
            return
        graph.add_edge(src, dst)
        if self._m_edges is not None:
            self._m_edges.value += 1
        sched.record_reason("txn", src, dst, template, *args)
        self._pending_txn.setdefault(sched.oid, []).append(
            (graph.edge_sort_key(src, dst), src, dst)
        )
        if self.track_cycles:
            if self._watch(self._watch_txn, sched.oid).add_edge_checked(src, dst):
                self.violated = True
            if (
                src.parent is None
                and dst.parent is None
                and src.top != dst.top
            ):
                if self._watch_global.add_edge_checked(src.top, dst.top):
                    self.violated = True
            if src.obj != dst.obj:
                # Definition 15, eagerly: boolean consumers never run the
                # batch-shaped finalize pass.
                self._record_added(sched, src, dst)

    def _record_added(
        self, sched: ObjectSchedule, src: ActionNode, dst: ActionNode
    ) -> None:
        for endpoint_obj in (src.obj, dst.obj):
            target = self.schedules.get(endpoint_obj)
            if target is None or target.added_dep.has_edge(src, dst):
                continue
            target.added_dep.add_edge(src, dst)
            target.record_reason(
                "added", src, dst, "Definition 15: recorded from {}", sched.oid
            )
            if self._watch(self._watch_combined, endpoint_obj).add_edge_checked(
                src, dst
            ):
                self.violated = True

    def _watch(
        self, watchers: dict[ObjectId, OnlineTopology], oid: ObjectId
    ) -> OnlineTopology:
        watcher = watchers.get(oid)
        if watcher is None:
            watcher = OnlineTopology()
            watchers[oid] = watcher
        return watcher

    # -- the worklist ---------------------------------------------------------

    def _drain(self) -> None:
        """Process queued edges to the fixpoint, in stratified rounds."""
        while self._pending_action or self._pending_txn:
            if self.track_cycles and self.violated:
                return  # terminal for every boolean consumer
            # Phase 1 — Definition 10 over newly derived action dependencies.
            batch = self._pending_action
            self._pending_action = {}
            for oid in sorted(batch):
                sched = self.schedules[oid]
                entries = batch[oid]
                entries.sort(key=lambda entry: entry[0])
                for _, src, dst in entries:
                    self._lift(sched, src, dst)
            # Phase 2 — Definition 11 / cross-object closure over newly
            # derived transaction dependencies (including phase 1's).
            batch = self._pending_txn
            self._pending_txn = {}
            for oid in sorted(batch):
                sched = self.schedules[oid]
                entries = batch[oid]
                entries.sort(key=lambda entry: entry[0])
                for _, src, dst in entries:
                    self._flow(sched, src, dst)

    def _lift(self, sched: ObjectSchedule, src: ActionNode, dst: ActionNode) -> None:
        """Definition 10 on one action dependency."""
        if not self._conflict(src, dst):
            return
        caller_src, caller_dst = src.parent, dst.parent
        if caller_src is None or caller_dst is None:
            return
        if caller_src is caller_dst:
            return
        self._observe_txn(
            sched,
            caller_src,
            caller_dst,
            "Definition 10: conflicting actions {} <· {}",
            (src, dst),
        )

    def _flow(self, sched: ObjectSchedule, src: ActionNode, dst: ActionNode) -> None:
        """Definition 11 (or the cross-object closure) on one txn dependency."""
        if src.obj != dst.obj:
            if self.propagate_cross_object:
                self._push_cross(src, dst)
            return
        target = self.schedules.get(src.obj)
        if target is None:
            return
        self._observe_action(
            target, src, dst, "Definition 11: inherited from {}", (sched.oid,)
        )

    def _push_cross(self, src: ActionNode, dst: ActionNode) -> None:
        """The cross-object closure walk (see the batch engine's docstring)."""
        if self._m_cross is not None:
            self._m_cross.value += 1
        pair: tuple[ActionNode, ActionNode] | None = (src, dst)
        while pair is not None:
            left, right = pair
            key = (id(left), id(right))
            if key in self._cross_seen:
                return
            self._cross_seen.add(key)
            if left.parent is None and right.parent is None:
                if (left, right) not in self.top_cross_deps:
                    self.top_cross_deps.add((left, right))
                    if self.track_cycles and left.top != right.top:
                        if self._watch_global.add_edge_checked(left.top, right.top):
                            self.violated = True
                return
            if left.obj == right.obj:
                target = self.schedules.get(left.obj)
                if target is not None and left in target.action_dep \
                        and right in target.action_dep:
                    self._observe_action(
                        target,
                        left,
                        right,
                        "cross-object closure (from {} -> {})",
                        (src, dst),
                    )
                    return
            if left.depth > right.depth and left.parent is not None:
                pair = (left.parent, right)
            elif right.depth > left.depth and right.parent is not None:
                pair = (left, right.parent)
            else:
                next_left = left.parent if left.parent is not None else left
                next_right = right.parent if right.parent is not None else right
                if next_left is left and next_right is right:
                    return
                pair = (next_left, next_right)
            if pair[0] is pair[1]:
                return  # same caller: intra-unit, no constraint

    # -- finalize -------------------------------------------------------------

    def _finalize_added(self) -> None:
        """Definition 15 in the batch engine's shape (one-shot runs only):
        iterating finished relations keeps the added-edge insertion order —
        and with it combined-graph cycle witnesses — byte-identical."""
        for sched in self.schedules.values():
            for src, dst in sched.txn_dep.iter_edges():
                if src.obj == dst.obj:
                    continue
                for endpoint_obj in (src.obj, dst.obj):
                    target = self.schedules.get(endpoint_obj)
                    if target is not None:
                        target.added_dep.add_edge(src, dst)
                        target.record_reason(
                            "added",
                            src,
                            dst,
                            "Definition 15: recorded from {}",
                            sched.oid,
                        )


def order_by_seq(actions: Iterable[ActionNode]) -> list[ActionNode]:
    """Utility: sort actions by execution order (seq, then aid)."""
    return sorted(actions, key=lambda a: (a.seq, a.aid))
