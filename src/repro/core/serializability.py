"""Equivalence and oo-serializability (Definitions 12-16), plus the
conventional conflict-serializability baseline the paper argues against.

- Definition 12: two object schedules are *equivalent* iff they have the
  same transaction dependency relation.
- Definition 13: an object schedule is *oo-serializable* iff (i) an
  equivalent serial object schedule exists — equivalently, the transaction
  dependency relation projected onto top-level transactions is acyclic — and
  (ii) the action dependency relation is acyclic (contradicting inherited
  dependencies signify access to an inconsistent state).
- Definition 14: a *system schedule* is the set of all object schedules.
- Definition 15: the added action dependency relation (cross-object
  transaction dependencies recorded redundantly at both objects).
- Definition 16: the system schedule is oo-serializable iff every object
  schedule is oo-serializable and, per object, ``<· ∪ <+`` is acyclic.

The conventional baseline treats every primitive action as a read/write on
its object and demands one global conflict order over top-level
transactions; comparing the two sets of induced ordering constraints is the
quantitative content of the paper's "lower rate of conflicting accesses"
claim (bench C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import ActionNode, same_process
from repro.core.commutativity import CommutativityRegistry
from repro.core.dependency import DependencyAnalysis
from repro.core.graph import DirectedGraph
from repro.core.identifiers import ObjectId
from repro.core.schedule import ObjectSchedule
from repro.core.transactions import TransactionSystem


@dataclass
class ObjectVerdict:
    """Definition 13 evaluated on one object schedule."""

    oid: ObjectId
    conform: bool
    serial: bool
    serial_equivalent_exists: bool  # Def 13 (i)
    action_dep_acyclic: bool  # Def 13 (ii)
    combined_acyclic: bool  # Def 16 (ii): <· ∪ <+ acyclic
    action_cycle: list[str] | None = None
    top_cycle: list[str] | None = None

    @property
    def oo_serializable(self) -> bool:
        return self.serial_equivalent_exists and self.action_dep_acyclic


@dataclass
class SystemVerdict:
    """Definition 16 evaluated on a whole system schedule."""

    object_verdicts: dict[ObjectId, ObjectVerdict]
    #: union over objects of the top-level projections of ↝ (diagnostic view)
    global_top_graph: DirectedGraph = field(default_factory=DirectedGraph)
    #: one equivalent global serial order of top-level transactions, if any
    serial_order: list[str] | None = None

    @property
    def oo_serializable(self) -> bool:
        """Definition 16, with the system object made explicit.

        Dependencies between transaction roots are action dependencies of
        the *system object's* schedule; their acyclicity (checked on
        ``global_top_graph``) is Definition 13(ii) applied to ``S`` rather
        than an extra condition.
        """
        return self.global_top_graph.is_acyclic() and all(
            verdict.oo_serializable and verdict.combined_acyclic
            for verdict in self.object_verdicts.values()
        )

    @property
    def top_order_constraints(self) -> set[tuple[str, str]]:
        """The ordering constraints oo-serializability imposes on top-level
        transactions — the quantity compared against the conventional
        criterion in bench C1."""
        return set(self.global_top_graph.edges)

    def describe(self) -> str:
        lines = []
        for oid in sorted(self.object_verdicts):
            verdict = self.object_verdicts[oid]
            lines.append(
                f"{oid}: oo-serializable={verdict.oo_serializable} "
                f"(serial-equivalent={verdict.serial_equivalent_exists}, "
                f"action-dep-acyclic={verdict.action_dep_acyclic}, "
                f"combined-acyclic={verdict.combined_acyclic})"
            )
        lines.append(f"system oo-serializable: {self.oo_serializable}")
        if self.serial_order is not None:
            lines.append("equivalent serial order: " + " < ".join(self.serial_order))
        return "\n".join(lines)


def judge_object(sched: ObjectSchedule) -> ObjectVerdict:
    """Evaluate Definitions 7, 8, 13 and 16(ii) on one object schedule.

    Definition 13(i) — "there exists an equivalent serial object schedule"
    — is checked as acyclicity of the transaction dependency relation over
    the object's *transactions* ``TRA_O``, i.e. over the calling actions:
    "a calling action plays its part as a transaction".  Projecting onto
    top-level transactions instead would reject schedules whose page-level
    dependencies disagree with every top-level order even though all the
    calling subtransactions commute — exactly the schedules Example 1
    admits.  Contradictions between top-level transactions still surface:
    when conflicts propagate, the callers eventually *are* the transaction
    roots, and the cycle appears there (or in the system-level graph).
    """
    txn_cycle = sched.txn_dep.find_cycle()
    action_cycle = sched.action_dep.find_cycle()
    combined_cycle = sched.combined_dependencies().find_cycle()
    return ObjectVerdict(
        oid=sched.oid,
        conform=sched.is_conform(),
        serial=sched.is_serial(),
        serial_equivalent_exists=txn_cycle is None,
        action_dep_acyclic=action_cycle is None,
        combined_acyclic=combined_cycle is None,
        action_cycle=[a.label for a in action_cycle] if action_cycle else None,
        top_cycle=[a.label for a in txn_cycle] if txn_cycle else None,
    )


def analyze_system(
    system: TransactionSystem,
    commutativity: CommutativityRegistry,
    *,
    extend: bool = True,
    propagate_cross_object: bool = True,
    engine: str | None = None,
) -> tuple[SystemVerdict, dict[ObjectId, ObjectSchedule]]:
    """Run the full pipeline: extension, dependency inheritance, verdicts.

    Returns the system verdict together with every object schedule so that
    callers (examples, benches) can print the per-object dependency tables of
    Figures 4, 7 and 8.  ``propagate_cross_object=False`` selects the literal
    Definition 15/16 reading (see the module docstring of
    :mod:`repro.core.dependency` and DESIGN.md for why the closure is the
    default).  ``engine`` overrides the ``REPRO_ANALYSIS`` engine choice
    (``"batch"``/``"incremental"``); both engines are byte-identical here.
    """
    analysis = DependencyAnalysis(
        system,
        commutativity,
        extend=extend,
        propagate_cross_object=propagate_cross_object,
        engine=engine,
    )
    schedules = analysis.schedules()
    verdicts = {oid: judge_object(sched) for oid, sched in schedules.items()}

    # Only dependencies that propagate all the way to the transaction roots
    # constrain the order of top-level transactions: a dependency that stops
    # at a commuting level "can be neglected" above it (Example 1).  This is
    # where oo-serializability imposes strictly fewer ordering constraints
    # than the conventional criterion.
    global_top = DirectedGraph()
    for txn in system.tops:
        global_top.add_node(txn.label)
    for sched in schedules.values():
        for graph in (sched.txn_dep, sched.added_dep):
            for src, dst in graph.iter_edges():
                if src.parent is None and dst.parent is None and src.top != dst.top:
                    global_top.add_edge(src.top, dst.top)
    for src, dst in analysis.top_cross_deps:
        if src.top != dst.top:
            global_top.add_edge(src.top, dst.top)

    verdict = SystemVerdict(object_verdicts=verdicts, global_top_graph=global_top)
    if verdict.oo_serializable and global_top.is_acyclic():
        verdict.serial_order = global_top.topological_order()
    return verdict, schedules


def equivalent(first: ObjectSchedule, second: ObjectSchedule) -> bool:
    """Definition 12: equality of the transaction dependency relations.

    Dependencies are compared by action identity when both schedules share a
    system, and by action label otherwise (so that a re-executed schedule can
    be compared against a reference)."""
    if first.system is second.system:
        first_edges = {(id(a), id(b)) for a, b in first.txn_dep.edges}
        second_edges = {(id(a), id(b)) for a, b in second.txn_dep.edges}
        return first_edges == second_edges
    return first.txn_dep_pairs() == second.txn_dep_pairs()


# -- the conventional baseline -------------------------------------------------


def conventional_serialization_graph(
    system: TransactionSystem,
    read_methods: tuple[str, ...] = ("read",),
) -> DirectedGraph:
    """Conflict-order-preserving serializability over primitive actions.

    This is the criterion the paper calls "too restrictive" (Example 1):
    every pair of primitive actions of different top-level transactions on
    one object conflicts unless both are reads, and each such pair imposes an
    edge between the top-level transactions in execution order.  Intra-
    transaction pairs never conflict (same-process rule).
    """
    graph: DirectedGraph = DirectedGraph()
    for txn in system.tops:
        graph.add_node(txn.label)
    primitives = sorted(
        (a for a in system.all_actions() if a.is_primitive),
        key=lambda a: (a.seq, a.aid),
    )
    for i, first in enumerate(primitives):
        for second in primitives[i + 1 :]:
            if first.obj != second.obj:
                continue
            if first.top == second.top and same_process(first, second):
                continue
            if first.method in read_methods and second.method in read_methods:
                continue
            if first.top != second.top:
                graph.add_edge(first.top, second.top)
    return graph


def conventional_serializable(
    system: TransactionSystem,
    read_methods: tuple[str, ...] = ("read",),
) -> bool:
    """True iff the schedule is conventionally conflict-serializable."""
    return conventional_serialization_graph(system, read_methods).is_acyclic()


def conventional_constraints(
    system: TransactionSystem,
    read_methods: tuple[str, ...] = ("read",),
) -> set[tuple[str, str]]:
    """The ordering constraints the conventional criterion imposes."""
    return set(conventional_serialization_graph(system, read_methods).iter_edges())


def registry_with_conventional_semantics() -> CommutativityRegistry:
    """A registry under which oo-serializability degenerates to the
    conventional criterion: everything conflicts except read/read pairs.

    Used by ablation bench A1 to show that the gain of oo-serializability
    comes entirely from the semantic commutativity specifications.
    """
    from repro.core.commutativity import ReadWriteCommutativity

    return CommutativityRegistry(default=ReadWriteCommutativity())
