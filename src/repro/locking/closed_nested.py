"""Closed nested transactions (Moss).

Subtransactions acquire page locks in their own right and pass them *up* to
their parent when they finish (lock inheritance); nothing is released before
the top-level commit.  As the paper notes, "by the use of conventional
transactions and closed nested transactions only top-level-transactions are
isolated from each other" — inter-transaction concurrency is therefore the
same as flat 2PL; the nesting buys intra-transaction recovery granularity,
not concurrency.  The protocol is included as the second baseline so the
benches can demonstrate precisely that.
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class ClosedNestedLocking(LockingScheduler):
    """Moss-style closed nesting: page locks with upward inheritance."""

    name = "closed-nested"
    open_nested = False
    conservative_page_intent = True

    def __init__(self) -> None:
        super().__init__()
        #: deepest subtransaction that acquired a lock in its own right —
        #: the granularity Moss's inheritance chain actually exercises
        self._g_depth = self.metrics.gauge(
            "max_lock_nesting_depth",
            "deepest call-tree level that acquired a page lock",
        )

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        return self._is_page(invocation.obj)

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        # The lock belongs to the acquiring subtransaction; ``end_action``
        # (release=False for closed nesting) re-owns it to the parent frame,
        # realizing Moss's lock inheritance step by step up to the root.
        depth = len(node.aid)
        if depth > self._g_depth.value:
            self._g_depth.value = depth
        return node.parent if node.parent is not None else node

    def _spec_for(self, obj):
        return self._page_rw
