"""Waits-for graph deadlock detection.

Blocking schedulers record, for every waiting transaction, the set of lock
holders it waits for.  A cycle through the requester means deadlock; the
requester is chosen as the victim (simple, deterministic, and standard for
simulation studies — the victim restarts and the measurement records it).
"""

from __future__ import annotations


class WaitsForGraph:
    """``waiter -> holders`` edges with incremental cycle detection."""

    def __init__(self) -> None:
        self._waits: dict[str, set[str]] = {}

    def set_waits(self, waiter: str, holders: set[str]) -> None:
        """Replace the waiter's outgoing edges (called on each re-check)."""
        self._waits[waiter] = set(holders) - {waiter}

    def clear(self, waiter: str) -> None:
        self._waits.pop(waiter, None)

    def waiting(self, waiter: str) -> set[str]:
        return set(self._waits.get(waiter, ()))

    def find_cycle_through(self, start: str) -> list[str] | None:
        """A cycle containing ``start``, as ``[start, ..., start]``, or None.

        Only cycles through ``start`` can be new when ``start``'s edges were
        the last modification, so this is a complete check when called after
        every :meth:`set_waits`.
        """
        path = [start]
        seen = {start}

        def dfs(node: str) -> list[str] | None:
            for nxt in sorted(self._waits.get(node, ())):
                if nxt == start:
                    return path + [start]
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        return dfs(start)

    @property
    def edges(self) -> set[tuple[str, str]]:
        return {
            (waiter, holder)
            for waiter, holders in self._waits.items()
            for holder in holders
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitsForGraph({self._waits!r})"
