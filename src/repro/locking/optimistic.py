"""A hybrid optimistic certifier: read validation, write locking.

The paper's Section 6 leaves protocol design open ("the definition of
object-oriented serializability is the basis for the development of
concurrency control protocols").  Besides the pessimistic open-nested
protocol, the natural second family is *certification*.  A word on
soundness: with in-place page writes, pure commit-time validation would
allow dirty writes — an aborting transaction's compensation would clobber
updates committed in between.  The classical cures are deferred private
writes (BOCC) or, simpler and standard in modern systems, the hybrid
implemented here:

- **updates** acquire the same semantic locks as the open-nested protocol
  (owned by their caller, hierarchically retained to commit), so
  conflicting updates serialize and compensation stays sound;
- **reads** acquire no semantic locks at all — they are validated at
  commit: the committed history plus this transaction must be
  oo-serializable (Definitions 10-16 as the validator), otherwise the
  transaction aborts and restarts.

Pages keep the usual short read/write locks for burst atomicity.

Trade-off measured in bench C6: readers never block writers and vice
versa, at the price of commit-time aborts when a read turns out to have
observed an inconsistent snapshot.
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.errors import TransactionAborted, UnknownMethodError
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class OptimisticCertifier(LockingScheduler):
    """Write-locking, read-validating optimistic concurrency control."""

    name = "optimistic-oo"
    open_nested = True  # log policy: compensations, not before-images

    def __init__(self) -> None:
        super().__init__()
        self._committed: list[str] = []
        self._n_validations = self._stat_counters["validations"]
        self._n_validation_failures = self._stat_counters[
            "validation_failures"
        ]
        #: how often a failed/aborted candidate discarded the cached
        #: incremental certification fixpoint (forcing a rebuild)
        self._n_cache_resets = self._stat(
            "certification_cache_resets",
            "incremental-certification caches discarded",
        )
        #: cached incremental analysis of the committed projection; each
        #: validation *extends* it with the candidate instead of re-running
        #: Definitions 10-16 from empty (REPRO_ANALYSIS=incremental only)
        self._engine = None
        #: candidate appended to the cached engine but not yet committed
        self._pending_label: str | None = None

    # -- locking knobs ---------------------------------------------------------

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        if self._is_page(invocation.obj):
            return True
        if self.db is None or not self.db.has_object(invocation.obj):
            return True  # unknown target: be safe
        obj = self.db.get_object(invocation.obj)
        try:
            spec = type(obj).method_spec(invocation.method)
        except UnknownMethodError:
            return True  # e.g. "create": lock (trivially uncontended)
        return spec.update  # reads run lock-free and validate at commit

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        return node.parent if node.parent is not None else ctx.txn.root

    # -- validation ----------------------------------------------------------

    def prepare(self, ctx) -> None:
        """Validate against the committed history; abort on conflict.

        Runs in ``prepare`` rather than ``commit`` so the database can
        order things as write-ahead logging demands: validate, *then*
        force the commit record, then release locks in :meth:`commit`.
        """
        if self.db is not None and not ctx.runtime_data.get("compensating"):
            from repro.core.dependency import analysis_engine

            self._n_validations.value += 1
            if analysis_engine() == "incremental":
                ok = self._validate_incremental(ctx)
            else:
                ok = self._validate_batch(ctx)
            bus = self.bus
            if bus.active:
                from repro.obs.events import AnalysisVerdict

                bus.emit(
                    AnalysisVerdict(
                        source="certify",
                        ok=ok,
                        txn=ctx.txn_id,
                        tick=bus.now(),
                    )
                )
            if not ok:
                self._n_validation_failures.value += 1
                # Keep every lock: the caller aborts the transaction, and
                # the compensations must run under the still-held write
                # locks (releasing first would open a dirty-restore window
                # for concurrent writers).  ``Scheduler.abort`` releases.
                raise TransactionAborted(ctx.txn_id, "validation failed")

    def _validate_batch(self, ctx) -> bool:
        """Re-analyze committed ∪ {candidate} from scratch (legacy path)."""
        from repro.core.serializability import analyze_system
        from repro.oodb.trace import committed_projection

        labels = set(self._committed) | {ctx.txn_id}
        projection = committed_projection(self.db.system, labels)
        verdict, _ = analyze_system(projection, self.db.commutativity_registry())
        return verdict.oo_serializable

    def _validate_incremental(self, ctx) -> bool:
        """Extend the cached committed-prefix analysis with the candidate.

        The engine holds the Definition 10/11/15 fixpoint of everything
        committed so far, with every relation under an online cycle watcher;
        validating a commit costs only the candidate's own dependency
        deltas.  The engine mutates the same shared call trees the one-shot
        analysis would (re-stamping, Definition 5 extension), so decisions
        match the batch path exactly.  A failed candidate's edges cannot be
        retracted from the fixpoint, so failure discards the cache — the
        next validation rebuilds from the (valid) committed prefix.
        """
        from repro.core.dependency import IncrementalDependencyEngine
        from repro.oodb.trace import committed_projection

        candidate = None
        for txn in self.db.system.tops:
            if txn.label == ctx.txn_id:
                candidate = txn
                break
        if candidate is None:
            return True  # nothing executed: trivially serializable
        registry = self.db.commutativity_registry()
        if self._engine is None:
            projection = committed_projection(
                self.db.system, set(self._committed)
            )
            self._engine = IncrementalDependencyEngine(
                projection, registry, track_cycles=True, metrics=self.metrics
            )
            self._engine.run()
        else:
            # Objects created since the cache was built carry their own
            # specifications; the db-side cache makes this refresh cheap.
            self._engine.commutativity = registry
        self._engine.append_transaction(candidate)
        if self._engine.violated:
            self._engine = None
            self._pending_label = None
            self._n_cache_resets.value += 1
            return False
        self._pending_label = ctx.txn_id
        return True

    def commit(self, ctx) -> None:
        if self.db is not None and not ctx.runtime_data.get("compensating"):
            self._committed.append(ctx.txn_id)
            if self._pending_label == ctx.txn_id:
                self._pending_label = None  # candidate is now prefix
        super().commit(ctx)

    def abort(self, ctx) -> None:
        if self._pending_label is not None and self._pending_label == ctx.txn_id:
            # The candidate passed validation but aborts anyway (e.g. a
            # fault between prepare and commit): the cached fixpoint now
            # contains a transaction that will never commit.  Drop it.
            self._engine = None
            self._pending_label = None
            self._n_cache_resets.value += 1
        super().abort(ctx)
