"""The scheduler interface between the database and the protocols.

The database calls the scheduler at four points:

- ``begin(ctx)`` when a transaction starts;
- ``request(ctx, node, invocation)`` before every action (method sends and
  primitive page accesses alike).  The scheduler may grant immediately,
  block the calling transaction (via the simulation environment's wait
  primitive) until the conflict clears, or raise
  :class:`~repro.errors.TransactionAborted` (e.g. as a deadlock victim);
- ``end_action(ctx, node, release)`` when an action's frame completes; with
  ``release=True`` the protocol may free the locks acquired for the
  action's subtree (open nesting), with ``release=False`` they are retained
  for the enclosing transaction;
- ``commit(ctx)`` / ``abort(ctx)`` when the top-level transaction ends.

Schedulers are *passive* with respect to scheduling: blocking is delegated
to the environment object bound with ``bind_environment`` (the interleaved
executor), so the same protocol code runs under any driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from repro.core.actions import ActionNode, Invocation
from repro.obs.events import EventBus
from repro.obs.metrics import STAT_KEYS, Counter, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.context import TransactionContext
    from repro.oodb.database import ObjectDatabase

_STAT_HELP = {
    "acquired": "semantic locks granted",
    "waits": "lock requests that found a conflict and blocked",
    "deadlocks": "transactions aborted as deadlock victims",
    "wounds": "transactions wounded by a compensating requester",
    "overrides": "rollback-vs-rollback lock overrides",
    "lock_index_hits": "lock-table bulk operations answered from an index",
    "commute_cache_hits": "memoized commutativity verdicts reused",
    "validations": "optimistic certifications attempted",
    "validation_failures": "optimistic certifications that failed",
}


class WaitEnvironment(Protocol):
    """What a scheduler needs from the runtime in order to block."""

    def wait_for(self, ctx: "TransactionContext", reason: str) -> None:
        """Block ``ctx`` until :meth:`wake_all` (re-check the condition after)."""

    def wake_all(self) -> None:
        """Wake every blocked transaction so it re-checks its condition."""


class _ImmediateEnvironment:
    """Fallback environment for single-threaded use: blocking would be a
    self-deadlock, so a wait raises instead."""

    def wait_for(self, ctx: "TransactionContext", reason: str) -> None:
        from repro.errors import TransactionAborted

        raise TransactionAborted(
            ctx.txn_id,
            f"would block ({reason}) but no executor is driving concurrency",
        )

    def wake_all(self) -> None:  # pragma: no cover - nothing to wake
        pass


class Scheduler:
    """Base class: a no-op scheduler with the attachment plumbing."""

    #: human-readable protocol name (used in bench tables)
    name = "none"
    #: whether subtransaction completion may release locks / discard undo
    open_nested = False
    #: page-lock mode policy: True makes every page access of an *update*
    #: method exclusive (how conventional systems avoid upgrade deadlocks —
    #: they have no semantic knowledge to do better); False trusts the
    #: per-method ``write_intent`` declarations
    conservative_page_intent = False

    def __init__(self) -> None:
        self.db: "ObjectDatabase | None" = None
        self.env: WaitEnvironment = _ImmediateEnvironment()
        #: the owning database's event bus is adopted in :meth:`attach`;
        #: until then a private (inert) bus keeps instrumentation sites valid
        self.bus = EventBus()
        #: every scheduler owns a registry; the uniform ``stats`` counters
        #: (:data:`repro.obs.metrics.STAT_KEYS`) are registered up front so
        #: the executor's read is guaranteed and uniformly keyed — the old
        #: ``getattr(scheduler, "stats", {})`` silent-empty fallback is gone
        self.metrics = MetricsRegistry()
        self._stat_counters: dict[str, Counter] = {}
        for key in STAT_KEYS:
            self._stat(key, _STAT_HELP.get(key, ""))

    def _stat(self, key: str, help: str = "") -> Counter:
        """Register a counter that also surfaces in the ``stats`` dict."""
        counter = self.metrics.counter(f"scheduler_{key}_total", help)
        self._stat_counters[key] = counter
        return counter

    @property
    def stats(self) -> dict:
        """The legacy stats view, derived from the registry counters."""
        return {key: c.value for key, c in self._stat_counters.items()}

    # -- plumbing -------------------------------------------------------------

    def attach(self, db: "ObjectDatabase") -> None:
        """Called once by the database that owns this scheduler."""
        self.db = db
        bus = getattr(db, "bus", None)
        if bus is not None:
            self.bus = bus

    def bind_environment(self, env: WaitEnvironment) -> None:
        """Called by the executor that drives concurrent transactions."""
        self.env = env

    # -- protocol hooks ----------------------------------------------------------

    def begin(self, ctx: "TransactionContext") -> None:
        """A transaction starts."""

    def request(
        self, ctx: "TransactionContext", node: ActionNode, invocation: Invocation
    ) -> None:
        """An action is about to execute; grant, block or abort."""

    def end_action(
        self, ctx: "TransactionContext", node: ActionNode, release: bool
    ) -> None:
        """The action's frame completed (``release`` per open-nesting rules)."""

    def prepare(self, ctx: "TransactionContext") -> None:
        """Last chance to refuse the commit (certification/validation).

        Called by the database immediately before the commit record is
        made durable; :meth:`commit` must then succeed unconditionally.
        Raising :class:`~repro.errors.TransactionAborted` here turns the
        commit into an abort *before* anything durable claims otherwise —
        required for write-ahead logging, where "committed" means "the
        commit record survived" and lock release must come after it.
        """

    def commit(self, ctx: "TransactionContext") -> None:
        """The top-level transaction commits; free everything."""

    def abort(self, ctx: "TransactionContext") -> None:
        """The top-level transaction aborted; free everything."""

    def release_all_for(self, ctx: "TransactionContext", node: ActionNode) -> None:
        """Release every lock held on behalf of this action node (used when
        a subtransaction aborts and is erased)."""

    # -- introspection ---------------------------------------------------------

    def describe(self) -> str:
        return self.name


class NoConcurrencyControl(Scheduler):
    """Tracing-only mode: every request is granted, nothing is locked.

    Used to execute transactions one at a time (or under an externally
    chosen interleaving) purely to obtain call-tree traces for the
    Definition 10/11 analysis.
    """

    name = "none"


def invocation_key(invocation: Invocation) -> tuple[str, str, tuple]:
    """Hashable identity of an invocation (for lock-table bookkeeping)."""
    args: Any = invocation.args
    try:
        hash(args)
    except TypeError:
        args = repr(args)
    return (invocation.obj, invocation.method, args)
