"""The generic lock table and the shared locking-scheduler skeleton.

Locks here are *semantic* locks: a lock is an invocation (method plus
parameters, possibly with a state snapshot) held on an object, and two locks
are compatible iff the invocations commute under the object's commutativity
specification (Definition 9).  With the classical read/write specification
this degenerates to ordinary shared/exclusive page locks, so the same table
serves every protocol.

Lock *ownership* is by action node: a protocol decides which node owns each
acquired lock (the requesting action's caller for nested protocols, the
transaction root for flat 2PL), and releases by owner when frames complete.

Performance notes
-----------------

The table keeps three secondary indexes — by owner node, by transaction
context, and by requesting node — so that ``release_owned_by`` / ``reown``
/ ``release_transaction`` / ``release_requested_by`` / ``held_by`` are
O(locks touched) rather than O(table).  The indexes are identity-keyed
(owners and contexts are compared with ``is`` everywhere in this module).

Commutativity verdicts are memoized in a bounded per-table cache keyed by
the spec plus the two invocations' (object, method, args) fields.  The
cache is only
consulted for *state-free* invocation pairs: an invocation carrying a state
snapshot (escrow-style, Definition 9's "status of accessed objects") is
evaluated directly every time, so a state-dependent specification can never
return a verdict computed for a different snapshot.  Invocations are frozen
dataclasses, making state-free pairs hashable; unhashable arguments fall
back to direct evaluation as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import ActionNode, Invocation
from repro.core.commutativity import CommutativitySpec, ReadWriteCommutativity
from repro.core.identifiers import ObjectId
from repro.errors import DeadlockError
from repro.locking.deadlock import WaitsForGraph
from repro.locking.interfaces import Scheduler
from repro.obs.events import (
    DeadlockVictim,
    LockBlock,
    LockGrant,
    LockRelease,
    LockRequest,
    WoundVictim,
)
from repro.oodb.context import TransactionContext

#: default bound on memoized commutativity verdicts per table
COMMUTE_CACHE_SIZE = 4096


@dataclass
class Lock:
    """One granted semantic lock."""

    obj: ObjectId
    invocation: Invocation
    ctx: TransactionContext
    owner: ActionNode
    #: the action whose execution acquired the lock (for subtree release)
    requester: ActionNode | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Lock {self.invocation} txn={self.ctx.txn_id}>"


class LockTable:
    """Semantic locks per object, with ownership bookkeeping.

    All bulk operations go through the secondary indexes; ``index_hits``
    counts the operations that were answered from an index instead of a
    full-table scan, and ``commute_cache_hits`` counts memoized
    commutativity verdicts (both are surfaced in the owning scheduler's
    ``stats``).
    """

    def __init__(self, commute_cache_size: int = COMMUTE_CACHE_SIZE) -> None:
        self._locks: dict[ObjectId, list[Lock]] = {}
        self._by_owner: dict[ActionNode, list[Lock]] = {}
        self._by_ctx: dict[TransactionContext, list[Lock]] = {}
        self._by_requester: dict[ActionNode, list[Lock]] = {}
        self._count = 0
        self.index_hits = 0
        #: None means the cache is disabled (``commute_cache_size <= 0``)
        self._commute_cache: dict[tuple, bool] | None = (
            {} if commute_cache_size > 0 else None
        )
        self._commute_cache_size = commute_cache_size
        self.commute_cache_hits = 0
        self.commute_cache_misses = 0

    def locks_on(self, obj: ObjectId) -> list[Lock]:
        return list(self._locks.get(obj, ()))

    # -- commutativity memoization -------------------------------------------

    def _commutes(
        self, spec: CommutativitySpec, held: Invocation, requested: Invocation
    ) -> bool:
        """Memoized ``spec.commutes(held, requested)``.

        State-carrying invocations bypass the cache entirely: their verdict
        may depend on the snapshot, and a snapshot taken at a different
        request time must never answer for this one.
        """
        if held.state is not None or requested.state is not None:
            return spec.commutes(held, requested)
        cache = self._commute_cache
        if cache is None:  # cache disabled
            return spec.commutes(held, requested)
        # The key is flattened to primitives (strings and argument tuples):
        # probing with Invocation objects would pay their field-tuple
        # __hash__/__eq__ on every hit, which costs more than many specs.
        key = (
            spec,
            held.obj,
            held.method,
            held.args,
            requested.obj,
            requested.method,
            requested.args,
        )
        try:
            cached = cache.get(key)
        except TypeError:  # unhashable arguments: evaluate directly
            return spec.commutes(held, requested)
        if cached is not None:
            self.commute_cache_hits += 1
            return cached
        verdict = spec.commutes(held, requested)
        self.commute_cache_misses += 1
        if len(cache) >= self._commute_cache_size:
            # bounded: evict the oldest entry (insertion order)
            cache.pop(next(iter(cache)))
        cache[key] = verdict
        return verdict

    def conflicting(
        self,
        ctx: TransactionContext,
        invocation: Invocation,
        spec: CommutativitySpec,
    ) -> list[Lock]:
        """Locks of *other* transactions that do not commute with the request.

        Locks of the requesting transaction are always compatible: actions
        of one (sequential) transaction are one process (Definition 9).
        """
        return [
            lock
            for lock in self._locks.get(invocation.obj, ())
            if lock.ctx is not ctx
            and not self._commutes(spec, lock.invocation, invocation)
        ]

    # -- mutation -------------------------------------------------------------

    def add(self, lock: Lock) -> None:
        entries = self._locks.setdefault(lock.obj, [])
        for existing in entries:
            if (
                existing.ctx is lock.ctx
                and existing.owner is lock.owner
                and existing.invocation == lock.invocation
            ):
                return  # identical lock already held
        entries.append(lock)
        self._by_owner.setdefault(lock.owner, []).append(lock)
        self._by_ctx.setdefault(lock.ctx, []).append(lock)
        if lock.requester is not None:
            self._by_requester.setdefault(lock.requester, []).append(lock)
        self._count += 1

    def _drop(self, locks: list[Lock]) -> set[ObjectId]:
        """Remove the given locks from every structure; returns the objects
        they were held on.  O(locks touched): only the buckets the dropped
        locks actually live in are filtered."""
        dropped = {id(lock) for lock in locks}
        released: set[ObjectId] = set()
        for lock in locks:
            released.add(lock.obj)
        for obj in released:
            kept = [l for l in self._locks.get(obj, ()) if id(l) not in dropped]
            if kept:
                self._locks[obj] = kept
            else:
                self._locks.pop(obj, None)
        for index, key_of in (
            (self._by_owner, lambda lock: lock.owner),
            (self._by_ctx, lambda lock: lock.ctx),
            (self._by_requester, lambda lock: lock.requester),
        ):
            for key in {key_of(lock) for lock in locks}:
                if key is None or key not in index:
                    continue
                kept = [l for l in index[key] if id(l) not in dropped]
                if kept:
                    index[key] = kept
                else:
                    del index[key]
        self._count -= len(locks)
        return released

    def release_owned_by(self, owner: ActionNode) -> set[ObjectId]:
        """Drop every lock owned by ``owner``; returns the touched objects."""
        locks = self._by_owner.get(owner)
        if not locks:
            return set()
        self.index_hits += 1
        return self._drop(list(locks))

    def release_requested_by(self, node: ActionNode) -> set[ObjectId]:
        """Drop every lock whose acquiring action was ``node`` (an aborted
        subtransaction's own lock); returns the touched objects."""
        locks = self._by_requester.get(node)
        if not locks:
            return set()
        self.index_hits += 1
        return self._drop(list(locks))

    def release_transaction(self, ctx: TransactionContext) -> set[ObjectId]:
        locks = self._by_ctx.get(ctx)
        if not locks:
            return set()
        self.index_hits += 1
        return self._drop(list(locks))

    def reown(self, owner: ActionNode, new_owner: ActionNode) -> int:
        """Transfer ownership (closed nesting's lock inheritance)."""
        locks = self._by_owner.get(owner)
        if not locks:
            return 0
        self.index_hits += 1
        if new_owner is owner:
            return len(locks)
        del self._by_owner[owner]
        for lock in locks:
            lock.owner = new_owner
        self._by_owner.setdefault(new_owner, []).extend(locks)
        return len(locks)

    def held_by(self, ctx: TransactionContext) -> list[Lock]:
        locks = self._by_ctx.get(ctx)
        if not locks:
            return []
        self.index_hits += 1
        return list(locks)

    @property
    def lock_count(self) -> int:
        return self._count


class LockingScheduler(Scheduler):
    """Skeleton shared by all four protocols.

    Subclasses configure three knobs:

    - :meth:`_should_lock` — which objects the protocol locks at all;
    - :meth:`_owner_for` — which action node owns an acquired lock (and
      therefore when it is released);
    - :meth:`_spec_for` — the compatibility function per object.
    """

    name = "locking"

    def __init__(self) -> None:
        super().__init__()
        self.table = LockTable()
        self.waits = WaitsForGraph()
        self._page_rw = ReadWriteCommutativity()
        self._active: dict[str, TransactionContext] = {}
        # Bound references to the hot counters: incrementing ``.value`` on
        # a plain object costs the same as the dict bump it replaced.
        counters = self._stat_counters
        self._n_acquired = counters["acquired"]
        self._n_waits = counters["waits"]
        self._n_deadlocks = counters["deadlocks"]
        self._n_wounds = counters["wounds"]
        self._n_overrides = counters["overrides"]
        self._n_index_hits = counters["lock_index_hits"]
        self._n_commute_hits = counters["commute_cache_hits"]
        # Skeleton-level extras shared by every locking protocol (they are
        # what distinguishes the protocols: closed nesting inherits, open
        # nesting releases early, flat 2PL does neither).
        self._n_inherited = self._stat(
            "lock_inheritances", "locks re-owned upward when a frame ended"
        )
        self._n_early_released = self._stat(
            "early_releases", "locks freed before top-level commit"
        )
        self._h_wait_ticks = self.metrics.histogram(
            "lock_wait_ticks", "logical ticks spent blocked per granted lock"
        )
        self._g_locks_held = self.metrics.gauge(
            "locks_held", "semantic locks currently in the table"
        )

    def _sync_table_stats(self) -> None:
        """Mirror the table's fast-path counters into the registry."""
        self._n_index_hits.value = self.table.index_hits
        self._n_commute_hits.value = self.table.commute_cache_hits
        self._g_locks_held.value = self.table.lock_count

    def _env_tick(self) -> int:
        """The environment's logical clock (0 outside a simulation)."""
        return getattr(self.env, "now", 0)

    # -- protocol knobs --------------------------------------------------------

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        raise NotImplementedError

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        raise NotImplementedError

    def _spec_for(self, obj: ObjectId) -> CommutativitySpec:
        """Default: pages are read/write, everything else asks its type."""
        if self._is_page(obj):
            return self._page_rw
        if self.db is not None and self.db.has_object(obj):
            return type(self.db.get_object(obj)).commutativity
        from repro.core.commutativity import ConflictAll

        return ConflictAll()

    def _is_page(self, obj: ObjectId) -> bool:
        return self.db is not None and obj in self.db.store

    # -- Scheduler interface ------------------------------------------------------

    def begin(self, ctx) -> None:
        self._active[ctx.txn_id] = ctx

    def request(self, ctx, node, invocation) -> None:
        compensating = bool(ctx.runtime_data.get("compensating"))
        if not self._should_lock(node, invocation):
            return
        bus = self.bus
        if bus.active:
            bus.emit(
                LockRequest(
                    txn=ctx.txn_id,
                    obj=invocation.obj,
                    method=invocation.method,
                    tick=bus.now(),
                )
            )
        spec = self._spec_for(invocation.obj)
        override_other_rollbacks = False
        blocked_since: int | None = None
        while True:
            if not compensating and ctx.runtime_data.get("wounded"):
                self.waits.clear(ctx.txn_id)
                self._n_deadlocks.value += 1
                if bus.active:
                    bus.emit(
                        DeadlockVictim(txn=ctx.txn_id, tick=bus.now())
                    )
                raise DeadlockError(ctx.txn_id)
            conflicts = self.table.conflicting(ctx, invocation, spec)
            if override_other_rollbacks:
                conflicts = [
                    lock
                    for lock in conflicts
                    if not lock.ctx.runtime_data.get("compensating")
                ]
            if not conflicts:
                break
            holders = {lock.ctx.txn_id for lock in conflicts}
            ctx.stats.lock_waits += 1
            self._n_waits.value += 1
            if blocked_since is None:
                blocked_since = self._env_tick()
                if bus.active:
                    bus.emit(
                        LockBlock(
                            txn=ctx.txn_id,
                            obj=invocation.obj,
                            method=invocation.method,
                            holders=tuple(sorted(holders)),
                            tick=bus.now(),
                        )
                    )
            self.waits.set_waits(ctx.txn_id, holders)
            cycle = self.waits.find_cycle_through(ctx.txn_id)
            if cycle is not None:
                if self._resolve_deadlock(ctx, cycle, compensating):
                    override_other_rollbacks = True
                    continue
            self.env.wait_for(ctx, invocation.obj)
        self.waits.clear(ctx.txn_id)
        self.table.add(
            Lock(
                obj=invocation.obj,
                invocation=invocation,
                ctx=ctx,
                owner=self._owner_for(ctx, node),
                requester=node,
            )
        )
        self._n_acquired.value += 1
        if blocked_since is not None:
            self._h_wait_ticks.observe(self._env_tick() - blocked_since)
        if bus.active:
            waited = (
                0 if blocked_since is None
                else self._env_tick() - blocked_since
            )
            bus.emit(
                LockGrant(
                    txn=ctx.txn_id,
                    obj=invocation.obj,
                    method=invocation.method,
                    waited=waited,
                    tick=bus.now(),
                )
            )
        self._sync_table_stats()

    def _resolve_deadlock(
        self, ctx, cycle: list[str], compensating: bool
    ) -> bool:
        """Pick and kill a deadlock victim.

        A normal requester aborts itself (it is in the cycle by
        construction).  A *compensating* requester must not abort — it is
        already rolling a transaction back — so it wounds a non-compensating
        member of the cycle instead; the wounded transaction aborts at its
        next scheduling point and the compensation proceeds.

        When the entire cycle consists of rollbacks (each compensating
        transaction waiting on another's short-lived compensation locks),
        returns True: the requester may override locks held by other
        rollbacks.  This mirrors multilevel recovery practice — inverse
        operations at the record level run as system transactions whose
        mutual page conflicts are resolved below transaction locking — and
        is counted in ``stats["overrides"]``.
        """
        bus = self.bus
        if not compensating:
            self.waits.clear(ctx.txn_id)
            self._n_deadlocks.value += 1
            if bus.active:
                bus.emit(
                    DeadlockVictim(
                        txn=ctx.txn_id, cycle=tuple(cycle), tick=bus.now()
                    )
                )
            raise DeadlockError(ctx.txn_id, tuple(cycle))
        for member in cycle:
            victim = self._active.get(member)
            if (
                victim is not None
                and victim is not ctx
                and not victim.runtime_data.get("compensating")
            ):
                victim.runtime_data["wounded"] = f"wounded by {ctx.txn_id}"
                self._n_wounds.value += 1
                if bus.active:
                    bus.emit(
                        WoundVictim(
                            txn=victim.txn_id,
                            by=ctx.txn_id,
                            tick=bus.now(),
                        )
                    )
                self.env.wake_all()
                return False
        self._n_overrides.value += 1
        return True

    def end_action(self, ctx, node, release) -> None:
        if self.open_nested and release:
            released = self.table.release_owned_by(node)
            if released:
                self._n_early_released.value += len(released)
                bus = self.bus
                if bus.active:
                    bus.emit(
                        LockRelease(
                            txn=ctx.txn_id,
                            objs=tuple(sorted(released)),
                            scope="action",
                            tick=bus.now(),
                        )
                    )
                self._wake(released)
        else:
            # Locks acquired for this subtree stay with the enclosing frame.
            inherited = self.table.reown(
                node, node.parent if node.parent is not None else node
            )
            if inherited and node.parent is not None:
                self._n_inherited.value += inherited
        self._sync_table_stats()

    def commit(self, ctx) -> None:
        self._finish(ctx)

    def abort(self, ctx) -> None:
        self._finish(ctx)

    def _finish(self, ctx) -> None:
        self.waits.clear(ctx.txn_id)
        self._active.pop(ctx.txn_id, None)
        released = self.table.release_transaction(ctx)
        self._sync_table_stats()
        if released:
            bus = self.bus
            if bus.active:
                bus.emit(
                    LockRelease(
                        txn=ctx.txn_id,
                        objs=tuple(sorted(released)),
                        scope="txn",
                        tick=bus.now(),
                    )
                )
            self._wake(released)

    def release_all_for(self, ctx, node) -> None:
        """Drop locks owned *by* this node and the lock it *requested* —
        the node's subtransaction aborted and is erased."""
        released = self.table.release_owned_by(node)
        released |= self.table.release_requested_by(node)
        self._sync_table_stats()
        if released:
            bus = self.bus
            if bus.active:
                bus.emit(
                    LockRelease(
                        txn=ctx.txn_id,
                        objs=tuple(sorted(released)),
                        scope="subabort",
                        tick=bus.now(),
                    )
                )
            self._wake(released)

    def _wake(self, objects: set) -> None:
        """Wake only the transactions waiting for one of these objects."""
        wake_keys = getattr(self.env, "wake_keys", None)
        if wake_keys is not None:
            wake_keys(objects)
        else:
            self.env.wake_all()
