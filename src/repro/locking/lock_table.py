"""The generic lock table and the shared locking-scheduler skeleton.

Locks here are *semantic* locks: a lock is an invocation (method plus
parameters, possibly with a state snapshot) held on an object, and two locks
are compatible iff the invocations commute under the object's commutativity
specification (Definition 9).  With the classical read/write specification
this degenerates to ordinary shared/exclusive page locks, so the same table
serves every protocol.

Lock *ownership* is by action node: a protocol decides which node owns each
acquired lock (the requesting action's caller for nested protocols, the
transaction root for flat 2PL), and releases by owner when frames complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import ActionNode, Invocation
from repro.core.commutativity import CommutativitySpec, ReadWriteCommutativity
from repro.core.identifiers import ObjectId
from repro.errors import DeadlockError
from repro.locking.deadlock import WaitsForGraph
from repro.locking.interfaces import Scheduler
from repro.oodb.context import TransactionContext


@dataclass
class Lock:
    """One granted semantic lock."""

    obj: ObjectId
    invocation: Invocation
    ctx: TransactionContext
    owner: ActionNode
    #: the action whose execution acquired the lock (for subtree release)
    requester: ActionNode | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Lock {self.invocation} txn={self.ctx.txn_id}>"


class LockTable:
    """Semantic locks per object, with ownership bookkeeping."""

    def __init__(self) -> None:
        self._locks: dict[ObjectId, list[Lock]] = {}

    def locks_on(self, obj: ObjectId) -> list[Lock]:
        return list(self._locks.get(obj, ()))

    def conflicting(
        self,
        ctx: TransactionContext,
        invocation: Invocation,
        spec: CommutativitySpec,
    ) -> list[Lock]:
        """Locks of *other* transactions that do not commute with the request.

        Locks of the requesting transaction are always compatible: actions
        of one (sequential) transaction are one process (Definition 9).
        """
        return [
            lock
            for lock in self._locks.get(invocation.obj, ())
            if lock.ctx is not ctx
            and not spec.commutes(lock.invocation, invocation)
        ]

    def add(self, lock: Lock) -> None:
        entries = self._locks.setdefault(lock.obj, [])
        for existing in entries:
            if (
                existing.ctx is lock.ctx
                and existing.owner is lock.owner
                and existing.invocation == lock.invocation
            ):
                return  # identical lock already held
        entries.append(lock)

    def release_owned_by(self, owner: ActionNode) -> set[ObjectId]:
        """Drop every lock owned by ``owner``; returns the touched objects."""
        released: set[ObjectId] = set()
        for obj in list(self._locks):
            kept = [lock for lock in self._locks[obj] if lock.owner is not owner]
            if len(kept) != len(self._locks[obj]):
                released.add(obj)
            if kept:
                self._locks[obj] = kept
            else:
                del self._locks[obj]
        return released

    def reown(self, owner: ActionNode, new_owner: ActionNode) -> int:
        """Transfer ownership (closed nesting's lock inheritance)."""
        moved = 0
        for locks in self._locks.values():
            for lock in locks:
                if lock.owner is owner:
                    lock.owner = new_owner
                    moved += 1
        return moved

    def release_transaction(self, ctx: TransactionContext) -> set[ObjectId]:
        released: set[ObjectId] = set()
        for obj in list(self._locks):
            kept = [lock for lock in self._locks[obj] if lock.ctx is not ctx]
            if len(kept) != len(self._locks[obj]):
                released.add(obj)
            if kept:
                self._locks[obj] = kept
            else:
                del self._locks[obj]
        return released

    def held_by(self, ctx: TransactionContext) -> list[Lock]:
        return [
            lock
            for locks in self._locks.values()
            for lock in locks
            if lock.ctx is ctx
        ]

    @property
    def lock_count(self) -> int:
        return sum(len(locks) for locks in self._locks.values())


class LockingScheduler(Scheduler):
    """Skeleton shared by all four protocols.

    Subclasses configure three knobs:

    - :meth:`_should_lock` — which objects the protocol locks at all;
    - :meth:`_owner_for` — which action node owns an acquired lock (and
      therefore when it is released);
    - :meth:`_spec_for` — the compatibility function per object.
    """

    name = "locking"

    def __init__(self) -> None:
        super().__init__()
        self.table = LockTable()
        self.waits = WaitsForGraph()
        self._page_rw = ReadWriteCommutativity()
        self._active: dict[str, TransactionContext] = {}
        #: cumulative counters for the bench harness
        self.stats = {"acquired": 0, "waits": 0, "deadlocks": 0, "wounds": 0}

    # -- protocol knobs --------------------------------------------------------

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        raise NotImplementedError

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        raise NotImplementedError

    def _spec_for(self, obj: ObjectId) -> CommutativitySpec:
        """Default: pages are read/write, everything else asks its type."""
        if self._is_page(obj):
            return self._page_rw
        if self.db is not None and self.db.has_object(obj):
            return type(self.db.get_object(obj)).commutativity
        from repro.core.commutativity import ConflictAll

        return ConflictAll()

    def _is_page(self, obj: ObjectId) -> bool:
        return self.db is not None and obj in self.db.store

    # -- Scheduler interface ------------------------------------------------------

    def begin(self, ctx) -> None:
        self._active[ctx.txn_id] = ctx

    def request(self, ctx, node, invocation) -> None:
        compensating = bool(ctx.runtime_data.get("compensating"))
        if not self._should_lock(node, invocation):
            return
        spec = self._spec_for(invocation.obj)
        override_other_rollbacks = False
        while True:
            if not compensating and ctx.runtime_data.get("wounded"):
                self.waits.clear(ctx.txn_id)
                self.stats["deadlocks"] += 1
                raise DeadlockError(ctx.txn_id)
            conflicts = self.table.conflicting(ctx, invocation, spec)
            if override_other_rollbacks:
                conflicts = [
                    lock
                    for lock in conflicts
                    if not lock.ctx.runtime_data.get("compensating")
                ]
            if not conflicts:
                break
            holders = {lock.ctx.txn_id for lock in conflicts}
            ctx.stats.lock_waits += 1
            self.stats["waits"] += 1
            self.waits.set_waits(ctx.txn_id, holders)
            cycle = self.waits.find_cycle_through(ctx.txn_id)
            if cycle is not None:
                if self._resolve_deadlock(ctx, cycle, compensating):
                    override_other_rollbacks = True
                    continue
            self.env.wait_for(ctx, invocation.obj)
        self.waits.clear(ctx.txn_id)
        self.table.add(
            Lock(
                obj=invocation.obj,
                invocation=invocation,
                ctx=ctx,
                owner=self._owner_for(ctx, node),
                requester=node,
            )
        )
        self.stats["acquired"] += 1

    def _resolve_deadlock(
        self, ctx, cycle: list[str], compensating: bool
    ) -> bool:
        """Pick and kill a deadlock victim.

        A normal requester aborts itself (it is in the cycle by
        construction).  A *compensating* requester must not abort — it is
        already rolling a transaction back — so it wounds a non-compensating
        member of the cycle instead; the wounded transaction aborts at its
        next scheduling point and the compensation proceeds.

        When the entire cycle consists of rollbacks (each compensating
        transaction waiting on another's short-lived compensation locks),
        returns True: the requester may override locks held by other
        rollbacks.  This mirrors multilevel recovery practice — inverse
        operations at the record level run as system transactions whose
        mutual page conflicts are resolved below transaction locking — and
        is counted in ``stats["overrides"]``.
        """
        if not compensating:
            self.waits.clear(ctx.txn_id)
            self.stats["deadlocks"] += 1
            raise DeadlockError(ctx.txn_id, tuple(cycle))
        for member in cycle:
            victim = self._active.get(member)
            if (
                victim is not None
                and victim is not ctx
                and not victim.runtime_data.get("compensating")
            ):
                victim.runtime_data["wounded"] = f"wounded by {ctx.txn_id}"
                self.stats["wounds"] += 1
                self.env.wake_all()
                return False
        self.stats["overrides"] = self.stats.get("overrides", 0) + 1
        return True

    def end_action(self, ctx, node, release) -> None:
        if self.open_nested and release:
            released = self.table.release_owned_by(node)
            if released:
                self._wake(released)
        else:
            # Locks acquired for this subtree stay with the enclosing frame.
            self.table.reown(node, node.parent if node.parent is not None else node)

    def commit(self, ctx) -> None:
        self._finish(ctx)

    def abort(self, ctx) -> None:
        self._finish(ctx)

    def _finish(self, ctx) -> None:
        self.waits.clear(ctx.txn_id)
        self._active.pop(ctx.txn_id, None)
        released = self.table.release_transaction(ctx)
        if released:
            self._wake(released)

    def release_all_for(self, ctx, node) -> None:
        """Drop locks owned *by* this node and the lock it *requested* —
        the node's subtransaction aborted and is erased."""
        released = self.table.release_owned_by(node)
        for obj in list(self.table._locks):
            kept = [
                lock
                for lock in self.table._locks[obj]
                if lock.requester is not node
            ]
            if len(kept) != len(self.table._locks[obj]):
                released.add(obj)
                if kept:
                    self.table._locks[obj] = kept
                else:
                    del self.table._locks[obj]
        if released:
            self._wake(released)

    def _wake(self, objects: set) -> None:
        """Wake only the transactions waiting for one of these objects."""
        wake_keys = getattr(self.env, "wake_keys", None)
        if wake_keys is not None:
            wake_keys(objects)
        else:
            self.env.wake_all()
