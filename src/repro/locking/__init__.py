"""Concurrency-control schedulers.

Four protocols, all speaking the :class:`~repro.locking.interfaces.Scheduler`
interface consumed by :class:`~repro.oodb.database.ObjectDatabase`:

- :class:`~repro.locking.page_2pl.PageLocking2PL` — the conventional
  baseline: strict two-phase read/write locks on pages, held by the
  top-level transaction until commit.
- :class:`~repro.locking.closed_nested.ClosedNestedLocking` — Moss-style
  closed nesting: subtransactions acquire page locks and pass them to their
  parent at subcommit; only top-level transactions are isolated.
- :class:`~repro.locking.multilevel.MultiLevelLocking` — layered semantic
  locking: objects are statically assigned to layers; a subtransaction's
  locks are released at its end, retaining a semantic lock at the next
  layer.  Objects without a layer assignment are handled conservatively
  (locks held to top-level commit).
- :class:`~repro.locking.open_nested.OpenNestedLocking` — the paper's
  protocol: commutativity-based locks on the *general* (non-layered) call
  structure; a subtransaction's locks are released when its caller
  finishes, retaining the caller's semantic lock; aborts run compensations.
"""

from repro.locking.interfaces import NoConcurrencyControl, Scheduler
from repro.locking.lock_table import LockTable
from repro.locking.page_2pl import PageLocking2PL
from repro.locking.closed_nested import ClosedNestedLocking
from repro.locking.multilevel import MultiLevelLocking
from repro.locking.open_nested import OpenNestedLocking
from repro.locking.optimistic import OptimisticCertifier

__all__ = [
    "ClosedNestedLocking",
    "LockTable",
    "MultiLevelLocking",
    "NoConcurrencyControl",
    "OpenNestedLocking",
    "OptimisticCertifier",
    "PageLocking2PL",
    "Scheduler",
]
