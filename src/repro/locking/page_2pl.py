"""Conventional strict two-phase page locking — the paper's foil.

The protocol knows nothing about object semantics: only primitive page
accesses are locked, in classical shared/exclusive modes, and every lock is
owned by the transaction root, i.e. held until the top-level transaction
commits or aborts.  This realizes exactly the behaviour the paper criticizes
("Locking the whole object for the possibly long time a transaction may
last is not acceptable"): conflicts at the page level serialize whole
transactions even when the high-level operations commute.
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class PageLocking2PL(LockingScheduler):
    """Strict 2PL with read/write locks on pages."""

    name = "page-2pl"
    open_nested = False
    conservative_page_intent = True

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        return self._is_page(invocation.obj)

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        return ctx.txn.root

    def _spec_for(self, obj):
        return self._page_rw
