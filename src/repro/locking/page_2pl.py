"""Conventional strict two-phase page locking — the paper's foil.

The protocol knows nothing about object semantics: only primitive page
accesses are locked, in classical shared/exclusive modes, and every lock is
owned by the transaction root, i.e. held until the top-level transaction
commits or aborts.  This realizes exactly the behaviour the paper criticizes
("Locking the whole object for the possibly long time a transaction may
last is not acceptable"): conflicts at the page level serialize whole
transactions even when the high-level operations commute.
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class PageLocking2PL(LockingScheduler):
    """Strict 2PL with read/write locks on pages."""

    name = "page-2pl"
    open_nested = False
    conservative_page_intent = True

    def __init__(self) -> None:
        super().__init__()
        # Shared vs exclusive demand is the protocol's whole story; both
        # children exist up front so the export always shows both modes.
        family = self.metrics.counter(
            "page_lock_requests_total",
            "page lock requests by mode",
            labelnames=("mode",),
        )
        self._n_read_requests = family.labels(mode="read")
        self._n_write_requests = family.labels(mode="write")

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        if not self._is_page(invocation.obj):
            return False
        if invocation.method == "write":
            self._n_write_requests.value += 1
        else:
            self._n_read_requests.value += 1
        return True

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        return ctx.txn.root

    def _spec_for(self, obj):
        return self._page_rw
