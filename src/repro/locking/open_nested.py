"""Open nested object-oriented locking — the paper's protocol.

Every action (method send or page access) acquires a semantic lock on its
target object, compatible with concurrent locks iff the invocations commute
under the object's commutativity specification (Definition 9).  The lock is
owned by the action's *caller*: when the caller's frame completes and is
releasable (it registered a compensation, or did no updates), all locks it
owns are freed — only the caller's own semantic lock, held one level up,
survives.  This realizes the paper's inheritance story operationally:

- the Page4712 write locks of two commuting leaf inserts are released as
  soon as the respective ``Leaf11.insert`` finishes, so the two inserting
  transactions never block each other beyond the leaf-level critical
  section (Example 1);
- a conflicting pair (``insert``/``search`` of the same key) collides on the
  leaf's semantic lock, which is held until the inserting *transaction*
  commits — the dependency reaches the top, exactly as the analysis says it
  must.

Unlike the layered protocol, no level assignment is needed: ownership
follows the actual (arbitrary) call structure, which is what makes the
protocol work on the paper's non-layered examples.
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class OpenNestedLocking(LockingScheduler):
    """Commutativity-based locking on the general call structure."""

    name = "open-nested-oo"
    open_nested = True

    def __init__(self) -> None:
        super().__init__()
        # The protocol's defining split: semantic locks on objects (judged
        # by commutativity specs) vs plain read/write locks on pages.
        family = self.metrics.counter(
            "lock_requests_total",
            "lock requests by target kind",
            labelnames=("kind",),
        )
        self._n_semantic_requests = family.labels(kind="semantic")
        self._n_page_requests = family.labels(kind="page")

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        if self._is_page(invocation.obj):
            self._n_page_requests.value += 1
        else:
            self._n_semantic_requests.value += 1
        return True

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        return node.parent if node.parent is not None else ctx.txn.root
