"""Multi-level (layered) transaction locking — the third baseline.

The multi-layer systems the paper builds on ([1, 3, 11, 23, 24], i.e.
Weikum-style multilevel transactions) assign every object to a *level*; an
operation at level ``i`` runs as a subtransaction that acquires semantic
locks on level-``i`` objects and releases them when it finishes, leaving its
parent's level-``i+1`` lock in place.

The paper's point is that object-oriented systems are *not* layered: call
depths differ per path and an operation can reach objects of any level.  A
layered protocol must handle such accesses conservatively.  Here, a lock is
released early only when the call structure is *level-consistent*: the
locked object's level is exactly one below its caller's object level.
Accesses that skip levels, stay within a level, or touch unassigned objects
keep their locks until top-level commit — which is how this protocol loses
to the open-nested one on the paper's non-layered workloads (B-link
rearrangement, direct ``Enc``-to-``Item`` calls).
"""

from __future__ import annotations

from repro.core.actions import ActionNode, Invocation
from repro.core.identifiers import ObjectId, original_object_id
from repro.locking.lock_table import LockingScheduler
from repro.oodb.context import TransactionContext


class MultiLevelLocking(LockingScheduler):
    """Layered semantic locking with conservative fallback.

    ``layers`` maps object-id prefixes to levels (larger = higher); e.g. the
    encyclopedia assignment is ``{"Enc": 3, "BpTree": 2, "LinkedList": 2,
    "Leaf": 1, "Node": 1, "Item": 1, "Page": 0}``.
    """

    name = "multilevel"
    open_nested = True

    def __init__(self, layers: dict[str, int]):
        super().__init__()
        self.layers = dict(sorted(layers.items(), key=lambda kv: -len(kv[0])))
        # How often the layered protocol can actually use its layers: a
        # level-consistent access releases early, everything else falls
        # back to commit-duration holds — the measured cost of forcing a
        # non-layered call structure into a layered protocol.
        self._n_level_consistent = self._stat(
            "level_consistent_acquires",
            "lock acquisitions on the level directly below the caller",
        )
        self._n_level_conservative = self._stat(
            "level_conservative_acquires",
            "acquisitions held to commit (level-skipping or unassigned)",
        )

    def level_of(self, obj: ObjectId) -> int | None:
        base = original_object_id(obj)
        for prefix, level in self.layers.items():
            if base.startswith(prefix):
                return level
        return None

    def _should_lock(self, node: ActionNode, invocation: Invocation) -> bool:
        return True  # lock every access; the owner decides retention

    def _owner_for(self, ctx: TransactionContext, node: ActionNode) -> ActionNode:
        parent = node.parent
        if parent is None:
            return ctx.txn.root
        own_level = self.level_of(node.obj)
        parent_level = (
            None if parent.parent is None else self.level_of(parent.obj)
        )
        if own_level is None:
            # unassigned object: hold to commit
            self._n_level_conservative.value += 1
            return ctx.txn.root
        if parent.parent is None:
            # called directly by the transaction: top-of-hierarchy lock,
            # held by the transaction until commit (standard multilevel)
            return ctx.txn.root
        if parent_level is not None and parent_level == own_level + 1:
            # level-consistent: released when the caller ends
            self._n_level_consistent.value += 1
            return parent
        # level-skipping/cyclic: conservative
        self._n_level_conservative.value += 1
        return ctx.txn.root
