"""Example 4 / Figures 7-8: four top-level transactions on the encyclopedia.

The paper's final example combines Example 1 with item-level accesses:

- **T1** inserts the item *DBMS*: index insert through ``BpTree``/``Leaf11``
  down to ``Page4712``, list insert on ``LinkedList``, and the initial write
  of ``Item8``.
- **T2** inserts the item *DBS* the same way (creating ``Item9``) **and then
  changes the previously inserted item DBMS** (``Item8``), reaching it via an
  index search.
- **T3** searches for *DBS* through the index.
- **T4** reads the items sequentially (``readSeq`` through ``LinkedList``).

Figure 8 tabulates, per object, the dependencies the analysis must produce;
``figure8_rows`` renders our computed equivalent.  The page-level
interleaving follows Example 1 (T1's write before T2's read, T2's write
before T3's read) and T4 scans after T1's item write but before T2's change,
so the sequential read observes a consistent snapshot ordered between them.

Noteworthy (Section 5): at ``Item8`` the three callers are actions on *two
different* objects (``Enc`` for T1/T2, ``LinkedList`` for T4), so part of the
dependency information can only be recorded in the **added** action
dependency relations of Definition 15 — this is the example the paper uses
to motivate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.schedule import ObjectSchedule
from repro.core.transactions import TransactionSystem
from repro.scenarios.specs import encyclopedia_registry


@dataclass
class Example4System:
    system: TransactionSystem
    registry: CommutativityRegistry
    #: named actions useful for assertions, keyed by a short handle
    named: dict[str, ActionNode] = field(default_factory=dict)


def example4_system(*, anomalous: bool = False) -> Example4System:
    """Build the Figures 7-8 transaction system (unextended, unanalyzed).

    With ``anomalous=True`` the interleaving lets T4's sequential read scan
    the list *after* T2's insert but read ``Item8`` *before* T2's change —
    the cross-object anomaly discussed in DESIGN.md, which the literal
    Definition 15/16 reading misses and the cross-object closure rejects.
    The default interleaving is consistent (T4 scans after T2's change) and
    oo-serializable, matching the figures.
    """
    system = TransactionSystem()
    named: dict[str, ActionNode] = {}

    # -- T1: insert item DBMS -------------------------------------------------
    t1 = system.transaction("T1")
    enc_ins1 = t1.call("Enc", "insertItem", ("DBMS",))
    named["T1.Enc.insertItem"] = enc_ins1
    tree_ins1 = enc_ins1.call("BpTree", "insert", ("DBMS",))
    leaf_ins1 = tree_ins1.call("Leaf11", "insert", ("DBMS",))
    named["T1.Leaf11.insert"] = leaf_ins1
    p1r = leaf_ins1.call("Page4712", "read")
    p1w = leaf_ins1.call("Page4712", "write")
    list_ins1 = enc_ins1.call("LinkedList", "insert", ("DBMS",))
    named["T1.LinkedList.insert"] = list_ins1
    lp1r = list_ins1.call("Page4801", "read")
    lp1w = list_ins1.call("Page4801", "write")
    item_w1 = enc_ins1.call("Item8", "write", ("DBMS",))
    named["T1.Item8.write"] = item_w1
    ip1w = item_w1.call("Page4901", "write")

    # -- T2: insert item DBS, then change item DBMS ---------------------------
    t2 = system.transaction("T2")
    enc_ins2 = t2.call("Enc", "insertItem", ("DBS",))
    named["T2.Enc.insertItem"] = enc_ins2
    tree_ins2 = enc_ins2.call("BpTree", "insert", ("DBS",))
    leaf_ins2 = tree_ins2.call("Leaf11", "insert", ("DBS",))
    named["T2.Leaf11.insert"] = leaf_ins2
    p2r = leaf_ins2.call("Page4712", "read")
    p2w = leaf_ins2.call("Page4712", "write")
    list_ins2 = enc_ins2.call("LinkedList", "insert", ("DBS",))
    lp2r = list_ins2.call("Page4801", "read")
    lp2w = list_ins2.call("Page4801", "write")
    item_w2 = enc_ins2.call("Item9", "write", ("DBS",))
    ip2w = item_w2.call("Page4902", "write")

    enc_chg2 = t2.call("Enc", "changeItem", ("DBMS",))
    named["T2.Enc.changeItem"] = enc_chg2
    tree_srch2 = enc_chg2.call("BpTree", "search", ("DBMS",))
    leaf_srch2 = tree_srch2.call("Leaf11", "search", ("DBMS",))
    named["T2.Leaf11.search"] = leaf_srch2
    p2r2 = leaf_srch2.call("Page4712", "read")
    item_c2 = enc_chg2.call("Item8", "change", ("DBMS",))
    named["T2.Item8.change"] = item_c2
    ip1r2 = item_c2.call("Page4901", "read")
    ip1w2 = item_c2.call("Page4901", "write")

    # -- T3: search DBS --------------------------------------------------------
    t3 = system.transaction("T3")
    enc_srch3 = t3.call("Enc", "search", ("DBS",))
    tree_srch3 = enc_srch3.call("BpTree", "search", ("DBS",))
    leaf_srch3 = tree_srch3.call("Leaf11", "search", ("DBS",))
    named["T3.Leaf11.search"] = leaf_srch3
    p3r = leaf_srch3.call("Page4712", "read")

    # -- T4: read the items sequentially ---------------------------------------
    t4 = system.transaction("T4")
    enc_seq4 = t4.call("Enc", "readSeq")
    named["T4.Enc.readSeq"] = enc_seq4
    list_seq4 = enc_seq4.call("LinkedList", "readSeq")
    named["T4.LinkedList.readSeq"] = list_seq4
    lp4r = list_seq4.call("Page4801", "read")
    item_r4 = list_seq4.call("Item8", "read")
    named["T4.Item8.read"] = item_r4
    ip4r = item_r4.call("Page4901", "read")

    # -- the interleaving -------------------------------------------------------
    # Index page: T1 write < T2 read (Example 1), T2 write < T3 read.
    # List page: T1 < T2 < T4.  Item8's page: T1 write < T2 change < T4 read
    # in the consistent variant; the anomalous variant lets T4 read Item8
    # *before* T2's change while scanning the list *after* T2's insert.
    prefix = [
        p1r, p1w,  # T1 on Page4712
        lp1r, lp1w,  # T1 on Page4801
        ip1w,  # T1 writes Item8's page
        p2r, p2w,  # T2 insert on Page4712
        lp2r, lp2w,  # T2 on Page4801
        ip2w,  # T2 writes Item9's page
        p3r,  # T3 reads Page4712
    ]
    if anomalous:
        suffix = [lp4r, ip4r, p2r2, ip1r2, ip1w2]
    else:
        suffix = [p2r2, ip1r2, ip1w2, lp4r, ip4r]
    system.order_primitives(prefix + suffix)

    return Example4System(system=system, registry=encyclopedia_registry(), named=named)


def figure8_rows(schedules: dict[str, ObjectSchedule]) -> list[tuple[str, str]]:
    """Render the Figure 8 table: object -> its schedule dependencies.

    Each row lists the transaction dependencies recorded at the object
    (Figure 8's "schedule dependencies" column) followed by the added
    dependencies of Definition 15, marked ``[added]``.
    """
    rows: list[tuple[str, str]] = []
    for oid in sorted(schedules):
        sched = schedules[oid]
        entries = [
            f"{src.label} -> {dst.label}"
            for src, dst in sorted(
                sched.txn_dep.edges, key=lambda e: (e[0].aid, e[1].aid)
            )
        ]
        entries.extend(
            f"{src.label} -> {dst.label} [added]"
            for src, dst in sorted(
                sched.added_dep.edges, key=lambda e: (e[0].aid, e[1].aid)
            )
        )
        rows.append((oid, "; ".join(entries) if entries else "(none)"))
    return rows
