"""Commutativity specifications of the encyclopedia application (Figure 2).

The encyclopedia ``Enc`` consists of a ``LinkedList`` of items indexed by a
``BpTree``; keys live on pages (Figure 2).  The specifications below encode
the semantics the paper uses in Examples 1 and 4:

- **Pages** have classical read/write semantics — only reads commute.
- **Leaves, nodes and the B+ tree** have key-based semantics: operations on
  *different* keys commute, operations touching the *same* key conflict
  unless both are searches.  "Every node ... contains many keys (roughly up
  to 500).  Operations on these keys will often conflict at the page level
  but commute at the node level."
- **Items** are read/changed as a whole: read/read commutes, anything
  involving a change conflicts.
- **LinkedList**: inserting two items commutes (the encyclopedia is a keyed
  collection; physical list order is not observable through the API), but an
  insert does not commute with a sequential read of all items (the phantom).
- **Enc** inherits the key-based semantics for keyed operations and treats
  ``readSeq`` as conflicting with every update.
"""

from __future__ import annotations

from repro.core.actions import Invocation
from repro.core.commutativity import (
    CommutativityRegistry,
    MatrixCommutativity,
    ReadWriteCommutativity,
)


def _different_first_arg(a: Invocation, b: Invocation) -> bool:
    """Operations addressing different keys commute."""
    return bool(a.args) and bool(b.args) and a.args[0] != b.args[0]


def key_based_spec() -> MatrixCommutativity:
    """The semantics of keyed containers (B+ tree, nodes, leaves, Enc).

    ``insert``/``delete``/``change`` on different keys commute; ``search`` on
    a key commutes with updates of other keys; two searches always commute.
    """
    updates = ("insert", "delete", "change")
    matrix: dict[tuple[str, str], object] = {("search", "search"): True}
    for update in updates:
        matrix[(update, "search")] = _different_first_arg
        for other in updates:
            matrix[(update, other)] = _different_first_arg
    return MatrixCommutativity(matrix)  # type: ignore[arg-type]


def enc_spec() -> MatrixCommutativity:
    """The encyclopedia object: keyed operations plus the sequential read."""
    matrix: dict[tuple[str, str], object] = {
        ("search", "search"): True,
        ("readSeq", "readSeq"): True,
        ("readSeq", "search"): True,
    }
    for update in ("insertItem", "deleteItem", "changeItem"):
        matrix[(update, "search")] = _different_first_arg
        matrix[(update, "readSeq")] = False  # phantom: update vs full scan
        for other in ("insertItem", "deleteItem", "changeItem"):
            matrix[(update, other)] = _different_first_arg
    return MatrixCommutativity(matrix)  # type: ignore[arg-type]


def linked_list_spec() -> MatrixCommutativity:
    """The item list: inserts commute with each other, not with readSeq."""
    return MatrixCommutativity(
        {
            ("insert", "insert"): True,
            ("insert", "readSeq"): False,
            ("insert", "remove"): _different_first_arg,  # type: ignore[dict-item]
            ("readSeq", "readSeq"): True,
            ("readSeq", "remove"): False,
            ("remove", "remove"): _different_first_arg,  # type: ignore[dict-item]
        }
    )


def item_spec() -> MatrixCommutativity:
    """Encyclopedia items: whole-object read/change semantics."""
    return MatrixCommutativity(
        {
            ("read", "read"): True,
            ("change", "read"): False,
            ("change", "change"): False,
            ("read", "write"): False,
            ("change", "write"): False,
            ("write", "write"): False,
        }
    )


def encyclopedia_registry() -> CommutativityRegistry:
    """The full registry for the encyclopedia application of Figure 2."""
    registry = CommutativityRegistry()
    registry.register_prefix("Page", ReadWriteCommutativity())
    registry.register_prefix("Leaf", key_based_spec())
    registry.register_prefix("Node", key_based_spec())
    registry.register("BpTree", key_based_spec())
    registry.register_prefix("Item", item_spec())
    registry.register("LinkedList", linked_list_spec())
    registry.register("Enc", enc_spec())
    return registry
