"""The paper's worked examples as reusable scenario constructors.

Each module rebuilds one of the paper's hand-drawn figures as an executable
transaction system; tests assert the paper's stated outcomes and the
``benchmarks/`` harness prints the corresponding tables.

- :mod:`repro.scenarios.specs` — the commutativity specifications of the
  encyclopedia application (pages, leaves, B+ tree, items, linked list, Enc).
- :mod:`repro.scenarios.example1` — Example 1 / Figure 4 (T1-T2 commuting
  inserts, T3-T4 same-key conflict).
- :mod:`repro.scenarios.example2` — Example 2 / Figure 5 (a transaction tree
  with action sets and precedence).
- :mod:`repro.scenarios.example3` — Example 3 / Figure 6 (the B-link split
  call cycle and the Definition 5 extension).
- :mod:`repro.scenarios.example4` — Example 4 / Figures 7-8 (four top-level
  transactions and the per-object dependency table).
"""

from repro.scenarios.specs import encyclopedia_registry
from repro.scenarios.example1 import (
    scenario_commuting_inserts,
    scenario_same_key_conflict,
)
from repro.scenarios.example2 import figure5_tree
from repro.scenarios.example3 import blink_split_system
from repro.scenarios.example4 import example4_system

__all__ = [
    "blink_split_system",
    "encyclopedia_registry",
    "example4_system",
    "figure5_tree",
    "scenario_commuting_inserts",
    "scenario_same_key_conflict",
]
