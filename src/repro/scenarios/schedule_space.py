"""Small, fully enumerable transaction sets for the schedule-space census.

Where does oo-serializability admit *more* schedules?  Not by relaxing
per-object atomicity — two leaf inserts racing on one page stay forbidden —
but by dropping the requirement of one *global* page-level order: when the
callers commute, different objects may serialize the transactions in
different orders.  The minimal witness needs two transactions crossing two
pages:

- ``two_leaf_commuting``: T1 inserts key *a* into leaf L1 then key *c* into
  leaf L2; T2 inserts *d* into L2 then *b* into L1.  All keys differ, so
  every leaf-level pair commutes: any schedule whose page accesses are
  atomic per insert is oo-serializable, even when P1 orders T1 before T2
  and P2 orders T2 before T1 — which the conventional criterion rejects.

- ``two_leaf_same_key``: the same shape, but T2 touches the *same* keys as
  T1 — leaf-level conflicts make the two criteria coincide.
"""

from __future__ import annotations

from repro.core.commutativity import CommutativityRegistry
from repro.core.transactions import TransactionSystem
from repro.scenarios.specs import encyclopedia_registry


def _two_leaf_system(
    keys_t1: tuple[str, str], keys_t2: tuple[str, str]
) -> tuple[TransactionSystem, CommutativityRegistry]:
    system = TransactionSystem()
    t1 = system.transaction("T1")
    first = t1.call("BpTree", "insert", (keys_t1[0],))
    leaf_a = first.call("Leaf11", "insert", (keys_t1[0],))
    leaf_a.call("Page4712", "write")
    second = t1.call("BpTree", "insert", (keys_t1[1],))
    leaf_c = second.call("Leaf12", "insert", (keys_t1[1],))
    leaf_c.call("Page4713", "write")

    t2 = system.transaction("T2")
    third = t2.call("BpTree", "insert", (keys_t2[1],))
    leaf_d = third.call("Leaf12", "insert", (keys_t2[1],))
    leaf_d.call("Page4713", "write")
    fourth = t2.call("BpTree", "insert", (keys_t2[0],))
    leaf_b = fourth.call("Leaf11", "insert", (keys_t2[0],))
    leaf_b.call("Page4712", "write")
    return system, encyclopedia_registry()


def two_leaf_commuting() -> tuple[TransactionSystem, CommutativityRegistry]:
    """Distinct keys everywhere: the oo-only class is non-empty."""
    return _two_leaf_system(("a", "c"), ("b", "d"))


def two_leaf_same_key() -> tuple[TransactionSystem, CommutativityRegistry]:
    """T2 reuses T1's keys: semantic conflicts everywhere."""
    return _two_leaf_system(("a", "c"), ("a", "c"))


def three_txn_ring() -> tuple[TransactionSystem, CommutativityRegistry]:
    """Three transactions crossing three leaves in a ring (T1: L1,L2;
    T2: L2,L3; T3: L3,L1), all keys distinct — the schedule space is 90
    interleavings and the conventional criterion rejects every ring-ordered
    one."""
    system = TransactionSystem()
    ring = (("Leaf11", "Page4712"), ("Leaf12", "Page4713"), ("Leaf13", "Page4714"))
    for index in range(3):
        txn = system.transaction(f"T{index + 1}")
        for step in range(2):
            leaf, page = ring[(index + step) % 3]
            key = f"k{index}{step}"
            tree = txn.call("BpTree", "insert", (key,))
            leaf_action = tree.call(leaf, "insert", (key,))
            leaf_action.call(page, "write")
    return system, encyclopedia_registry()


def single_leaf_commuting() -> tuple[TransactionSystem, CommutativityRegistry]:
    """Example 1's shape (one page): the criteria coincide — atomicity of
    the leaf subtransactions is *not* relaxed by oo-serializability."""
    system = TransactionSystem()
    for label, key in (("T1", "DBMS"), ("T2", "DBS")):
        txn = system.transaction(label)
        tree = txn.call("BpTree", "insert", (key,))
        leaf = tree.call("Leaf11", "insert", (key,))
        leaf.call("Page4712", "read")
        leaf.call("Page4712", "write")
    return system, encyclopedia_registry()
