"""Example 2 / Figure 5: the tree of an oo-transaction.

The figure shows a transaction ``t1`` whose root action calls two actions
``a_11`` (on O1) and ``a_12`` (on O2); ``a_11`` calls three further actions
and ``a_12`` two, with the left-to-right order of arcs giving the precedence
within each action set.  The leaves are the primitive actions.

We rebuild the tree with the same shape so that tests can assert the
Definition 2/3 structure: action sets, precedence, primitivity, and the
conformity requirement of Definition 7 (``a_112`` must run before ``a_121``
whenever an ancestor precedence demands it — here the branches are ordered
``a_11`` before ``a_12``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import ActionNode
from repro.core.transactions import OOTransaction, TransactionSystem


@dataclass
class Figure5Tree:
    system: TransactionSystem
    transaction: OOTransaction
    a11: ActionNode
    a12: ActionNode
    a111: ActionNode
    a112: ActionNode
    a113: ActionNode
    a121: ActionNode
    a122: ActionNode

    @property
    def leaves(self) -> list[ActionNode]:
        return [self.a111, self.a112, self.a113, self.a121, self.a122]


def figure5_tree(*, parallel_branches: bool = False) -> Figure5Tree:
    """Build the Figure 5 transaction tree.

    With ``parallel_branches=True`` the two subtrees under the root are left
    unordered — two *processes* of one transaction in the sense of
    Definition 9 — which is what Example 2's partial (not total) precedence
    permits.
    """
    system = TransactionSystem()
    t1 = system.transaction("t1")
    a11 = t1.call("O1", "a11")
    a12 = t1.call("O2", "a12", parallel=parallel_branches)
    a111 = a11.call("P1", "a111")
    a112 = a11.call("P2", "a112")
    a113 = a11.call("P3", "a113")
    a121 = a12.call("P4", "a121")
    a122 = a12.call("P5", "a122")
    return Figure5Tree(
        system=system,
        transaction=t1,
        a11=a11,
        a12=a12,
        a111=a111,
        a112=a112,
        a113=a113,
        a121=a121,
        a122=a122,
    )
