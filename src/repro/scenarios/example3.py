"""Example 3 / Figure 6: the B-link split call cycle and the extension.

Section 2 (last bullet) describes the non-layered situation: an insert into a
full leaf splits the leaf and then *rearranges the father node* — which the
insert reached through that very node::

    Node6.insert() --> Leaf11.insert() --> { Leaf12.insert(), Node6.rearrange() }

``Node6.insert`` transitively calls ``Node6.rearrange`` and both access
``Node6``: a call cycle.  Definition 5 breaks it by moving the deeper action
(``rearrange``) to a virtual object ``Node6′`` and virtually duplicating
every other action on ``Node6`` so that dependencies recorded at ``Node6′``
are inherited back to ``Node6``.

A second transaction T2 searching through ``Node6`` is included so the
duplication is observable (Example 3 duplicates the bystander ``b_22``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.transactions import TransactionSystem
from repro.scenarios.specs import encyclopedia_registry


@dataclass
class BlinkSplitScenario:
    system: TransactionSystem
    registry: CommutativityRegistry
    node_insert: ActionNode  # Node6.insert (the "transaction" side of the cycle)
    rearrange: ActionNode  # Node6.rearrange (the action moved to Node6')
    bystander: ActionNode  # T2's Node6.search (gets a virtual duplicate)


def blink_split_system(split_key: str = "DBS", probe_key: str = "XML") -> BlinkSplitScenario:
    """Build the Figure 6 system (unextended; callers apply Definition 5)."""
    system = TransactionSystem()

    t1 = system.transaction("T1")
    tree_insert = t1.call("BpTree", "insert", (split_key,))
    node_insert = tree_insert.call("Node6", "insert", (split_key,))
    leaf_insert = node_insert.call("Leaf11", "insert", (split_key,))
    leaf_insert.call("Page4712", "read")
    leaf_insert.call("Page4712", "write")
    # The leaf is full: split into Leaf12, then rearrange the father.
    new_leaf = leaf_insert.call("Leaf12", "insert", (split_key,))
    new_leaf.call("Page4713", "write")
    rearrange = leaf_insert.call("Node6", "rearrange", (split_key,))
    rearrange.call("Page4710", "read")
    rearrange.call("Page4710", "write")

    t2 = system.transaction("T2")
    tree_search = t2.call("BpTree", "search", (probe_key,))
    bystander = tree_search.call("Node6", "search", (probe_key,))
    bystander.call("Page4710", "read")

    return BlinkSplitScenario(
        system=system,
        registry=encyclopedia_registry(),
        node_insert=node_insert,
        rearrange=rearrange,
        bystander=bystander,
    )
