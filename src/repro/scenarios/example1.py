"""Example 1 / Figure 4: dependency inheritance on the B+ tree.

Two scenarios, both starting from the same page-level interleaving
(*"Assume, Page4712.write by T1 is executed before Page4712.read by T2"*):

- :func:`scenario_commuting_inserts` — T1 inserts DBMS, T2 inserts DBS.
  The keys are different, so the leaf-level inserts commute; the page-level
  dependency is remembered only until the leaf subtransactions end and "can
  be neglected at BpTree and at Enc" — oo-serializability imposes **no**
  top-level ordering constraint, the conventional criterion imposes one.

- :func:`scenario_same_key_conflict` — T3 inserts DBS, T4 searches DBS.
  The actions access the same key, conflict at the leaf and at the tree, and
  the dependency is inherited all the way to the top-level transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import ActionNode
from repro.core.commutativity import CommutativityRegistry
from repro.core.transactions import TransactionSystem
from repro.scenarios.specs import encyclopedia_registry


@dataclass
class Example1Scenario:
    """A built Example 1 scenario, ready for analysis."""

    system: TransactionSystem
    registry: CommutativityRegistry
    #: the two leaf-level subtransactions (the callers at Page4712)
    leaf_actions: tuple[ActionNode, ActionNode]
    description: str


def _insert_path(txn, key: str) -> tuple[ActionNode, ActionNode, ActionNode]:
    """T --> BpTree.insert(key) --> Leaf11.insert(key) --> Page4712 read+write."""
    tree_action = txn.call("BpTree", "insert", (key,))
    leaf_action = tree_action.call("Leaf11", "insert", (key,))
    page_read = leaf_action.call("Page4712", "read")
    page_write = leaf_action.call("Page4712", "write")
    return leaf_action, page_read, page_write


def _search_path(txn, key: str) -> tuple[ActionNode, ActionNode]:
    """T --> BpTree.search(key) --> Leaf11.search(key) --> Page4712 read."""
    tree_action = txn.call("BpTree", "search", (key,))
    leaf_action = tree_action.call("Leaf11", "search", (key,))
    page_read = leaf_action.call("Page4712", "read")
    return leaf_action, page_read


def scenario_commuting_inserts() -> Example1Scenario:
    """T1 inserts DBMS, T2 inserts DBS; page ops interleave write-then-read."""
    system = TransactionSystem()
    t1 = system.transaction("T1")
    leaf1, read1, write1 = _insert_path(t1, "DBMS")
    t2 = system.transaction("T2")
    leaf2, read2, write2 = _insert_path(t2, "DBS")
    # Figure 4: T1's page write executes before T2's page read.
    system.order_primitives([read1, write1, read2, write2])
    return Example1Scenario(
        system=system,
        registry=encyclopedia_registry(),
        leaf_actions=(leaf1, leaf2),
        description=(
            "T1 insert(DBMS), T2 insert(DBS): different keys commute at the "
            "leaf; the Page4712 dependency stops there"
        ),
    )


def scenario_same_key_conflict() -> Example1Scenario:
    """T3 inserts DBS, T4 searches DBS; the same key conflicts at every level."""
    system = TransactionSystem()
    t3 = system.transaction("T3")
    leaf3, read3, write3 = _insert_path(t3, "DBS")
    t4 = system.transaction("T4")
    leaf4, read4 = _search_path(t4, "DBS")
    # Figure 4: T3's page write executes before T4's page read.
    system.order_primitives([read3, write3, read4])
    return Example1Scenario(
        system=system,
        registry=encyclopedia_registry(),
        leaf_actions=(leaf3, leaf4),
        description=(
            "T3 insert(DBS), T4 search(DBS): the same key conflicts at the "
            "leaf and the tree; the dependency reaches the top level"
        ),
    )
