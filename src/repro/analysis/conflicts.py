"""Conflict statistics: the quantitative form of the paper's claim.

Given an *executed* trace (a transaction system plus its commutativity
registry), compare what the two correctness criteria demand:

- the **conventional** criterion counts every cross-transaction pair of
  primitive actions on one object that is not read/read as a conflict, and
  each such pair as an ordering constraint between the top-level
  transactions;
- **oo-serializability** runs the Definition 10/11 inheritance and counts
  only the constraints that survive to the top level (dependencies that
  stop at a commuting level are dropped).

``conflict_rate_reduction`` is the paper's "lower rate of conflicting
accesses" in one number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import same_process
from repro.core.commutativity import CommutativityRegistry
from repro.core.serializability import analyze_system, conventional_constraints
from repro.core.transactions import TransactionSystem


@dataclass
class ConflictStatistics:
    """Side-by-side conflict accounting for one executed schedule."""

    conventional_pairs: int  # conflicting primitive pairs (page level)
    conventional_top_constraints: int
    oo_conflicting_pairs: int  # semantically conflicting pairs at any object
    oo_top_constraints: int
    conventional_serializable: bool
    oo_serializable: bool

    @property
    def constraint_reduction(self) -> float:
        """Fraction of top-level ordering constraints that oo-serializability
        discards relative to the conventional criterion (0..1)."""
        if self.conventional_top_constraints == 0:
            return 0.0
        return 1.0 - (
            self.oo_top_constraints / self.conventional_top_constraints
        )

    def row(self) -> list:
        return [
            self.conventional_pairs,
            self.conventional_top_constraints,
            self.oo_conflicting_pairs,
            self.oo_top_constraints,
            f"{100 * self.constraint_reduction:.0f}%",
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "page-conflicts",
            "conv-constraints",
            "oo-conflicts",
            "oo-constraints",
            "reduction",
        ]


def count_conventional_pairs(
    system: TransactionSystem,
    read_methods: tuple[str, ...] = ("read",),
    tops: set[str] | None = None,
) -> int:
    """Cross-transaction conflicting primitive pairs (page-level R/W),
    optionally restricted to the given top-level transactions."""
    primitives = sorted(
        (
            a
            for a in system.all_actions()
            if a.is_primitive and (tops is None or a.top in tops)
        ),
        key=lambda a: (a.seq, a.aid),
    )
    by_object: dict[str, list] = {}
    for action in primitives:
        by_object.setdefault(action.obj, []).append(action)
    count = 0
    for actions in by_object.values():
        for i, first in enumerate(actions):
            for second in actions[i + 1 :]:
                if first.top == second.top and same_process(first, second):
                    continue
                if first.method in read_methods and second.method in read_methods:
                    continue
                count += 1
    return count


def count_oo_conflicting_pairs(schedules, tops: set[str] | None = None) -> int:
    """Semantically conflicting dependency edges recorded at any object."""
    total = 0
    for sched in schedules.values():
        for src, dst in sched.txn_dep.edges:
            if tops is None or (src.top in tops and dst.top in tops):
                total += 1
    return total


def conflict_statistics(
    system: TransactionSystem,
    registry: CommutativityRegistry,
    *,
    committed_only: set[str] | None = None,
) -> ConflictStatistics:
    """Compute the side-by-side statistics for one executed trace.

    ``committed_only`` restricts the conventional/oo comparison to the given
    top-level transaction labels (aborted attempts are excluded by passing
    an :class:`ExecutionResult`'s ``committed_labels``).  Restriction is by
    *ignoring* other transactions' contributions, not by rebuilding the
    trace.
    """
    from repro.core.serializability import conventional_serializable

    verdict, schedules = analyze_system(system, registry)
    conv_constraints = conventional_constraints(system)
    oo_constraints = verdict.top_order_constraints
    if committed_only is not None:
        conv_constraints = {
            pair
            for pair in conv_constraints
            if pair[0] in committed_only and pair[1] in committed_only
        }
        oo_constraints = {
            pair
            for pair in oo_constraints
            if pair[0] in committed_only and pair[1] in committed_only
        }
    return ConflictStatistics(
        conventional_pairs=count_conventional_pairs(system, tops=committed_only),
        conventional_top_constraints=len(conv_constraints),
        oo_conflicting_pairs=count_oo_conflicting_pairs(
            schedules, tops=committed_only
        ),
        oo_top_constraints=len(oo_constraints),
        conventional_serializable=conventional_serializable(system),
        oo_serializable=verdict.oo_serializable,
    )
