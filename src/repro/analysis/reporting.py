"""Fixed-width table rendering — the output format of every bench.

The benches print the same kind of per-object/per-protocol tables the paper
draws by hand (Figures 4, 7, 8), so the rendering is deliberately plain:
monospace columns, a header rule, no dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, "x"]], title="demo"))
    demo
    a  b
    -  -
    1  x
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, object]], title: str = "") -> str:
    """Render key/value pairs, one per line."""
    lines = [title] if title else []
    items = list(pairs)
    width = max((len(k) for k, _ in items), default=0)
    for key, value in items:
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
