"""Cross-protocol comparison: one workload, four schedulers, many seeds.

This is the engine behind the claim benches (C2, C3): it rebuilds the same
(seeded) workload on a fresh database per protocol and per seed, runs the
interleaved executor, and aggregates :class:`RunMetrics` means.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.metrics import RunMetrics, metrics_from_result
from repro.locking import (
    ClosedNestedLocking,
    MultiLevelLocking,
    OpenNestedLocking,
    OptimisticCertifier,
    PageLocking2PL,
)
from repro.oodb.database import ObjectDatabase
from repro.runtime.executor import ExecutionResult, InterleavedExecutor
from repro.runtime.program import TransactionProgram

#: builder: (db) -> (anything, programs)
WorkloadBuilder = Callable[[ObjectDatabase], tuple[object, list[TransactionProgram]]]

PROTOCOLS = ("page-2pl", "closed-nested", "multilevel", "open-nested-oo")


def make_scheduler(name: str, layers: dict[str, int] | None = None):
    """Instantiate a protocol by its bench name."""
    if name == "page-2pl":
        return PageLocking2PL()
    if name == "closed-nested":
        return ClosedNestedLocking()
    if name == "multilevel":
        if layers is None:
            raise ValueError("the multilevel protocol needs a layer assignment")
        return MultiLevelLocking(layers)
    if name == "open-nested-oo":
        return OpenNestedLocking()
    if name == "optimistic-oo":
        return OptimisticCertifier()
    raise ValueError(f"unknown protocol {name!r}")


@dataclass
class ProtocolComparison:
    """Aggregated means per protocol over all seeds."""

    rows: dict[str, RunMetrics] = field(default_factory=dict)
    results: dict[tuple[str, int], ExecutionResult] = field(default_factory=dict)

    def table_rows(self) -> list[list]:
        return [self.rows[name].row() for name in self.rows]


def run_one(
    workload: WorkloadBuilder,
    protocol: str,
    *,
    layers: dict[str, int] | None = None,
    seed: int = 0,
    page_capacity: int = 256,
) -> ExecutionResult:
    """One (protocol, seed) cell: fresh database, fresh workload, one run."""
    db = ObjectDatabase(
        scheduler=make_scheduler(protocol, layers), page_capacity=page_capacity
    )
    _, programs = workload(db)
    executor = InterleavedExecutor(db, seed=seed)
    return executor.run(programs)


def _mean_metrics(protocol: str, metrics: list[RunMetrics]) -> RunMetrics:
    n = len(metrics)
    return RunMetrics(
        protocol=protocol,
        committed=round(sum(m.committed for m in metrics) / n),
        gave_up=round(sum(m.gave_up for m in metrics) / n),
        makespan=round(sum(m.makespan for m in metrics) / n),
        throughput=sum(m.throughput for m in metrics) / n,
        lock_waits=round(sum(m.lock_waits for m in metrics) / n),
        wait_ticks=round(sum(m.wait_ticks for m in metrics) / n),
        mean_wait_ticks=sum(m.mean_wait_ticks for m in metrics) / n,
        mean_latency=sum(m.mean_latency for m in metrics) / n,
        deadlocks=round(sum(m.deadlocks for m in metrics) / n),
        wounds=round(sum(m.wounds for m in metrics) / n),
        restarts=round(sum(m.restarts for m in metrics) / n),
    )


def compare_protocols(
    workload: WorkloadBuilder,
    *,
    protocols: tuple[str, ...] = PROTOCOLS,
    layers: dict[str, int] | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    page_capacity: int = 256,
    keep_results: bool = False,
) -> ProtocolComparison:
    """Run the workload under every protocol and seed; aggregate means."""
    comparison = ProtocolComparison()
    for protocol in protocols:
        per_seed = []
        for seed in seeds:
            result = run_one(
                workload,
                protocol,
                layers=layers,
                seed=seed,
                page_capacity=page_capacity,
            )
            per_seed.append(metrics_from_result(result, protocol))
            if keep_results:
                comparison.results[(protocol, seed)] = result
        comparison.rows[protocol] = _mean_metrics(protocol, per_seed)
    return comparison
