"""Per-run performance metrics.

Everything is in simulated ticks: one tick is one scheduling slice of the
interleaved executor (roughly, one database action or one unit of think
time).  Throughput is committed transactions per 1000 ticks so that the
numbers stay readable across workload sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.executor import ExecutionResult


@dataclass
class RunMetrics:
    """Aggregated outcome of one interleaved run."""

    protocol: str
    committed: int
    gave_up: int
    makespan: int
    throughput: float  # committed transactions per 1000 ticks
    lock_waits: int
    wait_ticks: int
    mean_wait_ticks: float  # per committed transaction
    mean_latency: float  # first begin to commit, per committed transaction
    deadlocks: int
    wounds: int
    restarts: int

    def row(self) -> list:
        return [
            self.protocol,
            self.committed,
            self.makespan,
            f"{self.throughput:.2f}",
            f"{self.mean_latency:.0f}",
            self.lock_waits,
            f"{self.mean_wait_ticks:.1f}",
            self.deadlocks,
            self.restarts,
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "protocol",
            "commits",
            "makespan",
            "tput/1k",
            "latency",
            "waits",
            "wait/txn",
            "deadlocks",
            "restarts",
        ]


def metrics_from_result(result: ExecutionResult, protocol: str = "") -> RunMetrics:
    """Summarize an :class:`ExecutionResult` into :class:`RunMetrics`."""
    committed = result.committed
    wait_ticks = sum(
        outcome.final_ctx.stats.wait_ticks
        for outcome in committed
        if outcome.final_ctx is not None
    )
    # waits experienced by aborted attempts count too: they are real time
    for outcome in result.outcomes:
        for ctx in outcome.aborted_ctxs:
            wait_ticks += ctx.stats.wait_ticks
    latencies = []
    for outcome in committed:
        if outcome.final_ctx is None:
            continue
        first_begin = outcome.final_ctx.stats.begin_tick
        if outcome.aborted_ctxs:
            first_begin = outcome.aborted_ctxs[0].stats.begin_tick
        latencies.append(outcome.final_ctx.stats.commit_tick - first_begin)
    stats = result.scheduler_stats
    name = protocol or getattr(result.db.scheduler, "name", "?")
    makespan = max(1, result.makespan)
    return RunMetrics(
        protocol=name,
        committed=len(committed),
        gave_up=len(result.gave_up),
        makespan=result.makespan,
        throughput=1000.0 * len(committed) / makespan,
        lock_waits=stats.get("waits", 0),
        wait_ticks=wait_ticks,
        mean_wait_ticks=wait_ticks / max(1, len(committed)),
        mean_latency=sum(latencies) / max(1, len(latencies)),
        deadlocks=stats.get("deadlocks", 0),
        wounds=stats.get("wounds", 0),
        restarts=result.total_restarts,
    )
