"""Measurement and comparison harness behind the benches.

- :mod:`repro.analysis.metrics` — per-run metrics (throughput, blocking,
  aborts) from an :class:`~repro.runtime.executor.ExecutionResult`;
- :mod:`repro.analysis.conflicts` — the C1 statistics: ordering constraints
  and conflicting pairs under the conventional vs the oo criterion, from an
  executed trace;
- :mod:`repro.analysis.compare` — run one workload under several protocols
  and seeds, aggregate;
- :mod:`repro.analysis.reporting` — fixed-width tables, the output format
  of every bench.
"""

from repro.analysis.compare import ProtocolComparison, compare_protocols, make_scheduler
from repro.analysis.conflicts import ConflictStatistics, conflict_statistics
from repro.analysis.metrics import RunMetrics, metrics_from_result
from repro.analysis.reporting import render_table
from repro.analysis.sweep import sweep, sweep_rows

__all__ = [
    "ConflictStatistics",
    "ProtocolComparison",
    "RunMetrics",
    "compare_protocols",
    "conflict_statistics",
    "make_scheduler",
    "metrics_from_result",
    "render_table",
    "sweep",
    "sweep_rows",
]
