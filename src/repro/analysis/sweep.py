"""Parameter sweeps: one knob, many protocols, aggregated rows.

Generic driver behind the sweep benches (C7): a factory maps each knob
value to a workload builder; every (value, protocol, seed) cell runs on a
fresh database and the per-protocol means are collected per value.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.analysis.compare import WorkloadBuilder, compare_protocols
from repro.analysis.metrics import RunMetrics

#: maps one knob value to a workload builder
WorkloadFactory = Callable[[object], WorkloadBuilder]


def sweep(
    factory: WorkloadFactory,
    values: Iterable[object],
    *,
    protocols: Sequence[str],
    layers: dict[str, int] | None = None,
    seeds: tuple[int, ...] = (0, 1),
    page_capacity: int = 256,
) -> dict[object, dict[str, RunMetrics]]:
    """Run the sweep; returns ``{value: {protocol: mean RunMetrics}}``."""
    results: dict[object, dict[str, RunMetrics]] = {}
    for value in values:
        comparison = compare_protocols(
            factory(value),
            protocols=tuple(protocols),
            layers=layers,
            seeds=seeds,
            page_capacity=page_capacity,
        )
        results[value] = comparison.rows
    return results


def sweep_rows(
    results: dict[object, dict[str, RunMetrics]],
    metric: str = "throughput",
    fmt: str = "{:.2f}",
) -> tuple[list[str], list[list]]:
    """Pivot sweep results into a printable table.

    Rows are knob values, columns are protocols, cells the chosen metric.
    """
    protocols: list[str] = []
    for per_protocol in results.values():
        for name in per_protocol:
            if name not in protocols:
                protocols.append(name)
    headers = ["value", *protocols]
    rows = []
    for value, per_protocol in results.items():
        row: list = [value]
        for name in protocols:
            metrics = per_protocol.get(name)
            cell = getattr(metrics, metric) if metrics is not None else ""
            row.append(fmt.format(cell) if isinstance(cell, float) else cell)
        rows.append(row)
    return headers, rows
