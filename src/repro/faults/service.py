"""Service-level fault sites: the overload half of the fault plane.

:class:`~repro.faults.plan.FaultPlan` injects *system* faults (crashes,
transient dispatch failures, lost wakeups).  A multi-tenant service dies in
different ways: clients that trickle bytes, sessions that stall mid-frame,
connections dropped after a request was admitted, and burst arrivals that
slam the admission queue.  :class:`ServiceFaultPlan` describes one load
run's worth of those faults, derived from a seed with the same
occurrence-counter discipline as the crash plan — the *n*-th consultation
of a named site fires if and only if the plan armed occurrence *n*, so a
``(seed, site census)`` pair replays the identical fault schedule.

The plan is consulted by the load driver / client sessions (the service
itself stays fault-free: a server that injected its own faults could not
distinguish them from bugs):

- ``client.slow`` — pause before sending the next request (a slow client
  holding its admission slot);
- ``client.stall`` — send a *partial* request frame and stop, forcing the
  server's session read deadline to fire mid-transaction;
- ``client.disconnect`` — drop the connection right after submitting,
  before reading the response (the admitted commit must survive);
- ``arrival.burst`` — fire the next ``burst_size`` requests back-to-back
  with no pacing (an arrival spike against the admission queue).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: every service fault site, in the order campaigns sweep them
SERVICE_FAULT_SITES = (
    "client.slow",
    "client.stall",
    "client.disconnect",
    "arrival.burst",
)


@dataclass
class ServiceFaultPlan:
    """One load run's service faults, driven by per-site hit counters."""

    #: consultations (0-based) of ``client.slow`` that pause the client
    slow_at: frozenset = frozenset()
    #: consultations of ``client.stall`` that freeze a session mid-frame
    stall_at: frozenset = frozenset()
    #: consultations of ``client.disconnect`` that drop the connection
    disconnect_at: frozenset = frozenset()
    #: consultations of ``arrival.burst`` that fire an arrival spike
    burst_at: frozenset = frozenset()
    #: how long a slow client pauses (seconds, real time)
    slow_delay_s: float = 0.05
    #: how many requests a burst sends back-to-back
    burst_size: int = 4
    #: per-site hit counters (also the census of a counting pass)
    counts: dict = field(default_factory=dict)

    # -- site hooks ---------------------------------------------------------

    def _consult(self, site: str, armed: frozenset) -> bool:
        n = self.counts.get(site, 0)
        self.counts[site] = n + 1
        return n in armed

    def slow_client(self) -> bool:
        """Should this (counted) request be preceded by a client-side pause?"""
        return self._consult("client.slow", self.slow_at)

    def stall_session(self) -> bool:
        """Should this (counted) request stall mid-frame instead of landing?"""
        return self._consult("client.stall", self.stall_at)

    def drop_connection(self) -> bool:
        """Should the client vanish right after submitting this request?"""
        return self._consult("client.disconnect", self.disconnect_at)

    def burst(self) -> bool:
        """Should an arrival burst start at this (counted) request?"""
        return self._consult("arrival.burst", self.burst_at)

    @property
    def armed(self) -> bool:
        return bool(
            self.slow_at or self.stall_at or self.disconnect_at or self.burst_at
        )

    # -- construction -------------------------------------------------------

    @staticmethod
    def none() -> "ServiceFaultPlan":
        """A fault-free plan (counting pass / clean baseline run)."""
        return ServiceFaultPlan()

    @staticmethod
    def from_seed(
        seed: int,
        n_requests: int,
        *,
        p_slow: float = 0.15,
        p_stall: float = 0.08,
        p_disconnect: float = 0.08,
        p_burst: float = 0.1,
        slow_delay_s: float = 0.05,
        burst_size: int = 4,
    ) -> "ServiceFaultPlan":
        """Arm a plan for a run of ``n_requests`` request slots.

        Each request slot independently draws each fault kind with the
        given probability, from an RNG seeded on ``(seed, "service-faults")``
        — disjoint from the workload generator's stream, so arming faults
        never perturbs the generated programs.
        """
        rng = random.Random((seed, "service-faults").__repr__())
        slow, stall, disconnect, burst = set(), set(), set(), set()
        for i in range(n_requests):
            if rng.random() < p_slow:
                slow.add(i)
            if rng.random() < p_stall:
                stall.add(i)
            if rng.random() < p_disconnect:
                disconnect.add(i)
            if rng.random() < p_burst:
                burst.add(i)
        return ServiceFaultPlan(
            slow_at=frozenset(slow),
            stall_at=frozenset(stall),
            disconnect_at=frozenset(disconnect),
            burst_at=frozenset(burst),
            slow_delay_s=slow_delay_s,
            burst_size=burst_size,
        )

    def to_dict(self) -> dict:
        """The armed faults (not the counters): a replayable plan."""
        return {
            "slow_at": sorted(self.slow_at),
            "stall_at": sorted(self.stall_at),
            "disconnect_at": sorted(self.disconnect_at),
            "burst_at": sorted(self.burst_at),
            "slow_delay_s": self.slow_delay_s,
            "burst_size": self.burst_size,
        }

    @staticmethod
    def from_dict(data: dict) -> "ServiceFaultPlan":
        return ServiceFaultPlan(
            slow_at=frozenset(data.get("slow_at", ())),
            stall_at=frozenset(data.get("stall_at", ())),
            disconnect_at=frozenset(data.get("disconnect_at", ())),
            burst_at=frozenset(data.get("burst_at", ())),
            slow_delay_s=data.get("slow_delay_s", 0.05),
            burst_size=data.get("burst_size", 4),
        )

    def rearm(self) -> "ServiceFaultPlan":
        """A fresh copy with zeroed counters (replay the same faults)."""
        return ServiceFaultPlan.from_dict(self.to_dict())

    def describe(self) -> str:
        if not self.armed:
            return "no service faults"
        parts = []
        if self.slow_at:
            parts.append(f"slow@{sorted(self.slow_at)}")
        if self.stall_at:
            parts.append(f"stall@{sorted(self.stall_at)}")
        if self.disconnect_at:
            parts.append(f"disconnect@{sorted(self.disconnect_at)}")
        if self.burst_at:
            parts.append(f"burst@{sorted(self.burst_at)}")
        return ", ".join(parts)
