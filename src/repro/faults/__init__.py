"""Deterministic fault injection: crash sites, transient failures, lost
wakeups — the robustness counterpart of the schedule fuzzer.

See :mod:`repro.faults.plan` for the model.  The runtime hooks live in
:class:`~repro.oodb.database.ObjectDatabase` (crash sites around page
writes, subcommits, commits and rollback steps) and
:class:`~repro.runtime.executor.InterleavedExecutor` (crash unwinding and
wakeup drops); :func:`repro.oodb.wal.recover` honors the mid-recovery
site.
"""

from repro.errors import SimulatedCrash
from repro.faults.plan import (
    CRASH_SITES,
    DURABLE_CRASH_SITES,
    RECOVERY_SITES,
    FaultPlan,
)
from repro.faults.service import SERVICE_FAULT_SITES, ServiceFaultPlan

__all__ = [
    "CRASH_SITES",
    "DURABLE_CRASH_SITES",
    "RECOVERY_SITES",
    "SERVICE_FAULT_SITES",
    "FaultPlan",
    "ServiceFaultPlan",
    "SimulatedCrash",
]
