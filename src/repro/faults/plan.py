"""The deterministic fault-injection plane.

A :class:`FaultPlan` is a declarative description of every fault one run
will suffer, derived from a seed so that any failure is replayable from a
single integer.  The runtime consults the plan at named *sites*:

- **Crash sites** kill the whole system (raise
  :class:`~repro.errors.SimulatedCrash`) at the *n*-th hit of a named
  checkpoint: around a page write, between a subtransaction's durable
  subcommit and the parent's in-memory merge, before/after the commit
  record, mid-compensation during an abort, and mid-recovery.
- **Transient sites** make an individual method dispatch fail with a
  retriable :class:`~repro.errors.TransactionAborted` — the victim rolls
  back and restarts like a deadlock victim.
- **Wakeup drops** swallow a scheduler's lock-release notification,
  modeling a lost wakeup; the executor's tolerance sweep must recover.

Plans are pure counters: the same plan object consulted by the same
deterministic run fires at exactly the same points, which is what makes a
``(workload seed, crash site, occurrence)`` triple a complete reproduction
key for any crash-recovery failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulatedCrash

#: every named crash site, in the order the fuzzer sweeps them
CRASH_SITES = (
    "page-write.before",   # before the slot mutation and its WAL record
    "page-write.after",    # after the mutation, before anything syncs
    "subcommit.before",    # before the durable compensation record
    "subcommit.after",     # compensation durable, parent not yet merged
    "commit.before",       # before the commit record is appended
    "commit.after",        # commit record durable, locks not yet released
    "rollback.step",       # mid-compensation during a top-level abort
    "recovery.step",       # mid-recovery, between two undo steps
)

#: sites that only exist once a run is already recovering
RECOVERY_SITES = ("recovery.step",)

#: sites that only exist with the durable (file-backed) page store; kept
#: out of CRASH_SITES so the in-memory campaign tables stay byte-identical
DURABLE_CRASH_SITES = (
    "checkpoint.mid",      # between ckpt-begin and ckpt-end
    "eviction.mid",        # log forced, dirty victim not yet written back
    "writeback.torn",      # mid page-image write (torn .tmp, image intact)
)


@dataclass
class FaultPlan:
    """One run's faults, plus the per-site hit counters that drive them."""

    #: crash at the ``crash_at``-th hit (0-based) of this site; None = never
    crash_site: str | None = None
    crash_at: int = 0
    #: dispatch hits (0-based) that fail with a transient abort
    transient_at: frozenset = frozenset()
    #: wake_keys/wake_all calls (0-based) whose notification is swallowed
    drop_wakeups_at: frozenset = frozenset()
    #: per-site hit counters (also the site census of a counting pass)
    counts: dict = field(default_factory=dict)
    #: set once the crash fired; everything downstream checks this
    crashed: bool = False

    # -- site hooks ---------------------------------------------------------

    def hit(self, site: str) -> None:
        """Record one hit of ``site``; crash if the plan says so."""
        n = self.counts.get(site, 0)
        self.counts[site] = n + 1
        if self.crashed:
            raise SimulatedCrash(site, n)
        if site == self.crash_site and n == self.crash_at:
            self.crashed = True
            raise SimulatedCrash(site, n)

    def transient(self, site: str = "dispatch") -> bool:
        """Should this (counted) dispatch fail transiently?"""
        key = f"transient.{site}"
        n = self.counts.get(key, 0)
        self.counts[key] = n + 1
        return n in self.transient_at

    def drop_wakeup(self) -> bool:
        """Should this (counted) wakeup notification be swallowed?"""
        n = self.counts.get("wakeup", 0)
        self.counts["wakeup"] = n + 1
        return n in self.drop_wakeups_at

    # -- construction -------------------------------------------------------

    @staticmethod
    def counting() -> "FaultPlan":
        """A plan with no faults: pass 1 of the fuzzer, tallying site hits."""
        return FaultPlan()

    @staticmethod
    def crash_plan(site: str, occurrence: int) -> "FaultPlan":
        return FaultPlan(crash_site=site, crash_at=occurrence)

    @staticmethod
    def from_census(
        seed: int,
        census: dict,
        *,
        site: str | None = None,
        sites: tuple = CRASH_SITES,
        p_transient: float = 0.2,
        p_drop_wakeup: float = 0.15,
    ) -> "FaultPlan | None":
        """Derive an armed plan from a counting pass's site census.

        Picks the crash occurrence uniformly among the hits the counting
        pass observed (for ``site``, or a seed-chosen hit site from
        ``sites``), and sprinkles transient dispatch failures and wakeup
        drops with small probabilities.  Returns None when no candidate
        site was ever hit — the workload cannot crash there.
        """
        rng = random.Random((seed, site, "fault-plan").__repr__())
        candidates = [
            s for s in sites
            if s not in RECOVERY_SITES and census.get(s, 0) > 0
        ]
        if site is not None:
            candidates = [s for s in candidates if s == site]
        if not candidates:
            return None
        chosen = rng.choice(candidates)
        occurrence = rng.randrange(census[chosen])
        transients: set[int] = set()
        if rng.random() < p_transient:
            dispatches = census.get("transient.dispatch", 0)
            if dispatches:
                transients.add(rng.randrange(dispatches))
        drops: set[int] = set()
        if rng.random() < p_drop_wakeup:
            wakeups = census.get("wakeup", 0)
            if wakeups:
                drops.add(rng.randrange(wakeups))
        return FaultPlan(
            crash_site=chosen,
            crash_at=occurrence,
            transient_at=frozenset(transients),
            drop_wakeups_at=frozenset(drops),
        )

    def to_dict(self) -> dict:
        """The armed faults (not the counters): a replayable plan."""
        return {
            "crash_site": self.crash_site,
            "crash_at": self.crash_at,
            "transient_at": sorted(self.transient_at),
            "drop_wakeups_at": sorted(self.drop_wakeups_at),
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        return FaultPlan(
            crash_site=data.get("crash_site"),
            crash_at=data.get("crash_at", 0),
            transient_at=frozenset(data.get("transient_at", ())),
            drop_wakeups_at=frozenset(data.get("drop_wakeups_at", ())),
        )

    def rearm(self) -> "FaultPlan":
        """A fresh copy with zeroed counters (replay the same faults)."""
        return FaultPlan.from_dict(self.to_dict())

    def describe(self) -> str:
        if self.crash_site is None:
            return "no faults (counting)"
        extras = []
        if self.transient_at:
            extras.append(f"transient@{sorted(self.transient_at)}")
        if self.drop_wakeups_at:
            extras.append(f"drop-wakeup@{sorted(self.drop_wakeups_at)}")
        tail = f" + {', '.join(extras)}" if extras else ""
        return f"crash at {self.crash_site}#{self.crash_at}{tail}"
