"""Key-space samplers.

All samplers draw from a fixed universe ``k000000..k<n-1>`` with seeded
randomness.  Zipf sampling uses the standard bounded-Zipf construction
(probability of rank ``i`` proportional to ``1 / i**theta``) computed with
an explicit cumulative table — no numpy dependency in the hot path.
"""

from __future__ import annotations

import bisect
import random


def key_name(index: int) -> str:
    return f"k{index:06d}"


class UniformSampler:
    """Uniform over the key universe."""

    def __init__(self, n_keys: int, seed: int = 0):
        if n_keys < 1:
            raise ValueError("n_keys must be positive")
        self.n_keys = n_keys
        self._rng = random.Random(seed)

    def sample(self) -> str:
        return key_name(self._rng.randrange(self.n_keys))


class ZipfSampler:
    """Bounded Zipf: rank ``i`` (1-based) has weight ``i**-theta``.

    ``theta=0`` degenerates to uniform; typical skew values are 0.5-1.2.
    Rank-to-key assignment is a seeded shuffle so that hot keys are spread
    over the key space (and therefore over B+ tree leaves).
    """

    def __init__(self, n_keys: int, theta: float = 0.99, seed: int = 0):
        if n_keys < 1:
            raise ValueError("n_keys must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n_keys = n_keys
        self.theta = theta
        self._rng = random.Random(seed)
        cumulative = []
        total = 0.0
        for rank in range(1, n_keys + 1):
            total += rank ** -theta
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total
        self._rank_to_index = list(range(n_keys))
        self._rng.shuffle(self._rank_to_index)

    def sample(self) -> str:
        point = self._rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, point)
        rank = min(rank, self.n_keys - 1)
        return key_name(self._rank_to_index[rank])


class HotSetSampler:
    """A fraction of accesses hits a small hot set (the 80/20 pattern)."""

    def __init__(
        self,
        n_keys: int,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.8,
        seed: int = 0,
    ):
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_probability <= 1:
            raise ValueError("hot_probability must be in [0, 1]")
        self.n_keys = n_keys
        self.hot_size = max(1, int(n_keys * hot_fraction))
        self.hot_probability = hot_probability
        self._rng = random.Random(seed)

    def sample(self) -> str:
        if self._rng.random() < self.hot_probability:
            return key_name(self._rng.randrange(self.hot_size))
        if self.hot_size == self.n_keys:
            return key_name(self._rng.randrange(self.n_keys))
        return key_name(self._rng.randrange(self.hot_size, self.n_keys))
