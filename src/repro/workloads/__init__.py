"""Workload generators for the bench harness.

Each workload module exposes a spec dataclass and a ``build(db, spec)``
function that bootstraps the database and returns the transaction programs
to run; all randomness is seeded, so a (spec, seed) pair is a reproducible
experiment.

- :mod:`repro.workloads.keys` — key-space samplers (uniform, Zipf, hot-set);
- :mod:`repro.workloads.encyclopedia_wl` — the paper's encyclopedia: keyed
  inserts/searches/changes plus sequential reads over a B+-tree-indexed
  item list (Examples 1 and 4 scaled up);
- :mod:`repro.workloads.banking_wl` — short account transfers (Figure 1's
  "conventional transactions" column) with escrow semantics;
- :mod:`repro.workloads.editing_wl` — long cooperative-editing sessions
  (Section 1's motivation) against sectioned documents.
"""

from repro.workloads.keys import HotSetSampler, UniformSampler, ZipfSampler
from repro.workloads.encyclopedia_wl import (
    EncyclopediaWorkload,
    build_encyclopedia_workload,
    encyclopedia_layers,
)
from repro.workloads.banking_wl import BankingWorkload, build_banking_workload
from repro.workloads.editing_wl import EditingWorkload, build_editing_workload
from repro.workloads.index_wl import IndexWorkload, build_index_workload, index_layers

__all__ = [
    "BankingWorkload",
    "EditingWorkload",
    "EncyclopediaWorkload",
    "HotSetSampler",
    "IndexWorkload",
    "UniformSampler",
    "ZipfSampler",
    "build_index_workload",
    "index_layers",
    "build_banking_workload",
    "build_editing_workload",
    "build_encyclopedia_workload",
    "encyclopedia_layers",
]
