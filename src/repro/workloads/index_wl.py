"""The pure-index workload: keyed operations directly on the B+ tree.

This isolates the paper's page-size argument (Example 1): "Every node and
therefore the corresponding page contains many keys (roughly up to 500).
Operations on these keys will often conflict at the page level but commute
at the node level."  With one transaction touching a handful of random
keys, the probability that two transactions share an index *page* grows
with keys-per-page, while the probability that they touch the same *key*
does not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oodb.database import ObjectDatabase
from repro.runtime.program import TransactionProgram
from repro.structures.bptree import build_bptree, page_capacity_for
from repro.workloads.keys import ZipfSampler, key_name


def index_layers() -> dict[str, int]:
    return {"BpTree": 2, "TreeNode": 1, "TreeLeaf": 1, "Page": 0}


@dataclass
class IndexWorkload:
    """Parameters of one pure-index experiment."""

    n_transactions: int = 10
    ops_per_transaction: int = 4
    #: fraction of operations that are fresh-key inserts
    p_insert: float = 0.3
    #: fraction of operations that overwrite an *existing* key (semantic
    #: same-key conflicts, which survive under oo-serializability)
    p_update: float = 0.0
    preload: int = 60
    key_space: int = 300
    zipf_theta: float = 0.5
    keys_per_page: int = 16
    blink: bool = False
    think_ticks: int = 1
    seed: int = 0


def build_index_workload(
    db: ObjectDatabase, spec: IndexWorkload
) -> tuple[str, list[TransactionProgram]]:
    """Bootstrap the tree and generate the keyed programs."""
    tree = build_bptree(db, spec.keys_per_page, blink=spec.blink)
    ctx = db.begin("preload")
    for index in range(spec.preload):
        db.send(ctx, tree, "insert", key_name(index), index)
    db.commit(ctx)

    rng = random.Random(spec.seed)
    sampler = ZipfSampler(spec.key_space, theta=spec.zipf_theta, seed=spec.seed + 1)
    programs: list[TransactionProgram] = []
    for t in range(spec.n_transactions):
        ops: list[tuple] = []
        for step in range(spec.ops_per_transaction):
            point = rng.random()
            if point < spec.p_insert:
                # a fresh key at a random position in the key space, so
                # concurrent inserts spread over leaves (and pages)
                anchor = rng.randrange(spec.key_space)
                ops.append(("insert", f"{key_name(anchor)}.{t}.{step}", t))
            elif point < spec.p_insert + spec.p_update and spec.preload:
                ops.append(("insert", key_name(rng.randrange(spec.preload)), t))
            else:
                ops.append(("search", sampler.sample()))

        def body(api, ops=tuple(ops)):
            for operation in ops:
                if operation[0] == "insert":
                    api.send(tree, "insert", operation[1], operation[2])
                else:
                    api.send(tree, "search", operation[1])
                if spec.think_ticks:
                    api.work(spec.think_ticks)

        programs.append(TransactionProgram(f"X{t}", body, kind="index"))
    return tree, programs
