"""The cooperative-editing workload (Section 1's motivation).

"Every author wants to write down his ideas immediately.  But if another
author edits the document simultaneously he must wait until the document is
released."  Authors are *long* transactions: they edit several sections of
one shared document with substantial think time between edits (editing is a
slow operation).  Readers take consistent snapshots.

Under page-level 2PL an author holds the document's pages for the whole
session; under the open-nested protocol only the touched *sections* stay
semantically locked, so authors of different sections proceed concurrently
— the claim bench C3 measures exactly this blocking-time difference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oodb.database import ObjectDatabase
from repro.runtime.program import TransactionProgram
from repro.structures.document import build_document


def editing_layers() -> dict[str, int]:
    return {"Document": 2, "Section": 1, "Page": 0}


@dataclass
class EditingWorkload:
    """Parameters of one cooperative-editing experiment."""

    n_sections: int = 8
    n_authors: int = 4
    edits_per_author: int = 3
    #: think time between an author's edits (editing is slow)
    think_ticks: int = 10
    n_readers: int = 2
    #: whether readers scan the whole document (conflicts with every edit)
    readers_scan_all: bool = False
    seed: int = 0
    #: section assignment: "disjoint" gives each author their own sections
    #: (the paper's concurrent-authors ideal); "random" lets them collide
    section_assignment: str = "disjoint"


def build_editing_workload(
    db: ObjectDatabase, spec: EditingWorkload
) -> tuple[str, list[TransactionProgram]]:
    """Bootstrap one shared document and generate author/reader programs."""
    sections = {f"sec{i:02d}": f"text {i}" for i in range(spec.n_sections)}
    doc = build_document(db, "shared-paper", sections, oid="Document1")
    rng = random.Random(spec.seed)
    section_names = sorted(sections)

    def sections_for(author: int) -> list[str]:
        if spec.section_assignment == "disjoint":
            own = [
                name
                for index, name in enumerate(section_names)
                if index % spec.n_authors == author
            ]
            if own:
                return [rng.choice(own) for _ in range(spec.edits_per_author)]
        return [rng.choice(section_names) for _ in range(spec.edits_per_author)]

    programs: list[TransactionProgram] = []
    for author in range(spec.n_authors):
        plan = sections_for(author)

        def author_body(api, plan=tuple(plan), author=author):
            for step, section in enumerate(plan):
                api.send(doc, "edit", section, f"by A{author} step {step}")
                api.work(spec.think_ticks)

        programs.append(TransactionProgram(f"A{author}", author_body, kind="author"))

    for reader in range(spec.n_readers):
        target = rng.choice(section_names)

        def reader_body(api, target=target):
            if spec.readers_scan_all:
                api.send(doc, "read_all")
            else:
                api.send(doc, "read_section", target)

        programs.append(TransactionProgram(f"R{reader}", reader_body, kind="reader"))
    return doc, programs
