"""The banking workload: Figure 1's "conventional transactions" column.

Short transactions against accounts — transfers, deposits and balance
queries.  With escrow commutativity, transfers against the same accounts
commute as long as balances stay clear of the bounds; with plain read/write
semantics every transfer serializes on its accounts.  Ablation bench A3
flips between the two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DatabaseError, TransactionAborted
from repro.oodb.database import ObjectDatabase
from repro.runtime.program import TransactionProgram
from repro.structures.account import Account


def banking_layers() -> dict[str, int]:
    return {"Account": 1, "Page": 0}


@dataclass
class BankingWorkload:
    """Parameters of one banking experiment."""

    n_accounts: int = 8
    initial_balance: float = 1000.0
    n_transactions: int = 12
    transfers_per_transaction: int = 2
    #: fraction of operations that are balance queries instead of transfers
    p_balance_query: float = 0.2
    max_amount: float = 50.0
    think_ticks: int = 1
    seed: int = 0


def build_banking_workload(
    db: ObjectDatabase, spec: BankingWorkload
) -> tuple[list[str], list[TransactionProgram]]:
    """Bootstrap accounts and generate transfer programs.

    Returns ``(account_oids, programs)``.
    """
    accounts = [
        db.create(Account, spec.initial_balance, f"owner{i}")
        for i in range(spec.n_accounts)
    ]
    rng = random.Random(spec.seed)
    programs: list[TransactionProgram] = []
    for t in range(spec.n_transactions):
        ops: list[tuple] = []
        for _ in range(spec.transfers_per_transaction):
            if rng.random() < spec.p_balance_query:
                ops.append(("balance", rng.choice(accounts)))
            else:
                src, dst = rng.sample(accounts, 2)
                amount = round(rng.uniform(1.0, spec.max_amount), 2)
                ops.append(("transfer", src, dst, amount))

        def body(api, ops=tuple(ops)):
            for operation in ops:
                if operation[0] == "balance":
                    api.send(operation[1], "balance")
                else:
                    _, src, dst, amount = operation
                    try:
                        api.send(src, "withdraw", amount)
                    except TransactionAborted:
                        raise
                    except DatabaseError:
                        continue  # insufficient funds: skip this transfer
                    api.send(dst, "deposit", amount)
                if spec.think_ticks:
                    api.work(spec.think_ticks)

        programs.append(TransactionProgram(f"B{t}", body, kind="banking"))
    return accounts, programs
