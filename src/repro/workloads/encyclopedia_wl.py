"""The encyclopedia workload: the paper's running application, scaled up.

Transactions mix keyed operations (insert/search/change) with occasional
sequential reads, against an encyclopedia whose index page size (*keys per
page*, the B+ tree order) is the central experiment knob: with hundreds of
keys per page, independent keyed operations collide on pages while
commuting semantically — the source of the paper's conflict-rate claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import DatabaseError, TransactionAborted
from repro.oodb.database import ObjectDatabase
from repro.runtime.program import TransactionProgram
from repro.structures.encyclopedia import build_encyclopedia
from repro.workloads.keys import ZipfSampler, key_name


def encyclopedia_layers(enc_oid: str = "Enc") -> dict[str, int]:
    """The layer assignment the multilevel baseline uses for this workload."""
    return {
        enc_oid + "BpTree": 2,
        enc_oid + "LinkedList": 2,
        enc_oid: 3,
        "TreeNode": 1,
        "TreeLeaf": 1,
        "Item": 1,
        "Page": 0,
    }


@dataclass
class EncyclopediaWorkload:
    """Parameters of one encyclopedia experiment."""

    n_transactions: int = 8
    ops_per_transaction: int = 3
    #: operation mix (weights, normalized internally)
    p_insert: float = 0.25
    p_search: float = 0.45
    p_change: float = 0.25
    p_readseq: float = 0.05
    #: number of pre-loaded items
    preload: int = 40
    #: key universe size for generated keys
    key_space: int = 200
    #: Zipf skew over the key universe (0 = uniform)
    zipf_theta: float = 0.6
    #: B+ tree order == keys per index page
    keys_per_page: int = 16
    #: local computation between operations, in simulated ticks
    think_ticks: int = 1
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    def mix(self) -> list[tuple[str, float]]:
        weights = [
            ("insert", self.p_insert),
            ("search", self.p_search),
            ("change", self.p_change),
            ("readseq", self.p_readseq),
        ]
        total = sum(w for _, w in weights)
        if total <= 0:
            raise ValueError("operation mix must have positive total weight")
        return [(op, w / total) for op, w in weights]


def build_encyclopedia_workload(
    db: ObjectDatabase, spec: EncyclopediaWorkload
) -> tuple[str, list[TransactionProgram]]:
    """Bootstrap the database and generate the transaction programs.

    Returns ``(enc_oid, programs)``.  The preloaded keys are the first
    ``spec.preload`` of the key universe; generated operations draw keys
    from a Zipf sampler, so changes/searches mostly hit existing items.
    """
    enc = build_encyclopedia(db, order=spec.keys_per_page)
    preload_ctx = db.begin("preload")
    for index in range(spec.preload):
        db.send(preload_ctx, enc, "insertItem", key_name(index), f"v{index}")
    db.commit(preload_ctx)

    rng = random.Random(spec.seed)
    sampler = ZipfSampler(spec.key_space, theta=spec.zipf_theta, seed=spec.seed + 1)
    mix = spec.mix()
    fresh_key_counter = [spec.key_space]

    def pick_op() -> str:
        point = rng.random()
        acc = 0.0
        for op, weight in mix:
            acc += weight
            if point <= acc:
                return op
        return mix[-1][0]

    def existing_key() -> str:
        return key_name(rng.randrange(spec.preload)) if spec.preload else sampler.sample()

    programs: list[TransactionProgram] = []
    for t in range(spec.n_transactions):
        ops: list[tuple] = []
        for _ in range(spec.ops_per_transaction):
            op = pick_op()
            if op == "insert":
                fresh_key_counter[0] += 1
                ops.append(("insert", key_name(fresh_key_counter[0]), f"t{t}"))
            elif op == "search":
                ops.append(("search", sampler.sample()))
            elif op == "change":
                ops.append(("change", existing_key(), f"t{t}"))
            else:
                ops.append(("readseq",))

        def body(api, ops=tuple(ops)):
            for operation in ops:
                kind = operation[0]
                try:
                    if kind == "insert":
                        api.send(enc, "insertItem", operation[1], operation[2])
                    elif kind == "search":
                        api.send(enc, "search", operation[1])
                    elif kind == "change":
                        api.send(enc, "changeItem", operation[1], operation[2])
                    else:
                        api.send(enc, "readSeq")
                except TransactionAborted:
                    raise
                except DatabaseError:
                    # semantically expected (e.g. changing a missing key):
                    # the operation is a no-op for this transaction
                    pass
                if spec.think_ticks:
                    api.work(spec.think_ticks)

        programs.append(
            TransactionProgram(f"E{t}", body, kind="encyclopedia")
        )
    return enc, programs
