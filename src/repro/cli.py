"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's common entry points without writing
code:

- ``compare`` — run a workload under selected protocols and print the
  RunMetrics table (the C2/C3 harness);
- ``census`` — the exhaustive schedule-space census (C5);
- ``figures`` — regenerate the paper's Example 1 / Example 4 dependency
  tables with provenance;
- ``fuzz`` — the randomized schedule fuzzer: generated workloads under all
  five protocols, judged by the oo-serializability oracle, with greedy
  shrinking of any failure into a seed-reproducible counterexample file;
- ``certify`` — fast Vbox-style certification of one fuzz cell's history
  (near-linear on conflict-sparse stretches, exact-engine fallback on
  suspicion), with a ``--diff`` mode that cross-checks the exact oracle;
- ``recover`` — replay a WAL file through crash recovery;
- ``trace`` — re-run any fuzz cell with the span tracer attached and emit
  its open-nested call trees as Chrome trace-event JSON (C12);
- ``stats`` — re-run any fuzz cell and print its metrics registry, as a
  table or in Prometheus text exposition format;
- ``serve`` — run the multi-tenant transaction service: a JSONL-over-TCP
  request port plus a live Prometheus metrics port;
- ``load`` — drive a client fleet against a running service and report
  throughput, latency percentiles and backpressure tallies.

Exit codes are uniform across commands: **0** success, **1** the command
ran but found a failure (an oracle violation, a failed audit, unanswered
requests), **2** an operational error (bad input file, unreachable
server), **124** the shared ``--timeout`` budget expired.
"""

from __future__ import annotations

import argparse
import functools
import signal
import sys
import threading
import time

from repro.analysis import RunMetrics, compare_protocols, render_table
from repro.analysis.compare import PROTOCOLS

#: the uniform exit-code convention (pinned by tests/test_cli.py)
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_OPERATIONAL = 2
EXIT_TIMEOUT = 124


def _add_timeout_flag(parser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="bound the command's runtime; on expiry it stops and exits "
        f"{EXIT_TIMEOUT}",
    )


def _with_timeout(fn, args) -> int:
    """Run ``fn(args)`` under the shared ``--timeout`` budget.

    The body runs on a daemon worker; if the budget expires first the
    process reports timeout (exit 124) and exits, abandoning the worker —
    the conventional behaviour of ``timeout(1)``.
    """
    if getattr(args, "timeout", None) is None:
        return fn(args)
    box: dict = {}

    def runner() -> None:
        try:
            box["rc"] = fn(args)
        except BaseException as exc:  # re-raised on the main thread
            box["exc"] = exc

    worker = threading.Thread(target=runner, daemon=True)
    worker.start()
    worker.join(args.timeout)
    if worker.is_alive():
        print(f"timed out after {args.timeout:g}s", file=sys.stderr)
        return EXIT_TIMEOUT
    if "exc" in box:
        raise box["exc"]
    return box.get("rc", EXIT_OK)


def _build_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="run a workload under several protocols"
    )
    parser.add_argument(
        "--workload",
        choices=("encyclopedia", "banking", "editing", "index"),
        default="encyclopedia",
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(PROTOCOLS),
        choices=list(PROTOCOLS) + ["optimistic-oo"],
    )
    parser.add_argument("--transactions", type=int, default=8)
    parser.add_argument("--ops", type=int, default=3)
    parser.add_argument("--keys-per-page", type=int, default=32)
    parser.add_argument("--think", type=int, default=2)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    parser.add_argument("--workload-seed", type=int, default=0)


def _workload(args):
    if args.workload == "encyclopedia":
        from repro.workloads import (
            EncyclopediaWorkload,
            build_encyclopedia_workload,
            encyclopedia_layers,
        )

        spec = EncyclopediaWorkload(
            n_transactions=args.transactions,
            ops_per_transaction=args.ops,
            keys_per_page=args.keys_per_page,
            think_ticks=args.think,
            seed=args.workload_seed,
        )
        return (
            functools.partial(build_encyclopedia_workload, spec=spec),
            encyclopedia_layers(),
        )
    if args.workload == "banking":
        from repro.workloads import BankingWorkload, build_banking_workload
        from repro.workloads.banking_wl import banking_layers

        spec = BankingWorkload(
            n_transactions=args.transactions,
            think_ticks=args.think,
            seed=args.workload_seed,
        )
        return functools.partial(build_banking_workload, spec=spec), banking_layers()
    if args.workload == "editing":
        from repro.workloads import EditingWorkload, build_editing_workload
        from repro.workloads.editing_wl import editing_layers

        spec = EditingWorkload(
            n_authors=args.transactions,
            think_ticks=max(args.think, 1),
            seed=args.workload_seed,
        )
        return functools.partial(build_editing_workload, spec=spec), editing_layers()
    from repro.workloads import IndexWorkload, build_index_workload, index_layers

    spec = IndexWorkload(
        n_transactions=args.transactions,
        ops_per_transaction=args.ops,
        keys_per_page=args.keys_per_page,
        think_ticks=args.think,
        seed=args.workload_seed,
    )
    return functools.partial(build_index_workload, spec=spec), index_layers()


def cmd_compare(args) -> int:
    builder, layers = _workload(args)
    comparison = compare_protocols(
        builder,
        protocols=tuple(args.protocols),
        layers=layers,
        seeds=tuple(args.seeds),
    )
    print(
        render_table(
            RunMetrics.headers(),
            comparison.table_rows(),
            title=f"{args.workload} workload, {len(args.seeds)} seed(s), means",
        )
    )
    return 0


def cmd_census(args) -> int:
    from repro.core.enumerate import ScheduleSpace, classify_schedules
    from repro.scenarios.schedule_space import (
        single_leaf_commuting,
        three_txn_ring,
        two_leaf_commuting,
        two_leaf_same_key,
    )

    rows = []
    for name, build in (
        ("single leaf, distinct keys", single_leaf_commuting),
        ("two leaves, distinct keys", two_leaf_commuting),
        ("two leaves, same keys", two_leaf_same_key),
        ("three txns, ring over 3 leaves", three_txn_ring),
    ):
        rows.append([name, *classify_schedules(build).row()])
    print(
        render_table(
            ["scenario", *ScheduleSpace.headers()],
            rows,
            title="exhaustive schedule census",
        )
    )
    return 0


def cmd_figures(args) -> int:
    from repro.core import analyze_system
    from repro.scenarios import (
        example4_system,
        scenario_commuting_inserts,
        scenario_same_key_conflict,
    )
    from repro.scenarios.example4 import figure8_rows

    for title, build in (
        ("Example 1 — commuting inserts", scenario_commuting_inserts),
        ("Example 1 — same-key conflict", scenario_same_key_conflict),
    ):
        scenario = build()
        verdict, schedules = analyze_system(scenario.system, scenario.registry)
        print(f"--- {title} ---")
        for oid in ("Page4712", "Leaf11", "BpTree"):
            print(schedules[oid].describe(verbose=args.verbose))
        print(f"oo-serializable: {verdict.oo_serializable}, "
              f"top constraints: {sorted(verdict.top_order_constraints)}\n")

    scenario = example4_system()
    verdict, schedules = analyze_system(scenario.system, scenario.registry)
    print(render_table(
        ["object", "schedule dependencies"],
        figure8_rows(schedules),
        title="Example 4 / Figure 8",
    ))
    print(f"serial order: {verdict.serial_order}")
    return 0


def _build_fuzz_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "fuzz", help="randomized schedule fuzzing with the oo oracle"
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of generator seeds to run (0..N-1)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="run exactly one generator seed (reproduction mode)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=list(FUZZ_PROTOCOLS),
        choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--ablate", action="store_true",
        help="break the first leaf object's commutativity entries in the "
        "oracle only — the self-test that must produce a violation",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="crash-recovery mode: kill each run at an armed fault site, "
        "recover from the durable WAL prefix, judge with the crash oracle",
    )
    parser.add_argument(
        "--crash-ablate", action="store_true",
        help="crash mode with compensation replay disabled in recovery — "
        "the self-test that the crash oracle must catch",
    )
    parser.add_argument(
        "--durable", action="store_true",
        help="crash mode: run every cell on the file-backed storage engine "
        "(throwaway data dirs) and arm the storage crash sites too "
        "(mid-checkpoint, mid-eviction, torn page image)",
    )
    parser.add_argument(
        "--frames", type=int, default=6, metavar="N",
        help="durable crash mode: buffer-pool frame count (small on "
        "purpose, to force evictions)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=48, metavar="N",
        help="durable crash mode: fuzzy-checkpoint interval in WAL records",
    )
    parser.add_argument(
        "--crash-ablate-force", action="store_true",
        help="durable self-test: skip the log-force-before-flush (WAL "
        "rule) in the buffer pool and prove the crash oracle catches the "
        "resulting phantom page effects",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard seeds across N worker processes (0 = one per CPU); "
        "the campaign report is byte-identical to a serial run",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run every cell on the sharded runtime with N shards over a "
        "grouped (cross-shard) workload, judged by the composed Def 15/16 "
        "oracle; composes with --jobs, and at 1 the report is byte-"
        "identical to the single-core campaign",
    )
    parser.add_argument(
        "--max-violations", type=int, default=1,
        help="stop the campaign after this many violations",
    )
    parser.add_argument(
        "--out", default="fuzz_counterexample.json",
        help="where to write the shrunk counterexample on failure",
    )
    parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a counterexample file instead of running a campaign",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="dump Chrome traces of violating/gave-up/errored cells here; "
        "tracing only observes, so the campaign report is unchanged",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="service mode: each seed x protocol stands up the full "
        "multi-tenant socket service, drives a fault-injected client "
        "fleet, and judges the run with the oracle + ledger audit",
    )
    parser.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="service mode: number of tenants in the fleet",
    )
    parser.add_argument(
        "--clients-per-tenant", type=int, default=3, metavar="N",
        help="service mode: concurrent client connections per tenant",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=6, metavar="N",
        help="service mode: requests each client submits",
    )
    parser.add_argument(
        "--no-faults", action="store_true",
        help="service mode: disable the injected service fault plans",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="judge histories with the fast certifier instead of the full "
        "oracle replay (same verdicts; the oo-only column reads zero "
        "because fast acceptances skip the conventional baseline)",
    )
    _add_timeout_flag(parser)


def cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import (
        Ablation,
        GeneratorProfile,
        counterexample_dict,
        run_campaign,
        run_cell,
        shrink,
    )
    from repro.fuzz.generator import WorkloadSpec

    if args.shards > 1 and (
        args.replay is not None
        or args.service
        or args.crash
        or args.crash_ablate
        or args.crash_ablate_force
        or args.certify
        or args.trace_dir
    ):
        print(
            "error: --shards composes with --jobs only; --replay, "
            "--service, the crash modes, --certify and --trace-dir are "
            "single-core campaign features",
            file=sys.stderr,
        )
        return EXIT_OPERATIONAL

    if args.replay is not None:
        with open(args.replay) as fh:
            data = json.load(fh)
        if data.get("kind") == "crash":
            return _replay_crash(args.replay, data)
        spec = WorkloadSpec.from_dict(data["workload"])
        _, report = run_cell(
            spec,
            data["protocol"],
            exec_seed=data["exec_seed"],
            ablation=Ablation.from_dict(data.get("ablation")),
            certify=args.certify,
        )
        print(
            f"replay {args.replay}: protocol={data['protocol']} "
            f"exec_seed={data['exec_seed']} "
            f"oo_serializable={report.oo_serializable} "
            f"conventional={report.conventional_serializable}"
        )
        if report.violation:
            print(report.description)
        return 1 if report.violation else 0

    profile = GeneratorProfile.smoke() if args.smoke else None
    seeds = [args.seed] if args.seed is not None else list(range(args.seeds))
    if args.service:
        return _cmd_fuzz_service(args, seeds)
    if args.crash or args.crash_ablate or args.crash_ablate_force:
        return _cmd_fuzz_crash(args, seeds, profile)
    campaign = run_campaign(
        seeds=seeds,
        protocols=tuple(args.protocols),
        profile=profile,
        ablate_first_leaf=args.ablate,
        max_violations=args.max_violations,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        certify=args.certify,
        shards=args.shards,
    )
    header, rows = campaign.table()
    print(
        render_table(
            header,
            rows,
            title=f"fuzz campaign, {campaign.seeds_run} seed(s)"
            + (" [ablated oracle]" if args.ablate else "")
            + (" [certified]" if args.certify else ""),
        )
    )
    for seed, protocol, error in campaign.errors:
        print(f"ERROR seed={seed} protocol={protocol}: {error}")
    if not campaign.violations:
        print("no oracle violations" if campaign.ok else "simulator errors")
        return 0 if campaign.ok else 1

    if campaign.shards > 1:
        # The shrinker minimizes single-core cells; a sharded violation is
        # already seed-reproducible through the sharded runtime.
        violation = campaign.violations[0]
        print(
            f"violation: generator seed {violation.seed} under "
            f"{violation.protocol} at {campaign.shards} shards; "
            f"reproduce with: python -m repro shard "
            f"--seed {violation.seed} --protocol {violation.protocol} "
            f"--shards {campaign.shards}"
            + (" --smoke" if args.smoke else "")
        )
        print(violation.report.description)
        return 1

    violation = campaign.violations[0]
    print(
        f"violation: generator seed {violation.seed} under "
        f"{violation.protocol}; shrinking..."
    )
    small, stats = shrink(
        violation.spec,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
    )
    payload = counterexample_dict(
        small,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
        report=violation.report,
        stats=stats,
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(
        f"shrunk {stats.programs_before}->{stats.programs_after} programs, "
        f"{stats.sends_before}->{stats.sends_after} sends "
        f"({stats.evals} evals); wrote {args.out}"
    )
    print(
        f"reproduce with: python -m repro fuzz --replay {args.out}  "
        f"(or --seed {violation.seed}"
        + (" --smoke" if args.smoke else "")
        + (" --ablate" if violation.ablation else "")
        + f" --protocols {violation.protocol})"
    )
    return 1


def _cmd_fuzz_service(args, seeds) -> int:
    from repro.service.campaign import run_service_campaign

    tenants = tuple(f"tenant{i}" for i in range(max(1, args.tenants)))
    campaign = run_service_campaign(
        seeds=seeds,
        protocols=tuple(args.protocols),
        tenants=tenants,
        clients_per_tenant=args.clients_per_tenant,
        requests_per_client=args.requests_per_client,
        with_faults=not args.no_faults,
    )
    header, rows = campaign.table()
    print(
        render_table(
            header,
            rows,
            title=f"service campaign, {len(seeds)} seed(s), "
            f"{len(tenants)} tenant(s)"
            + ("" if args.no_faults else ", faults armed"),
        )
    )
    if campaign.ok:
        print(
            "no oracle violations, no lost admitted commits, "
            "all requests answered"
        )
        return EXIT_OK
    for cell in campaign.failures:
        detail = cell.error or (
            f"violation={cell.report.violation if cell.report else '?'} "
            f"lost={cell.audit.get('lost_commits')} "
            f"unsettled={cell.audit.get('unsettled')} "
            f"unanswered={cell.unanswered}"
        )
        print(f"FAIL seed={cell.seed} protocol={cell.protocol}: {detail}")
    return EXIT_FAILURE


def _cmd_fuzz_crash(args, seeds, profile) -> int:
    import json

    from repro.fuzz.crash import (
        DurableConfig,
        find_log_force_ablation,
        run_crash_campaign,
    )

    if args.crash_ablate_force:
        # Self-test: a buffer pool that flushes dirty pages without
        # forcing the log first must be caught by the crash oracle.
        found = find_log_force_ablation(seeds=seeds)
        if found is None:
            print("log-force ablation NOT detected — the crash oracle is blind")
            return 1
        spec, outcome = found
        print(
            f"log-force ablation detected (seed {outcome.seed}, "
            f"{outcome.protocol}, {outcome.site}#{outcome.occurrence}): "
            "phantom page effects survive recovery"
        )
        for line in outcome.violations:
            print(f"violation: {line}")
        payload = outcome.to_counterexample(spec)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(
            f"wrote {args.out}; reproduce with: "
            f"python -m repro fuzz --replay {args.out}"
        )
        return 0

    durable = (
        DurableConfig(
            frames=args.frames, checkpoint_every=args.checkpoint_every
        )
        if args.durable
        else None
    )
    skip = args.crash_ablate
    campaign = run_crash_campaign(
        seeds=seeds,
        protocols=tuple(args.protocols),
        profile=profile,
        skip_compensation=skip,
        durable=durable,
        max_violations=args.max_violations,
        jobs=args.jobs,
    )
    header, rows = campaign.table()
    print(
        render_table(
            header,
            rows,
            title=f"crash campaign, {campaign.seeds_run} seed(s), "
            f"{campaign.crash_runs} crash run(s)"
            + (" [compensation replay DISABLED]" if skip else "")
            + (" [durable store]" if durable else ""),
        )
    )
    for seed, protocol, site, error in campaign.errors:
        print(f"ERROR seed={seed} protocol={protocol} site={site}: {error}")
    if skip:
        # Self-test: a recovery that forgets compensation must be caught.
        if campaign.violations:
            v = campaign.violations[0]
            print(
                f"ablation detected (seed {v.seed}, {v.protocol}, "
                f"{v.site}): the crash oracle sees broken recovery"
            )
            return 0
        print("ablation NOT detected — the crash oracle is blind")
        return 1
    if not campaign.violations:
        print(
            "no crash-oracle violations"
            if campaign.ok
            else "simulator errors"
        )
        return 0 if campaign.ok else 1
    violation = campaign.violations[0]
    with open(args.out, "w") as fh:
        json.dump(violation.counterexample, fh, indent=2)
        fh.write("\n")
    for line in violation.outcome.violations:
        print(f"violation: {line}")
    print(
        f"wrote {args.out}; reproduce with: "
        f"python -m repro fuzz --replay {args.out}"
    )
    return 1


def _replay_crash(path: str, data: dict) -> int:
    from repro.faults import FaultPlan
    from repro.fuzz.crash import DurableConfig, run_armed_cell
    from repro.fuzz.generator import WorkloadSpec

    spec = WorkloadSpec.from_dict(data["spec"])
    plan = FaultPlan.from_dict(data["plan"])
    durable = (
        DurableConfig.from_dict(data["durable"])
        if data.get("durable")
        else None
    )
    outcome = run_armed_cell(
        spec,
        data["protocol"],
        plan,
        skip_compensation=data.get("skip_compensation", False),
        durable=durable,
    )
    print(
        f"replay {path}: protocol={data['protocol']} "
        f"plan=({plan.crash_site}#{plan.crash_at}) "
        + (
            f"durable=(frames={durable.frames}, "
            f"ckpt={durable.checkpoint_every}, "
            f"skip_log_force={durable.skip_log_force}) "
            if durable
            else ""
        )
        + f"crashed={outcome.crashed} winners={outcome.winners} "
        f"losers={outcome.losers}"
    )
    for line in outcome.violations:
        print(f"violation: {line}")
    return 1 if outcome.violations else 0


def _build_certify_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "certify",
        help="fast black-box certification of one fuzz cell's history: "
        "near-linear on conflict-sparse stretches, exact-engine fallback "
        "on suspicion, byte-identical witnesses on failure",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="generator seed (doubles as the executor seed); required "
        "unless --replay is given",
    )
    parser.add_argument(
        "--protocol", default=None, choices=list(FUZZ_PROTOCOLS),
        help="scheduler protocol for the cell; required unless --replay",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--long", type=int, default=None, metavar="N",
        help="use the long conflict-sparse generator profile with N "
        "top-level programs (the C14 regime; overrides --smoke)",
    )
    parser.add_argument(
        "--ablate", action="store_true",
        help="break the first leaf object's commutativity entries in the "
        "judge only — the self-test that must produce a violation",
    )
    parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="certify the history of a fuzz counterexample file instead "
        "of a (seed, protocol) cell",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="also run the exact oracle and compare verdict and witness; "
        f"any divergence exits {EXIT_OPERATIONAL}",
    )
    _add_timeout_flag(parser)


def cmd_certify(args) -> int:
    import json

    from repro.core.certify import certify_history
    from repro.fuzz import Ablation, GeneratorProfile
    from repro.fuzz.driver import execute_cell
    from repro.fuzz.generator import WorkloadSpec, generate
    from repro.fuzz.oracle import check_history, strictness_for

    ablation = None
    if args.replay is not None:
        with open(args.replay) as fh:
            data = json.load(fh)
        if data.get("kind") == "crash":
            print(
                "error: crash counterexamples have no committed history to "
                "certify; use `repro fuzz --replay`",
                file=sys.stderr,
            )
            return EXIT_OPERATIONAL
        spec = WorkloadSpec.from_dict(data["workload"])
        protocol = data["protocol"]
        exec_seed = data["exec_seed"]
        ablation = Ablation.from_dict(data.get("ablation"))
        label = args.replay
    else:
        if args.seed is None or args.protocol is None:
            print(
                "error: --seed and --protocol are required without --replay",
                file=sys.stderr,
            )
            return EXIT_OPERATIONAL
        profile = None
        if args.long is not None:
            profile = GeneratorProfile.long(args.long)
        elif args.smoke:
            profile = GeneratorProfile.smoke()
        spec = generate(args.seed, profile)
        protocol = args.protocol
        exec_seed = None
        if args.ablate:
            ablation = Ablation(object_name=spec.leaf_objects[0].name)
        label = f"seed {args.seed}"

    strict = strictness_for(protocol)
    result = execute_cell(spec, protocol, exec_seed=exec_seed)
    report = certify_history(result, ablation, strict_cross_object=strict)
    print(
        f"certify {label} under {protocol}: "
        f"{'VIOLATION' if report.violation else 'ok'} "
        f"({report.committed} committed, {report.actions} actions; "
        f"{report.fast_commits} fast / {report.escalated_commits} exact, "
        f"{report.stragglers_scanned} stragglers scanned"
        + (
            f"; escalated: {report.escalation_reason}"
            if report.escalated
            else ""
        )
        + ")"
    )
    if report.violation:
        print(report.description)
    if args.diff:
        exact = check_history(result, ablation, strict_cross_object=strict)
        diverged = exact.violation != report.violation or (
            report.violation
            and exact.description != report.as_oracle_report().description
        )
        if diverged:
            print(
                "DIVERGENCE: certifier and exact oracle disagree",
                file=sys.stderr,
            )
            print(
                f"  certifier: violation={report.violation}", file=sys.stderr
            )
            print(f"  exact:     violation={exact.violation}", file=sys.stderr)
            if exact.violation:
                print(f"  exact witness: {exact.description}", file=sys.stderr)
            return EXIT_OPERATIONAL
        print("diff: certifier verdict and witness match the exact oracle")
    return EXIT_FAILURE if report.violation else EXIT_OK


def _build_recover_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "recover",
        help="recover a database from a WAL file and report what was done",
    )
    parser.add_argument(
        "wal", nargs="?", default=None,
        help="JSONL write-ahead log file (defaults to "
        "DATA_DIR/wal.jsonl when --data-dir is given)",
    )
    parser.add_argument(
        "--seed", type=int, required=True,
        help="generator seed of the workload the log belongs to (recovery "
        "re-creates the object directory from the same bootstrap)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="the workload used the smoke generator profile",
    )
    parser.add_argument(
        "--skip-compensation", action="store_true",
        help="ablation: recover without replaying compensations",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="recover a file-backed data directory in place: start redo "
        "from the last complete fuzzy checkpoint, write compensations "
        "back into DIR/wal.jsonl, and leave DIR clean for reopening",
    )
    parser.add_argument(
        "--frames", type=int, default=256, metavar="N",
        help="buffer-pool frames for --data-dir recovery",
    )


def cmd_recover(args) -> int:
    import os

    from repro.fuzz.crash import _build_db
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.oodb.wal import WriteAheadLog, recover, store_digest, verify_log

    if args.wal is None and args.data_dir is None:
        print("recover: either a WAL file or --data-dir is required")
        return EXIT_OPERATIONAL
    wal_path = args.wal
    if wal_path is None:
        wal_path = os.path.join(args.data_dir, "wal.jsonl")
    wal = WriteAheadLog.load(wal_path)
    verify_log(wal.to_list())
    profile = GeneratorProfile.smoke() if args.smoke else None
    spec = generate(args.seed, profile)
    store = None
    if args.data_dir is not None:
        from repro.oodb.store import FileBackedPageStore

        store = FileBackedPageStore(args.data_dir, frames=args.frames)
        # In-place recovery: compensations must extend the persistent
        # log, so re-attach the backing path the loader dropped.
        wal.path = wal_path
    db, _ = _build_db(spec)
    # Without --data-dir the loaded log has no backing path, so
    # recovery's own records stay in memory — the input file is never
    # modified.
    report = recover(
        wal, db, store=store, skip_compensation=args.skip_compensation
    )
    print(report.describe())
    print(f"page-store digest: {store_digest(db.store)}")
    if store is not None:
        db.store.close()
        wal.close()
        print(f"data dir {args.data_dir} recovered and checkpointed")
    return 0


def _build_trace_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "trace",
        help="re-run one fuzz cell with the span tracer attached and emit "
        "its call trees as Chrome trace-event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--seed", type=int, required=True,
        help="generator seed (doubles as the executor seed, so this "
        "reproduces any campaign cell, e.g. a counterexample's)",
    )
    parser.add_argument(
        "--protocol", required=True, choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the Chrome trace here instead of stdout",
    )
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="also dump the raw typed event stream as JSONL",
    )
    parser.add_argument(
        "--render", action="store_true",
        help="print the span trees as indented text instead of JSON",
    )
    parser.add_argument(
        "--wall", action="store_true",
        help="record wall-clock time on spans alongside logical ticks",
    )


def cmd_trace(args) -> int:
    import json

    from repro.fuzz.driver import execute_cell
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.obs import (
        EventBus,
        EventLog,
        SpanTracer,
        chrome_trace,
        events_to_jsonl,
        validate_chrome_trace,
    )

    profile = GeneratorProfile.smoke() if args.smoke else None
    spec = generate(args.seed, profile)
    bus = EventBus()
    tracer = SpanTracer(bus, wall=args.wall)
    log = EventLog(bus) if args.events else None
    result = execute_cell(spec, args.protocol, bus=bus)
    tracer.finish(result.makespan)
    if log is not None:
        with open(args.events, "w") as fh:
            fh.write(events_to_jsonl(log))
        print(
            f"wrote {args.events}: {len(log)} events", file=sys.stderr
        )
    if args.render:
        print(tracer.render())
        return 0
    trace = chrome_trace(tracer.trees())
    problems = validate_chrome_trace(trace)
    for problem in problems:
        print(f"trace problem: {problem}", file=sys.stderr)
    text = json.dumps(trace, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"wrote {args.out}: {len(trace['traceEvents'])} trace events, "
            f"{len(tracer.trees())} transaction tree(s)"
        )
    else:
        print(text)
    return 1 if problems else 0


def _build_stats_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "stats",
        help="re-run one fuzz cell and print its metrics registry "
        "(scheduler, lock table, WAL, analysis engine)",
    )
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument(
        "--protocol", required=True, choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--format", choices=("table", "prometheus"), default="table",
        help="table (default) or Prometheus text exposition format",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run the cell on the sharded runtime and print the merged "
        "per-shard metric registry (shard label folded into one table)",
    )


def cmd_stats(args) -> int:
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.obs import prometheus_text

    profile = GeneratorProfile.smoke() if args.smoke else None
    if args.shards > 1:
        from repro.shard import run_sharded_cell

        profile = (profile or GeneratorProfile()).grouped(args.shards)
        spec = generate(args.seed, profile)
        result = run_sharded_cell(spec, args.protocol, args.shards)
        # Numeric samples are already summed across the per-shard
        # registries; the flattened keys keep exposition sample syntax.
        flat = dict(sorted(result.metrics.items()))
        title = f"seed {args.seed}, {args.protocol}, {args.shards} shards"
        if args.format == "prometheus":
            print(f"# merged across {args.shards} shards")
            for name, value in flat.items():
                print(f"{name} {value}")
            return 0
    else:
        from repro.fuzz.driver import execute_cell

        spec = generate(args.seed, profile)
        result = execute_cell(spec, args.protocol)
        title = f"seed {args.seed}, {args.protocol}"
        if args.format == "prometheus":
            print(prometheus_text(result.db.metrics), end="")
            return 0
        flat = result.db.metrics.as_dict()
    rows = [[name, value] for name, value in flat.items()]
    print(render_table(["metric", "value"], rows, title=title))
    return 0


def _build_serve_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "serve",
        help="run the multi-tenant transaction service (JSONL-over-TCP "
        "requests + Prometheus metrics endpoint)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7411,
        help="request port (0 = pick a free port)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=7412,
        help="Prometheus /metrics port (0 = pick a free port)",
    )
    parser.add_argument(
        "--protocol", default="page-2pl", choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed of the hosted object graph and the executor",
    )
    parser.add_argument(
        "--deadline-ticks", type=int, default=4000,
        help="default per-request deadline budget in logical ticks "
        "(0 = no deadline)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="per-tenant concurrent (queued+executing) transaction quota",
    )
    parser.add_argument(
        "--rate", type=float, default=0.0,
        help="per-tenant sustained request rate, tokens/second (0 = off)",
    )
    parser.add_argument(
        "--burst", type=int, default=8,
        help="per-tenant token-bucket burst capacity",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8,
        help="per-tenant admitted-but-waiting queue bound",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="global engine queue bound across all tenants",
    )
    parser.add_argument(
        "--session-read-timeout", type=float, default=5.0,
        help="seconds before a stalled client session is dropped",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the hosted object graph across N shards and run "
        "batches on the sharded runtime (cross-shard requests two-phase "
        "commit through the Def 15/16 coordinator); excludes --data-dir",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="run on the durable file-backed storage engine rooted here: "
        "page images + DIR/wal.jsonl survive restarts (recover with "
        "`repro recover --data-dir DIR`)",
    )
    parser.add_argument(
        "--frames", type=int, default=256,
        help="buffer-pool frame count for --data-dir",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=512,
        help="fuzzy-checkpoint interval in WAL records for --data-dir",
    )
    _add_timeout_flag(parser)


def cmd_serve(args) -> int:
    from repro.errors import DatabaseError
    from repro.runtime.executor import RetryPolicy
    from repro.service import (
        ServiceConfig,
        ServiceServer,
        TenantQuota,
        TransactionService,
    )

    config = ServiceConfig(
        protocol=args.protocol,
        seed=args.seed,
        deadline_ticks=args.deadline_ticks or None,
        queue_capacity=args.queue_capacity,
        default_quota=TenantQuota(
            max_inflight=args.max_inflight,
            rate=args.rate,
            burst=args.burst,
            max_queue_depth=args.queue_depth,
        ),
        retry_policy=RetryPolicy(),
        data_dir=args.data_dir,
        frames=args.frames,
        checkpoint_every=args.checkpoint_every,
        shards=args.shards,
    )
    try:
        service = TransactionService(config)
    except DatabaseError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_OPERATIONAL
    server = ServiceServer(
        service,
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        session_read_timeout=args.session_read_timeout,
    )
    server.start()
    print(
        f"serving protocol={args.protocol} seed={args.seed} on "
        f"{args.host}:{server.port} "
        f"(metrics http://{args.host}:{server.metrics_port}/metrics)"
        + (f" shards={args.shards}" if args.shards > 1 else "")
        + (f" data-dir={args.data_dir}" if args.data_dir else ""),
        flush=True,
    )
    # Graceful shutdown on SIGTERM too: background jobs in non-interactive
    # shells (CI) start with SIGINT ignored, so ctrl-C semantics must also
    # be reachable via `kill -TERM`.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    timed_out = False
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    try:
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
            time.sleep(0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    audit = service.audit()
    print(f"shutdown: audit={'ok' if audit['ok'] else audit}", flush=True)
    if timed_out:
        print(f"timed out after {args.timeout:g}s", file=sys.stderr)
        return EXIT_TIMEOUT
    return EXIT_OK if audit["ok"] else EXIT_FAILURE


def _build_load_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "load",
        help="drive a client fleet against a running service and report "
        "throughput, latency percentiles and backpressure tallies",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument(
        "--tenants", type=int, default=3, help="tenants in the fleet"
    )
    parser.add_argument(
        "--clients-per-tenant", type=int, default=2,
        help="concurrent client connections per tenant",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=10,
        help="requests each client submits",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--faults", action="store_true",
        help="arm a seeded service fault plan per client (slow clients, "
        "mid-frame stalls, post-submit disconnects, arrival bursts)",
    )
    parser.add_argument(
        "--deadline-ticks", type=int, default=None,
        help="per-request deadline budget to ask the server for",
    )
    parser.add_argument(
        "--think", type=float, default=0.0, metavar="SECONDS",
        help="mean client think time between requests",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="assert the server is running with N shards before driving "
        "load (probes the config op; mismatch is an operational error)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    _add_timeout_flag(parser)


def cmd_load(args) -> int:
    import json

    from repro.faults.service import ServiceFaultPlan
    from repro.service.client import run_load

    if args.shards is not None:
        from repro.service.client import ServiceClient

        with ServiceClient(args.host, args.port) as probe:
            config = probe.request({"op": "config"})
        served = config.get("config", config).get("shards", 1)
        if served != args.shards:
            print(
                f"error: server runs shards={served}, expected "
                f"--shards {args.shards}",
                file=sys.stderr,
            )
            return EXIT_OPERATIONAL

    fault_plan_for = None
    if args.faults:

        def fault_plan_for(tenant, idx, n_requests):
            client_seed = hash((args.seed, tenant, idx)) & 0x7FFFFFFF
            return ServiceFaultPlan.from_seed(client_seed, n_requests)

    report = run_load(
        args.host,
        args.port,
        tenants=[f"tenant{i}" for i in range(max(1, args.tenants))],
        clients_per_tenant=args.clients_per_tenant,
        requests_per_client=args.requests_per_client,
        seed=args.seed,
        fault_plan_for=fault_plan_for,
        deadline_ticks=args.deadline_ticks,
        think_time_s=args.think,
    )
    summary = report.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        rows = [
            [key, json.dumps(value) if isinstance(value, dict) else value]
            for key, value in summary.items()
        ]
        print(render_table(["measure", "value"], rows, title="load report"))
    answered = (
        summary["committed"]
        + summary["gave_up"]
        + summary["errors"]
        + summary["invalid"]
        + summary["rejected_final"]
    )
    if summary["errors"] or answered != summary["requests"]:
        return EXIT_FAILURE
    return EXIT_OK


def _build_shard_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "shard",
        help="run one workload cell on the sharded multi-core runtime and "
        "print its canonical report (cross-shard 2PC, composed Def 15/16 "
        "oracle); --single prints the single-core reference instead",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--protocol", default="page-2pl", choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard count; the workload is grouped (cross-shard) only "
        "when N > 1, so --shards 1 stays comparable to --single",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--single", action="store_true",
        help="print the single-core reference report for the same spec "
        "(diff against a --shards 1 run for the byte-identity check)",
    )
    parser.add_argument(
        "--mp", action="store_true",
        help="fan shards out to real worker processes instead of the "
        "deterministic in-process epoch driver",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="write per-shard WAL segments + the coordinator decide log "
        "under DIR (resolve after a crash with --recover)",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="instead of running, resolve the WAL segments under "
        "--data-dir: presumed abort for undecided prepares, forced "
        "commit for durable decide-commit verdicts",
    )
    _add_timeout_flag(parser)


def cmd_shard(args) -> int:
    from repro.fuzz.generator import GeneratorProfile, generate

    profile = GeneratorProfile.smoke() if args.smoke else GeneratorProfile()
    if args.shards > 1:
        profile = profile.grouped(args.shards)
    spec = generate(args.seed, profile)

    if args.recover:
        from repro.shard import resolve_segments

        if not args.data_dir:
            print("error: --recover requires --data-dir", file=sys.stderr)
            return EXIT_OPERATIONAL
        report = resolve_segments(
            spec, args.shards, args.data_dir, protocol=args.protocol
        )
        for base, verdict in sorted(report.decisions.items()):
            print(f"decision {base}: {verdict}")
        for resolution in report.shards:
            print(
                f"shard {resolution.shard}: "
                f"resolved_commits={sorted(resolution.resolved_commits)} "
                f"presumed_aborts={sorted(resolution.presumed_aborts)} "
                f"winners={sorted(resolution.recovery.winners)} "
                f"digest={resolution.digest[:12]}"
            )
        print(f"winners: {sorted(report.winners)}")
        return EXIT_OK

    if args.single:
        from repro.shard import single_core_text

        print(single_core_text(spec, args.protocol), end="")
        return EXIT_OK

    from repro.shard import run_sharded_cell

    result = run_sharded_cell(
        spec,
        args.protocol,
        args.shards,
        mp=args.mp,
        data_dir=args.data_dir,
        collect_events=True,
    )
    print(result.canonical_text(), end="")
    return EXIT_OK if result.ok else EXIT_FAILURE


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Serializability in Object-Oriented "
        "Database Systems' (ICDE 1990)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _build_compare_parser(subparsers)
    subparsers.add_parser("census", help="exhaustive schedule-space census")
    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's dependency tables"
    )
    figures.add_argument(
        "--verbose", action="store_true", help="show dependency provenance"
    )
    _build_fuzz_parser(subparsers)
    _build_certify_parser(subparsers)
    _build_recover_parser(subparsers)
    _build_trace_parser(subparsers)
    _build_stats_parser(subparsers)
    _build_serve_parser(subparsers)
    _build_load_parser(subparsers)
    _build_shard_parser(subparsers)
    args = parser.parse_args(argv)
    try:
        if args.command == "compare":
            return cmd_compare(args)
        if args.command == "census":
            return cmd_census(args)
        if args.command == "fuzz":
            return _with_timeout(cmd_fuzz, args)
        if args.command == "certify":
            return _with_timeout(cmd_certify, args)
        if args.command == "recover":
            return cmd_recover(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "stats":
            return cmd_stats(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "load":
            return _with_timeout(cmd_load, args)
        if args.command == "shard":
            return _with_timeout(cmd_shard, args)
        return cmd_figures(args)
    except (OSError, ConnectionError) as exc:
        # Operational failures (unreachable server, missing file) get the
        # uniform exit code, distinct from "ran and found a violation".
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_OPERATIONAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
