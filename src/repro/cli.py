"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's common entry points without writing
code:

- ``compare`` — run a workload under selected protocols and print the
  RunMetrics table (the C2/C3 harness);
- ``census`` — the exhaustive schedule-space census (C5);
- ``figures`` — regenerate the paper's Example 1 / Example 4 dependency
  tables with provenance;
- ``fuzz`` — the randomized schedule fuzzer: generated workloads under all
  five protocols, judged by the oo-serializability oracle, with greedy
  shrinking of any failure into a seed-reproducible counterexample file;
- ``recover`` — replay a WAL file through crash recovery;
- ``trace`` — re-run any fuzz cell with the span tracer attached and emit
  its open-nested call trees as Chrome trace-event JSON (C12);
- ``stats`` — re-run any fuzz cell and print its metrics registry, as a
  table or in Prometheus text exposition format.
"""

from __future__ import annotations

import argparse
import functools
import sys

from repro.analysis import RunMetrics, compare_protocols, render_table
from repro.analysis.compare import PROTOCOLS


def _build_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="run a workload under several protocols"
    )
    parser.add_argument(
        "--workload",
        choices=("encyclopedia", "banking", "editing", "index"),
        default="encyclopedia",
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(PROTOCOLS),
        choices=list(PROTOCOLS) + ["optimistic-oo"],
    )
    parser.add_argument("--transactions", type=int, default=8)
    parser.add_argument("--ops", type=int, default=3)
    parser.add_argument("--keys-per-page", type=int, default=32)
    parser.add_argument("--think", type=int, default=2)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    parser.add_argument("--workload-seed", type=int, default=0)


def _workload(args):
    if args.workload == "encyclopedia":
        from repro.workloads import (
            EncyclopediaWorkload,
            build_encyclopedia_workload,
            encyclopedia_layers,
        )

        spec = EncyclopediaWorkload(
            n_transactions=args.transactions,
            ops_per_transaction=args.ops,
            keys_per_page=args.keys_per_page,
            think_ticks=args.think,
            seed=args.workload_seed,
        )
        return (
            functools.partial(build_encyclopedia_workload, spec=spec),
            encyclopedia_layers(),
        )
    if args.workload == "banking":
        from repro.workloads import BankingWorkload, build_banking_workload
        from repro.workloads.banking_wl import banking_layers

        spec = BankingWorkload(
            n_transactions=args.transactions,
            think_ticks=args.think,
            seed=args.workload_seed,
        )
        return functools.partial(build_banking_workload, spec=spec), banking_layers()
    if args.workload == "editing":
        from repro.workloads import EditingWorkload, build_editing_workload
        from repro.workloads.editing_wl import editing_layers

        spec = EditingWorkload(
            n_authors=args.transactions,
            think_ticks=max(args.think, 1),
            seed=args.workload_seed,
        )
        return functools.partial(build_editing_workload, spec=spec), editing_layers()
    from repro.workloads import IndexWorkload, build_index_workload, index_layers

    spec = IndexWorkload(
        n_transactions=args.transactions,
        ops_per_transaction=args.ops,
        keys_per_page=args.keys_per_page,
        think_ticks=args.think,
        seed=args.workload_seed,
    )
    return functools.partial(build_index_workload, spec=spec), index_layers()


def cmd_compare(args) -> int:
    builder, layers = _workload(args)
    comparison = compare_protocols(
        builder,
        protocols=tuple(args.protocols),
        layers=layers,
        seeds=tuple(args.seeds),
    )
    print(
        render_table(
            RunMetrics.headers(),
            comparison.table_rows(),
            title=f"{args.workload} workload, {len(args.seeds)} seed(s), means",
        )
    )
    return 0


def cmd_census(args) -> int:
    from repro.core.enumerate import ScheduleSpace, classify_schedules
    from repro.scenarios.schedule_space import (
        single_leaf_commuting,
        three_txn_ring,
        two_leaf_commuting,
        two_leaf_same_key,
    )

    rows = []
    for name, build in (
        ("single leaf, distinct keys", single_leaf_commuting),
        ("two leaves, distinct keys", two_leaf_commuting),
        ("two leaves, same keys", two_leaf_same_key),
        ("three txns, ring over 3 leaves", three_txn_ring),
    ):
        rows.append([name, *classify_schedules(build).row()])
    print(
        render_table(
            ["scenario", *ScheduleSpace.headers()],
            rows,
            title="exhaustive schedule census",
        )
    )
    return 0


def cmd_figures(args) -> int:
    from repro.core import analyze_system
    from repro.scenarios import (
        example4_system,
        scenario_commuting_inserts,
        scenario_same_key_conflict,
    )
    from repro.scenarios.example4 import figure8_rows

    for title, build in (
        ("Example 1 — commuting inserts", scenario_commuting_inserts),
        ("Example 1 — same-key conflict", scenario_same_key_conflict),
    ):
        scenario = build()
        verdict, schedules = analyze_system(scenario.system, scenario.registry)
        print(f"--- {title} ---")
        for oid in ("Page4712", "Leaf11", "BpTree"):
            print(schedules[oid].describe(verbose=args.verbose))
        print(f"oo-serializable: {verdict.oo_serializable}, "
              f"top constraints: {sorted(verdict.top_order_constraints)}\n")

    scenario = example4_system()
    verdict, schedules = analyze_system(scenario.system, scenario.registry)
    print(render_table(
        ["object", "schedule dependencies"],
        figure8_rows(schedules),
        title="Example 4 / Figure 8",
    ))
    print(f"serial order: {verdict.serial_order}")
    return 0


def _build_fuzz_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "fuzz", help="randomized schedule fuzzing with the oo oracle"
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of generator seeds to run (0..N-1)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="run exactly one generator seed (reproduction mode)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=list(FUZZ_PROTOCOLS),
        choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--ablate", action="store_true",
        help="break the first leaf object's commutativity entries in the "
        "oracle only — the self-test that must produce a violation",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="crash-recovery mode: kill each run at an armed fault site, "
        "recover from the durable WAL prefix, judge with the crash oracle",
    )
    parser.add_argument(
        "--crash-ablate", action="store_true",
        help="crash mode with compensation replay disabled in recovery — "
        "the self-test that the crash oracle must catch",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard seeds across N worker processes (0 = one per CPU); "
        "the campaign report is byte-identical to a serial run",
    )
    parser.add_argument(
        "--max-violations", type=int, default=1,
        help="stop the campaign after this many violations",
    )
    parser.add_argument(
        "--out", default="fuzz_counterexample.json",
        help="where to write the shrunk counterexample on failure",
    )
    parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a counterexample file instead of running a campaign",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="dump Chrome traces of violating/gave-up/errored cells here; "
        "tracing only observes, so the campaign report is unchanged",
    )


def cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import (
        Ablation,
        GeneratorProfile,
        counterexample_dict,
        run_campaign,
        run_cell,
        shrink,
    )
    from repro.fuzz.generator import WorkloadSpec

    if args.replay is not None:
        with open(args.replay) as fh:
            data = json.load(fh)
        if data.get("kind") == "crash":
            return _replay_crash(args.replay, data)
        spec = WorkloadSpec.from_dict(data["workload"])
        _, report = run_cell(
            spec,
            data["protocol"],
            exec_seed=data["exec_seed"],
            ablation=Ablation.from_dict(data.get("ablation")),
        )
        print(
            f"replay {args.replay}: protocol={data['protocol']} "
            f"exec_seed={data['exec_seed']} "
            f"oo_serializable={report.oo_serializable} "
            f"conventional={report.conventional_serializable}"
        )
        if report.violation:
            print(report.description)
        return 1 if report.violation else 0

    profile = GeneratorProfile.smoke() if args.smoke else None
    seeds = [args.seed] if args.seed is not None else list(range(args.seeds))
    if args.crash or args.crash_ablate:
        return _cmd_fuzz_crash(args, seeds, profile)
    campaign = run_campaign(
        seeds=seeds,
        protocols=tuple(args.protocols),
        profile=profile,
        ablate_first_leaf=args.ablate,
        max_violations=args.max_violations,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
    )
    header, rows = campaign.table()
    print(
        render_table(
            header,
            rows,
            title=f"fuzz campaign, {campaign.seeds_run} seed(s)"
            + (" [ablated oracle]" if args.ablate else ""),
        )
    )
    for seed, protocol, error in campaign.errors:
        print(f"ERROR seed={seed} protocol={protocol}: {error}")
    if not campaign.violations:
        print("no oracle violations" if campaign.ok else "simulator errors")
        return 0 if campaign.ok else 1

    violation = campaign.violations[0]
    print(
        f"violation: generator seed {violation.seed} under "
        f"{violation.protocol}; shrinking..."
    )
    small, stats = shrink(
        violation.spec,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
    )
    payload = counterexample_dict(
        small,
        violation.protocol,
        exec_seed=violation.seed,
        ablation=violation.ablation,
        report=violation.report,
        stats=stats,
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(
        f"shrunk {stats.programs_before}->{stats.programs_after} programs, "
        f"{stats.sends_before}->{stats.sends_after} sends "
        f"({stats.evals} evals); wrote {args.out}"
    )
    print(
        f"reproduce with: python -m repro fuzz --replay {args.out}  "
        f"(or --seed {violation.seed}"
        + (" --smoke" if args.smoke else "")
        + (" --ablate" if violation.ablation else "")
        + f" --protocols {violation.protocol})"
    )
    return 1


def _cmd_fuzz_crash(args, seeds, profile) -> int:
    import json

    from repro.fuzz.crash import run_crash_campaign

    skip = args.crash_ablate
    campaign = run_crash_campaign(
        seeds=seeds,
        protocols=tuple(args.protocols),
        profile=profile,
        skip_compensation=skip,
        max_violations=args.max_violations,
        jobs=args.jobs,
    )
    header, rows = campaign.table()
    print(
        render_table(
            header,
            rows,
            title=f"crash campaign, {campaign.seeds_run} seed(s), "
            f"{campaign.crash_runs} crash run(s)"
            + (" [compensation replay DISABLED]" if skip else ""),
        )
    )
    for seed, protocol, site, error in campaign.errors:
        print(f"ERROR seed={seed} protocol={protocol} site={site}: {error}")
    if skip:
        # Self-test: a recovery that forgets compensation must be caught.
        if campaign.violations:
            v = campaign.violations[0]
            print(
                f"ablation detected (seed {v.seed}, {v.protocol}, "
                f"{v.site}): the crash oracle sees broken recovery"
            )
            return 0
        print("ablation NOT detected — the crash oracle is blind")
        return 1
    if not campaign.violations:
        print(
            "no crash-oracle violations"
            if campaign.ok
            else "simulator errors"
        )
        return 0 if campaign.ok else 1
    violation = campaign.violations[0]
    with open(args.out, "w") as fh:
        json.dump(violation.counterexample, fh, indent=2)
        fh.write("\n")
    for line in violation.outcome.violations:
        print(f"violation: {line}")
    print(
        f"wrote {args.out}; reproduce with: "
        f"python -m repro fuzz --replay {args.out}"
    )
    return 1


def _replay_crash(path: str, data: dict) -> int:
    from repro.faults import FaultPlan
    from repro.fuzz.crash import run_armed_cell
    from repro.fuzz.generator import WorkloadSpec

    spec = WorkloadSpec.from_dict(data["spec"])
    plan = FaultPlan.from_dict(data["plan"])
    outcome = run_armed_cell(
        spec,
        data["protocol"],
        plan,
        skip_compensation=data.get("skip_compensation", False),
    )
    print(
        f"replay {path}: protocol={data['protocol']} "
        f"plan=({plan.crash_site}#{plan.crash_at}) "
        f"crashed={outcome.crashed} winners={outcome.winners} "
        f"losers={outcome.losers}"
    )
    for line in outcome.violations:
        print(f"violation: {line}")
    return 1 if outcome.violations else 0


def _build_recover_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "recover",
        help="recover a database from a WAL file and report what was done",
    )
    parser.add_argument("wal", help="JSONL write-ahead log file")
    parser.add_argument(
        "--seed", type=int, required=True,
        help="generator seed of the workload the log belongs to (recovery "
        "re-creates the object directory from the same bootstrap)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="the workload used the smoke generator profile",
    )
    parser.add_argument(
        "--skip-compensation", action="store_true",
        help="ablation: recover without replaying compensations",
    )


def cmd_recover(args) -> int:
    from repro.fuzz.crash import _build_db
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.oodb.wal import WriteAheadLog, recover, store_digest, verify_log

    wal = WriteAheadLog.load(args.wal)
    verify_log(wal.to_list())
    profile = GeneratorProfile.smoke() if args.smoke else None
    spec = generate(args.seed, profile)
    db, _ = _build_db(spec)
    # The loaded log has no backing path, so recovery's own records stay
    # in memory — the input file is never modified.
    report = recover(wal, db, skip_compensation=args.skip_compensation)
    print(report.describe())
    print(f"page-store digest: {store_digest(db.store)}")
    return 0


def _build_trace_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "trace",
        help="re-run one fuzz cell with the span tracer attached and emit "
        "its call trees as Chrome trace-event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--seed", type=int, required=True,
        help="generator seed (doubles as the executor seed, so this "
        "reproduces any campaign cell, e.g. a counterexample's)",
    )
    parser.add_argument(
        "--protocol", required=True, choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the Chrome trace here instead of stdout",
    )
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="also dump the raw typed event stream as JSONL",
    )
    parser.add_argument(
        "--render", action="store_true",
        help="print the span trees as indented text instead of JSON",
    )
    parser.add_argument(
        "--wall", action="store_true",
        help="record wall-clock time on spans alongside logical ticks",
    )


def cmd_trace(args) -> int:
    import json

    from repro.fuzz.driver import execute_cell
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.obs import (
        EventBus,
        EventLog,
        SpanTracer,
        chrome_trace,
        events_to_jsonl,
        validate_chrome_trace,
    )

    profile = GeneratorProfile.smoke() if args.smoke else None
    spec = generate(args.seed, profile)
    bus = EventBus()
    tracer = SpanTracer(bus, wall=args.wall)
    log = EventLog(bus) if args.events else None
    result = execute_cell(spec, args.protocol, bus=bus)
    tracer.finish(result.makespan)
    if log is not None:
        with open(args.events, "w") as fh:
            fh.write(events_to_jsonl(log))
        print(
            f"wrote {args.events}: {len(log)} events", file=sys.stderr
        )
    if args.render:
        print(tracer.render())
        return 0
    trace = chrome_trace(tracer.trees())
    problems = validate_chrome_trace(trace)
    for problem in problems:
        print(f"trace problem: {problem}", file=sys.stderr)
    text = json.dumps(trace, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"wrote {args.out}: {len(trace['traceEvents'])} trace events, "
            f"{len(tracer.trees())} transaction tree(s)"
        )
    else:
        print(text)
    return 1 if problems else 0


def _build_stats_parser(subparsers) -> None:
    from repro.fuzz import FUZZ_PROTOCOLS

    parser = subparsers.add_parser(
        "stats",
        help="re-run one fuzz cell and print its metrics registry "
        "(scheduler, lock table, WAL, analysis engine)",
    )
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument(
        "--protocol", required=True, choices=list(FUZZ_PROTOCOLS),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the small/fast smoke generator profile",
    )
    parser.add_argument(
        "--format", choices=("table", "prometheus"), default="table",
        help="table (default) or Prometheus text exposition format",
    )


def cmd_stats(args) -> int:
    from repro.fuzz.driver import execute_cell
    from repro.fuzz.generator import GeneratorProfile, generate
    from repro.obs import prometheus_text

    profile = GeneratorProfile.smoke() if args.smoke else None
    spec = generate(args.seed, profile)
    result = execute_cell(spec, args.protocol)
    registry = result.db.metrics
    if args.format == "prometheus":
        print(prometheus_text(registry), end="")
        return 0
    rows = [[name, value] for name, value in registry.as_dict().items()]
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"seed {args.seed}, {args.protocol}",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Serializability in Object-Oriented "
        "Database Systems' (ICDE 1990)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _build_compare_parser(subparsers)
    subparsers.add_parser("census", help="exhaustive schedule-space census")
    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's dependency tables"
    )
    figures.add_argument(
        "--verbose", action="store_true", help="show dependency provenance"
    )
    _build_fuzz_parser(subparsers)
    _build_recover_parser(subparsers)
    _build_trace_parser(subparsers)
    _build_stats_parser(subparsers)
    args = parser.parse_args(argv)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "census":
        return cmd_census(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    if args.command == "recover":
        return cmd_recover(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "stats":
        return cmd_stats(args)
    return cmd_figures(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
