"""A VODAK-like object database substrate.

The paper's premise: *"In an object-oriented database the objects are
encapsulated, i.e., objects are only accessible by methods defined in the
database system."*  This package provides exactly that substrate:

- :mod:`repro.oodb.object_model` — :class:`DatabaseObject` base class with
  encapsulated, page-backed state and a per-type commutativity
  specification;
- :mod:`repro.oodb.method` — the ``@dbmethod`` decorator registering
  methods, their update/read classification and their compensations (open
  nested transactions abort by compensation, not by low-level undo);
- :mod:`repro.oodb.pages` — slotted pages with read/write primitive
  actions, the Axiom 1 bootstrap level ("in database systems exists a
  common object type which methods call no other actions: the page");
- :mod:`repro.oodb.context` / :mod:`repro.oodb.log` — transaction contexts
  with per-frame undo and compensation logs;
- :mod:`repro.oodb.database` — :class:`ObjectDatabase`: OID management,
  message dispatch with automatic call-tree tracing (every run yields a
  :class:`repro.core.transactions.TransactionSystem` ready for analysis),
  and the hook points for a concurrency-control scheduler.
"""

from repro.oodb.database import ObjectDatabase
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject
from repro.oodb.pages import Page, PageStore
from repro.oodb.session import DatabaseSession

__all__ = [
    "DatabaseObject",
    "DatabaseSession",
    "ObjectDatabase",
    "Page",
    "PageStore",
    "dbmethod",
]
