"""Pages: the primitive level of the database.

Pages are the paper's bootstrap object type: *"in database systems exists a
common object type which methods call no other actions: the page."*  Every
object's state lives in the slots of a page; reading a slot is a primitive
``read`` action, writing one a primitive ``write`` action, and those actions
carry classical read/write commutativity.

A page has a bounded *capacity* (number of slots) so that structures built
on top experience realistic page overflow — the B+ tree's leaf split is
driven by this limit, which is also the knob behind the paper's "roughly up
to 500" keys-per-page observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PageError

#: Default number of slots per page.
DEFAULT_PAGE_CAPACITY = 64


@dataclass
class Page:
    """A slotted page: a bounded mapping from slot keys to values."""

    page_id: str
    capacity: int = DEFAULT_PAGE_CAPACITY
    slots: dict[Any, Any] = field(default_factory=dict)

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.slots)

    def read(self, key: Any, default: Any = None) -> Any:
        return self.slots.get(key, default)

    def has(self, key: Any) -> bool:
        return key in self.slots

    def write(self, key: Any, value: Any) -> None:
        """Write one slot; raises :class:`PageError` when a *new* slot would
        exceed the capacity (overwrites are always allowed)."""
        if key not in self.slots and self.is_full:
            raise PageError(
                f"page {self.page_id} is full "
                f"({len(self.slots)}/{self.capacity} slots)"
            )
        self.slots[key] = value

    def delete(self, key: Any) -> None:
        if key not in self.slots:
            raise PageError(f"page {self.page_id} has no slot {key!r}")
        del self.slots[key]

    def keys(self) -> list[Any]:
        return list(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        return f"<Page {self.page_id} {len(self.slots)}/{self.capacity}>"


class PageStore:
    """Allocates and resolves pages.

    The store itself performs no concurrency control and no tracing — that
    is the job of :class:`repro.oodb.database.ObjectDatabase`, which funnels
    every slot access through its primitive-action bookkeeping.

    This in-memory store is also the *interface* every storage backend
    implements; the durability hooks below are no-ops here and overridden
    by :class:`repro.oodb.store.FileBackedPageStore`.
    """

    #: does this backend persist pages beyond the process? (the in-memory
    #: store's truth is whatever redo rebuilds from the WAL)
    durable = False

    def __init__(self, default_capacity: int = DEFAULT_PAGE_CAPACITY):
        self.default_capacity = default_capacity
        self._pages: dict[str, Page] = {}
        self._next_page_number = 4700  # cosmetics: ids echo the paper's Page4712

    def allocate(self, page_id: str | None = None, capacity: int | None = None) -> Page:
        if page_id is None:
            self._next_page_number += 1
            page_id = f"Page{self._next_page_number}"
        if page_id in self._pages:
            raise PageError(f"page id {page_id} already allocated")
        page = Page(page_id, capacity or self.default_capacity)
        self._pages[page_id] = page
        return page

    def get(self, page_id: str) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def deallocate(self, page_id: str) -> None:
        if page_id not in self._pages:
            raise PageError(f"unknown page {page_id}")
        del self._pages[page_id]

    def __contains__(self, page_id: str) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def page_ids(self) -> list[str]:
        return list(self._pages)

    # -- recovery surface ---------------------------------------------------
    #
    # Crash recovery rebuilds a store by *repeating history* from the WAL:
    # it must install pages exactly as logged, bypassing the allocation
    # bookkeeping and capacity policy that governed the original execution
    # (the log already witnessed those checks pass).

    def reset(self) -> None:
        """Drop every page — recovery rebuilds from an empty store."""
        self._pages = {}

    def install(self, page: Page) -> None:
        """(Re)install a page verbatim, as redo or a rollback revert."""
        self._pages[page.page_id] = page
        self._observe_page_id(page.page_id)

    def remove(self, page_id: str) -> None:
        """Remove a page if present (redo of a logged deallocation)."""
        self._pages.pop(page_id, None)

    def _observe_page_id(self, page_id: str) -> None:
        """Keep the id sequence ahead of every replayed page id, so pages
        allocated after recovery never collide with recovered ones."""
        if page_id.startswith("Page"):
            try:
                number = int(page_id[4:])
            except ValueError:
                return
            self._next_page_number = max(self._next_page_number, number)

    # -- durability surface -------------------------------------------------
    #
    # The backend protocol the database and recovery talk to.  All of it is
    # inert for the in-memory store, so the hot path pays exactly one no-op
    # method call per mutation (``note_write``) and nothing else.

    def connect(self, *, force_log=None, fault_hit=None, metrics=None) -> None:
        """Wire the owning database's WAL force / fault / metrics hooks."""

    def note_write(self, page_id: str, lsn: int | None) -> None:
        """A mutation with WAL position ``lsn`` just touched ``page_id``."""

    def dirty_table(self) -> dict[str, int]:
        """``{page_id: recLSN}`` for pages dirty since their last flush."""
        return {}

    def page_lsn(self, page_id: str) -> int | None:
        """Highest LSN known applied to ``page_id`` (None when absent).

        The in-memory store keeps no per-page LSNs — recovery rebuilds it
        from genesis, never conditionally — so -1 means "always redo".
        """
        return -1 if page_id in self._pages else None

    def flush_dirty(self) -> int:
        """Write every dirty page back to stable storage; returns count."""
        return 0

    def crash(self) -> None:
        """The system dies: volatile frames are lost, writes turn no-op."""

    def close(self) -> None:
        """Release backing resources (flushes nothing by itself)."""
