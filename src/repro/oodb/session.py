"""Session-scoped database handles for multi-tenant front-ends.

A :class:`DatabaseSession` is the narrow waist between a client session and
the shared :class:`~repro.oodb.database.ObjectDatabase`: it mints unique,
tenant-scoped transaction labels (``tenant/label#n``), keeps the tenant's
in-flight and terminal bookkeeping, and never hands out the database
itself.  The transaction service creates one per tenant; everything the
service later audits — which transactions a tenant was promised, which of
them committed — reads from these ledgers rather than from scattered
response buffers, which is what makes the "no lost admitted commits"
invariant checkable after the fact.

Sessions only *account*; they take no locks and run no methods.  All
execution still flows through the executor/scheduler stack, so a session
adds nothing to the concurrency-control story — by design: the paper's
protocols must not be bypassable from the front door.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import ObjectDatabase


class DatabaseSession:
    """One tenant's scoped handle onto a shared database."""

    def __init__(self, db: "ObjectDatabase", tenant: str):
        self.db = db
        self.tenant = tenant
        self._lock = threading.Lock()
        self._label_seq = 0
        #: program label -> terminal status ("committed" / "aborted" /
        #: "gave_up" / "error"); the tenant's admitted-transaction ledger
        self.ledger: dict[str, str] = {}
        #: labels whose outcome is still pending (admitted, not yet terminal)
        self.in_flight: set[str] = set()

    # -- label minting ------------------------------------------------------

    def next_label(self, base: str) -> str:
        """A unique, tenant-scoped transaction label.

        Uniqueness matters beyond readability: the oracle's committed
        projection keys transactions by label, so two requests reusing one
        label would alias in the audited history.
        """
        with self._lock:
            n = self._label_seq
            self._label_seq += 1
        return f"{self.tenant}/{base}#{n}"

    # -- admitted-transaction ledger ---------------------------------------

    def admit(self, label: str) -> None:
        with self._lock:
            self.in_flight.add(label)

    def settle(self, label: str, status: str) -> None:
        """Record a terminal status for an admitted transaction."""
        with self._lock:
            self.in_flight.discard(label)
            self.ledger[label] = status

    @property
    def committed_labels(self) -> set[str]:
        with self._lock:
            return {
                label
                for label, status in self.ledger.items()
                if status == "committed"
            }

    @property
    def unsettled(self) -> set[str]:
        """Admitted transactions that never reached a terminal status —
        must be empty after a clean shutdown (else a commit could be lost)."""
        with self._lock:
            return set(self.in_flight)

    def counts(self) -> dict[str, int]:
        """Terminal-status tallies (the per-tenant stats surface)."""
        with self._lock:
            out: dict[str, int] = {}
            for status in self.ledger.values():
                out[status] = out.get(status, 0) + 1
            out["in_flight"] = len(self.in_flight)
            return out
