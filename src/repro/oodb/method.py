"""Database method registration.

A method becomes part of an object type's public, concurrency-controlled
interface by decoration with :func:`dbmethod`.  The decorator records

- whether the method is an *update* (updates need undo/compensation; pure
  reads never do), and
- an optional *compensation*: how to semantically undo the method after its
  subtransaction has committed at this level — the defining ingredient of
  open nested transactions (the low-level undo information is discarded
  when the subtransaction releases its locks, so aborts of the surrounding
  transaction must compensate instead).

Compensation can be given as the name of another method of the same object
(called with the same arguments), or as a callable ``(args, result) ->
(method_name, args) | None`` for value-dependent compensation (e.g. only
compensate an insert that actually inserted).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

CompensationFn = Callable[[tuple, Any], "tuple[str, tuple] | None"]


@dataclass(frozen=True)
class MethodSpec:
    """Metadata of one database method."""

    name: str
    func: Callable
    update: bool
    compensation: str | CompensationFn | None
    #: whether the method's *own-page* reads should take write-mode locks.
    #: None defaults to ``update``.  Set False for update methods that only
    #: read their own page (their writes go to other objects) — blanket
    #: write-intent would needlessly serialize them; set True (the default
    #: for updates) for read-then-overwrite methods, where shared read
    #: locks would breed upgrade deadlocks.
    write_intent: bool | None = None

    @property
    def page_lock_exclusive(self) -> bool:
        return self.update if self.write_intent is None else self.write_intent

    def compensation_call(self, args: tuple, result: Any) -> tuple[str, tuple] | None:
        """Resolve the compensating call for an executed invocation.

        Returns ``(method_name, args)`` or None when nothing needs undoing
        (reads, or value-dependent compensations that decide so).
        """
        if self.compensation is None:
            return None
        if callable(self.compensation):
            return self.compensation(args, result)
        return (self.compensation, args)


def dbmethod(
    func: Callable | None = None,
    *,
    update: bool = False,
    compensation: str | CompensationFn | None = None,
    write_intent: bool | None = None,
):
    """Mark a :class:`~repro.oodb.object_model.DatabaseObject` method as a
    database method.

    Usable bare (``@dbmethod``) for read-only methods or with options::

        @dbmethod(update=True, compensation="delete")
        def insert(self, key, value): ...

    A method with a compensation is implicitly an update.
    """

    def decorate(inner: Callable) -> Callable:
        inner.__dbmethod__ = MethodSpec(
            name=inner.__name__,
            func=inner,
            update=update or compensation is not None,
            compensation=compensation,
            write_intent=write_intent,
        )
        return inner

    if func is not None:
        return decorate(func)
    return decorate
