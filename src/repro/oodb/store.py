"""The file-backed page store: binary page images behind an OID directory.

This is the durable half of the storage engine.  :class:`PageImageStore`
is the raw file layer — one binary image per page, hashed into prefix
subdirectories (the ZODB/renku OID-layout idiom) so millions of pages
never share one directory — and :class:`FileBackedPageStore` is the
:class:`~repro.oodb.pages.PageStore` implementation the database actually
talks to, mediating every access through a bounded
:class:`~repro.oodb.bufferpool.BufferPool`.

Image format
------------

``RPG1 | page_lsn int64 | capacity uint32 | payload uint32 | crc32 uint32``
followed by the JSON payload (``{"page_id", "slots": [[k, v], ...]}`` —
pairs, not an object, so non-string slot keys survive the round trip).
``page_lsn`` is the highest WAL LSN whose effect the image contains: the
pageLSN that drives conditional redo and the WAL rule.

Images are written to ``<name>.tmp`` and published with ``os.replace``,
so a torn write (crash mid-image, exercised by the ``writeback.torn``
fault site) leaves the previous image intact and at worst a stray ``.tmp``
file, swept on open.  The checksum guards the read side anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib

from repro.errors import PageError
from repro.oodb.bufferpool import BufferPool
from repro.oodb.pages import DEFAULT_PAGE_CAPACITY, Page, PageStore

_MAGIC = b"RPG1"
#: page_lsn (int64), capacity (uint32), payload length (uint32), crc32
_HEADER = struct.Struct("<qIII")
_META_NAME = "directory.json"


def _hash_prefix(page_id: str) -> str:
    return hashlib.sha1(page_id.encode()).hexdigest()[:2]


class PageImageStore:
    """The raw on-disk layer: page images + the store's meta directory."""

    def __init__(self, root: str):
        self.root = root
        self.pages_dir = os.path.join(root, "pages")
        os.makedirs(self.pages_dir, exist_ok=True)
        self.next_page_number = 0
        self.default_capacity = DEFAULT_PAGE_CAPACITY
        meta_path = os.path.join(self.root, _META_NAME)
        if os.path.exists(meta_path):
            with open(meta_path) as fh:
                meta = json.load(fh)
            self.next_page_number = meta.get("next_page_number", 0)
            self.default_capacity = meta.get(
                "default_capacity", DEFAULT_PAGE_CAPACITY
            )
        # The files are the truth; the meta file only persists counters.
        # A stray .tmp is a torn write-back from a crash: the published
        # image (if any) is still the pre-write one, so just sweep it.
        self._index: dict[str, str] = {}
        for prefix in sorted(os.listdir(self.pages_dir)):
            subdir = os.path.join(self.pages_dir, prefix)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                path = os.path.join(subdir, name)
                if name.endswith(".tmp"):
                    os.remove(path)
                elif name.endswith(".pg"):
                    self._index[name[:-3]] = path

    # -- paths & meta -------------------------------------------------------

    def _path(self, page_id: str) -> str:
        return os.path.join(
            self.pages_dir, _hash_prefix(page_id), page_id + ".pg"
        )

    def write_meta(self, next_page_number: int | None = None) -> None:
        if next_page_number is not None:
            self.next_page_number = max(self.next_page_number, next_page_number)
        meta_path = os.path.join(self.root, _META_NAME)
        tmp = meta_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(
                {
                    "next_page_number": self.next_page_number,
                    "default_capacity": self.default_capacity,
                },
                fh,
            )
        os.replace(tmp, meta_path)

    # -- images -------------------------------------------------------------

    def has(self, page_id: str) -> bool:
        return page_id in self._index

    @property
    def page_ids(self) -> list[str]:
        return sorted(self._index)

    def read_page(self, page_id: str) -> tuple[Page, int]:
        """Load one image; returns ``(page, page_lsn)``."""
        path = self._index.get(page_id)
        if path is None:
            raise PageError(f"unknown page {page_id}")
        with open(path, "rb") as fh:
            blob = fh.read()
        if blob[: len(_MAGIC)] != _MAGIC:
            raise PageError(f"corrupt page image {path}: bad magic")
        header = blob[len(_MAGIC) : len(_MAGIC) + _HEADER.size]
        if len(header) < _HEADER.size:
            raise PageError(f"corrupt page image {path}: truncated header")
        page_lsn, capacity, length, crc = _HEADER.unpack(header)
        payload = blob[len(_MAGIC) + _HEADER.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise PageError(f"corrupt page image {path}: checksum mismatch")
        data = json.loads(payload)
        slots = {key: value for key, value in data["slots"]}
        return Page(page_id, capacity, slots), page_lsn

    def write_page(self, page: Page, page_lsn: int, fault_hit=None) -> None:
        """Atomically publish one image (torn-write fault site inside)."""
        final = self._path(page.page_id)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        payload = json.dumps(
            {
                "page_id": page.page_id,
                "slots": [[k, v] for k, v in page.slots.items()],
            }
        ).encode()
        header = _MAGIC + _HEADER.pack(
            page_lsn, page.capacity, len(payload), zlib.crc32(payload)
        )
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header)
            if fault_hit is not None:
                # A crash here leaves a torn .tmp; the published image (the
                # page's pre-write state) is untouched.
                fault_hit("writeback.torn")
            fh.write(payload)
        os.replace(tmp, final)
        self._index[page.page_id] = final

    def remove_page(self, page_id: str) -> None:
        path = self._index.pop(page_id, None)
        if path is not None and os.path.exists(path):
            os.remove(path)

    def wipe(self) -> None:
        for page_id in list(self._index):
            self.remove_page(page_id)


class FileBackedPageStore(PageStore):
    """A durable :class:`PageStore`: buffer pool over binary page files.

    Every access goes through the pool; pages not resident are faulted in
    from their image, and dirty pages are written back on eviction (under
    the WAL rule) or by :meth:`flush_dirty` after a checkpoint.
    """

    durable = True

    def __init__(
        self,
        root: str,
        frames: int = 128,
        default_capacity: int = DEFAULT_PAGE_CAPACITY,
        *,
        skip_log_force: bool = False,
    ):
        super().__init__(default_capacity)
        self.disk = PageImageStore(root)
        self.pool = BufferPool(
            self.disk, frames=frames, skip_log_force=skip_log_force
        )
        self._next_page_number = max(
            self._next_page_number, self.disk.next_page_number
        )
        for page_id in self.disk.page_ids:
            self._observe_page_id(page_id)

    # -- PageStore interface ------------------------------------------------

    def allocate(self, page_id: str | None = None, capacity: int | None = None) -> Page:
        if page_id is None:
            self._next_page_number += 1
            page_id = f"Page{self._next_page_number}"
        if page_id in self:
            raise PageError(f"page id {page_id} already allocated")
        page = Page(page_id, capacity or self.default_capacity)
        self.pool.put_new(page)
        return page

    def get(self, page_id: str) -> Page:
        return self.pool.get(page_id)

    def deallocate(self, page_id: str) -> None:
        if page_id not in self:
            raise PageError(f"unknown page {page_id}")
        self.pool.deallocate(page_id)

    def __contains__(self, page_id: str) -> bool:
        return self.pool.contains(page_id)

    def __len__(self) -> int:
        return len(set(self.disk.page_ids) | set(self.pool.frames))

    @property
    def page_ids(self) -> list[str]:
        return sorted(set(self.disk.page_ids) | set(self.pool.frames))

    # -- recovery surface ---------------------------------------------------

    def reset(self) -> None:
        """Drop everything, frames and images (in-memory-style redo only)."""
        self.pool.drop_frames()
        self.disk.wipe()

    def install(self, page: Page) -> None:
        self.pool.install(page)
        self._observe_page_id(page.page_id)

    def remove(self, page_id: str) -> None:
        if page_id in self:
            self.pool.deallocate(page_id)

    # -- durability surface -------------------------------------------------

    def connect(self, *, force_log=None, fault_hit=None, metrics=None) -> None:
        self.pool.connect(
            force_log=force_log, fault_hit=fault_hit, metrics=metrics
        )

    def note_write(self, page_id: str, lsn: int | None) -> None:
        self.pool.note_write(page_id, lsn)

    def dirty_table(self) -> dict[str, int]:
        return self.pool.dirty_table()

    def page_lsn(self, page_id: str) -> int | None:
        return self.pool.page_lsn(page_id)

    def flush_dirty(self) -> int:
        flushed = self.pool.flush_dirty()
        self.disk.write_meta(self._next_page_number)
        return flushed

    def crash(self) -> None:
        self.pool.crash()

    def close(self) -> None:
        if not self.pool.dead:
            self.disk.write_meta(self._next_page_number)
