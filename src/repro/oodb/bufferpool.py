"""The buffer pool: bounded frames, clock eviction, WAL-rule write-back.

The pool sits between :class:`~repro.oodb.store.FileBackedPageStore` and
the raw image files.  Frames carry ARIES page metadata:

- ``page_lsn`` — highest WAL LSN applied to the page (stamped into the
  image header on write-back; drives conditional redo),
- ``rec_lsn`` — the LSN of the *first* record that dirtied the page since
  its last flush (the dirty-page-table entry; a checkpoint's min(recLSN)
  is where redo must start),
- ``dirty`` / ``ref`` — write-back obligation and the clock's second
  chance bit.

Eviction is the textbook clock: sweep the frames in install order,
clearing reference bits, and take the first unreferenced frame.  A dirty
victim is written back first, and *before* the image write the WAL is
forced up to the victim's ``page_lsn`` — the WAL rule.  The
``skip_log_force`` knob disables exactly that force: the ablation the
crash oracle must catch (a flushed page whose log records died with the
crash is a phantom effect recovery cannot see).

After :meth:`crash` the pool is dead: frames are gone (they were
volatile), reads fault pages back in from the durable images, and every
write-back path is inert — post-crash unwinding can no longer touch the
durable state.
"""

from __future__ import annotations

from repro.errors import PageError
from repro.oodb.pages import Page


class Frame:
    """One resident page plus its ARIES metadata."""

    __slots__ = ("page", "page_lsn", "rec_lsn", "dirty", "ref")

    def __init__(
        self,
        page: Page,
        page_lsn: int = -1,
        rec_lsn: int | None = None,
        dirty: bool = False,
    ):
        self.page = page
        self.page_lsn = page_lsn
        self.rec_lsn = rec_lsn
        self.dirty = dirty
        self.ref = True


class BufferPool:
    """A bounded page cache with deterministic clock replacement."""

    def __init__(self, disk, frames: int = 128, *, skip_log_force: bool = False):
        self.disk = disk
        self.capacity = max(1, frames)
        self.frames: dict[str, Frame] = {}
        self._clock: list[str] = []  # page ids in install order
        self._hand = 0
        self.skip_log_force = skip_log_force
        self.dead = False
        self._force_log = None
        self._fault_hit = None
        #: optional instrumentation: called with the frame just before a
        #: dirty write-back (the crash fuzzer's ablation hunt uses this to
        #: spot flushes whose pageLSN is still volatile)
        self.write_back_probe = None
        # plain counters always; mirrored into the metrics registry when
        # the owning database connects one
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self._m_hits = None
        self._m_misses = None
        self._m_evictions = None
        self._m_writebacks = None

    def connect(self, *, force_log=None, fault_hit=None, metrics=None) -> None:
        self._force_log = force_log
        self._fault_hit = fault_hit
        if metrics is not None:
            self._m_hits = metrics.counter(
                "bufferpool_hits_total", "page requests served from a frame"
            )
            self._m_misses = metrics.counter(
                "bufferpool_misses_total", "page requests faulted in from disk"
            )
            self._m_evictions = metrics.counter(
                "bufferpool_evictions_total", "frames reclaimed by the clock"
            )
            self._m_writebacks = metrics.counter(
                "bufferpool_writebacks_total", "dirty pages written back"
            )

    # -- access -------------------------------------------------------------

    def get(self, page_id: str) -> Page:
        frame = self.frames.get(page_id)
        if frame is not None:
            frame.ref = True
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.value += 1
            return frame.page
        page, page_lsn = self.disk.read_page(page_id)  # raises when unknown
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.value += 1
        self._install_frame(page_id, Frame(page, page_lsn=page_lsn))
        return page

    def contains(self, page_id: str) -> bool:
        return page_id in self.frames or self.disk.has(page_id)

    def put_new(self, page: Page) -> None:
        """Adopt a freshly allocated page (dirty; no image yet)."""
        if self.dead:
            return
        self._install_frame(
            page.page_id, Frame(page, page_lsn=-1, rec_lsn=None, dirty=True)
        )

    def install(self, page: Page) -> None:
        """(Re)install a page verbatim — redo or a rollback revert.

        The frame starts dirty with an unknown recLSN; the caller's
        ``note_write`` immediately after supplies the responsible LSN.
        """
        if self.dead:
            return
        frame = self.frames.get(page.page_id)
        if frame is not None:
            frame.page = page
            frame.dirty = True
            frame.rec_lsn = None
            frame.ref = True
            return
        self._install_frame(
            page.page_id, Frame(page, page_lsn=-1, rec_lsn=None, dirty=True)
        )

    def note_write(self, page_id: str, lsn: int | None) -> None:
        """A logged mutation (WAL position ``lsn``) touched ``page_id``."""
        if self.dead:
            return
        frame = self.frames.get(page_id)
        if frame is None:
            raise PageError(
                f"write to non-resident page {page_id} — pages must be "
                "pinned via get() for the duration of a mutation"
            )
        if not frame.dirty or frame.rec_lsn is None:
            frame.dirty = True
            frame.rec_lsn = lsn if lsn is not None and lsn >= 0 else 0
        if lsn is not None and lsn > frame.page_lsn:
            frame.page_lsn = lsn
        frame.ref = True

    def deallocate(self, page_id: str) -> None:
        """Drop the frame and the image (forcing the log first: the
        ``dealloc`` record must be durable before its file disappears)."""
        self.frames.pop(page_id, None)
        if self.dead:
            return
        if self.disk.has(page_id):
            if self._force_log is not None and not self.skip_log_force:
                self._force_log(None)
            self.disk.remove_page(page_id)

    # -- replacement --------------------------------------------------------

    def _install_frame(self, page_id: str, frame: Frame) -> None:
        while len(self.frames) >= self.capacity:
            if not self._evict_one():
                break
        self.frames[page_id] = frame
        self._clock.append(page_id)

    def _evict_one(self) -> bool:
        """Clock sweep: give every frame one second chance, then evict."""
        swept = 0
        limit = 2 * len(self._clock) + 2
        while swept <= limit:
            if self._hand >= len(self._clock):
                self._hand = 0
                self._clock = [p for p in self._clock if p in self.frames]
                if not self._clock:
                    return False
                continue
            page_id = self._clock[self._hand]
            frame = self.frames.get(page_id)
            if frame is None:  # lazily dropped (deallocated)
                self._clock.pop(self._hand)
                continue
            if frame.ref:
                frame.ref = False
                self._hand += 1
                swept += 1
                continue
            self._write_back(frame)
            del self.frames[page_id]
            self._clock.pop(self._hand)
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.value += 1
            return True
        return False  # pragma: no cover - the sweep always terminates

    def _write_back(self, frame: Frame) -> None:
        if not frame.dirty or self.dead:
            return
        if self.write_back_probe is not None:
            self.write_back_probe(frame)
        if self._force_log is not None and not self.skip_log_force:
            # The WAL rule: no page image may hit disk before the log
            # records that produced it are durable.
            self._force_log(frame.page_lsn)
        if self._fault_hit is not None:
            self._fault_hit("eviction.mid")
        self.disk.write_page(frame.page, frame.page_lsn, fault_hit=self._fault_hit)
        frame.dirty = False
        frame.rec_lsn = None
        self.writebacks += 1
        if self._m_writebacks is not None:
            self._m_writebacks.value += 1

    # -- checkpoints / recovery ---------------------------------------------

    def dirty_table(self) -> dict[str, int]:
        """The DPT: ``{page_id: recLSN}`` for every dirty frame."""
        return {
            page_id: (frame.rec_lsn if frame.rec_lsn is not None else 0)
            for page_id, frame in self.frames.items()
            if frame.dirty
        }

    def flush_dirty(self) -> int:
        """Write back every dirty frame (frames stay resident)."""
        flushed = 0
        for frame in list(self.frames.values()):
            if frame.dirty:
                self._write_back(frame)
                flushed += 1
        return flushed

    def page_lsn(self, page_id: str) -> int | None:
        """The page's pageLSN (faulting it in if needed); None when absent."""
        frame = self.frames.get(page_id)
        if frame is not None:
            return frame.page_lsn
        if not self.disk.has(page_id):
            return None
        self.get(page_id)
        return self.frames[page_id].page_lsn

    def drop_frames(self) -> None:
        self.frames.clear()
        self._clock = []
        self._hand = 0

    def crash(self) -> None:
        """The system dies: frames are volatile and every write turns inert."""
        self.drop_frames()
        self.dead = True
