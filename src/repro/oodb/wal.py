"""Durable write-ahead logging and crash recovery.

The in-memory substrate already keeps, per execution frame, exactly the
information open nested transaction theory prescribes (``repro.oodb.log``):
page-level before-images for uncommitted work, semantic compensations for
subtransactions that committed and released their low-level locks.  This
module makes that information *durable*: every physical page mutation and
every journal state transition is appended to a :class:`WriteAheadLog`,
and :func:`recover` rebuilds a database from the log alone after a crash.

Record stream
-------------

Records are JSON-serializable dicts, one per line in file mode, each
stamped with its ``lsn`` (position in the stream):

======================  =====================================================
``begin``               a top-level transaction started (synced)
``alloc``               page allocated (``j`` true when journaled, i.e. the
                        undo is a deallocation owned by the transaction)
``dealloc``             page deallocated during a rollback (carries the full
                        slot snapshot so a partial rollback can be reverted)
``set`` / ``del``       physical slot mutation with redo (``value``) *and*
                        undo (``had``/``before``) images; ``j`` true when the
                        matching :class:`UndoRecord` survives in the
                        transaction's effective journal (false for
                        bootstrap, compensating and recovery writes)
``subcommit``           an open-nested subtransaction committed: journal
                        entries from ``from_lsn`` are superseded by the
                        compensation ``(oid, method, args)`` (synced before
                        the low-level locks release — the open-nesting
                        durability rule)
``jtrunc``              journal truncated from ``from_lsn`` (a completed
                        inline subtransaction rollback)
``comp-done``           the compensation journaled at ``lsn`` was fully
                        re-sent during a rollback (synced: the logical
                        analogue of an ARIES CLR)
``commit``              commit record (synced *before* locks release)
``abort``               top-level rollback started
``abort-done``          top-level rollback finished; the journal is empty
``ckpt-begin``          a fuzzy checkpoint started
``ckpt-end``            checkpoint complete: carries the active-transaction
                        table (the serialized :class:`AnalysisState`) and
                        the dirty-page table (``{page_id: recLSN}``) so
                        recovery against a durable page store starts from
                        here instead of genesis
======================  =====================================================

Recovery
--------

:func:`recover` is ARIES-shaped, adapted to open nesting:

1. **Analysis** — winners are transactions with a durable ``commit``,
   finished rollbacks have ``abort-done``; everything else seen in the log
   is a loser.  Each loser's *effective journal* is reconstructed by
   replaying the journal transitions (``j``-flagged records append,
   ``subcommit``/``jtrunc`` truncate, ``comp-done`` consumes).  With a
   durable page store, analysis resumes from the last complete
   checkpoint's serialized :class:`AnalysisState` and folds in only the
   log tail.
2. **Redo** — against the in-memory store, the pages are rebuilt from
   scratch by replaying every physical record in LSN order ("repeating
   history": the durable state at the instant of the crash, including any
   partial rollback work).  Against a durable store, redo is
   *conditional*: it starts at the reconstructed dirty-page table's
   min(recLSN) and applies a record only when its LSN is newer than the
   page image's pageLSN — recovery cost is proportional to the tail since
   the last checkpoint, not to all history.
3. **Revert** — a rollback step interrupted mid-flight (physical records
   after the loser's last ``comp-done``/``jtrunc`` marker) is physically
   reverted using the records' own before-images, so a partially executed
   compensation is never applied one-and-a-half times.  Reverts are logged
   like any other write, which is what makes a crash *during recovery*
   recoverable by simply running :func:`recover` again.
4. **Undo** — the losers' journals are processed in global reverse-LSN
   order: before-images restore uncommitted low-level writes (idempotent),
   compensations are re-sent through the object layer (logged with
   ``comp-done`` as they complete).  Each finished loser gets an
   ``abort-done`` record, making recovery itself idempotent: a second
   :func:`recover` over the extended log is pure redo and yields a
   byte-identical page store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DatabaseError, SimulatedCrash
from repro.obs.events import EventBus, WalAppend, WalSync
from repro.oodb.context import TxnStatus
from repro.oodb.log import (
    DELETED,
    UNKNOWN,
    CompensationRecord,
    PageAllocationRecord,
    UndoRecord,
)
from repro.oodb.pages import Page

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.oodb.database import ObjectDatabase

#: record types that mutate the page store (replayed by the redo pass)
PHYSICAL_TYPES = frozenset({"alloc", "dealloc", "set", "del"})


class WriteAheadLog:
    """An append-only log with explicit sync points.

    Appended records sit in a volatile buffer until :meth:`sync` moves them
    to the durable prefix (and, in file mode, to disk).  :meth:`crash`
    models the system dying: the buffer is lost, the durable prefix is all
    recovery will ever see.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        #: the durable prefix — everything a crash cannot take away
        self.records: list[dict] = []
        self._buffer: list[dict] = []
        self._crashed = False
        #: lazily opened, kept across syncs: one buffered write + one flush
        #: per sync point instead of an open/write-per-record cycle
        self._fh = None
        #: running analysis state (durable-store mode only; None keeps the
        #: in-memory hot path free of per-record bookkeeping)
        self.analysis: "AnalysisState | None" = None
        #: the last *durable* ``ckpt-end`` record (tracked at sync time, so
        #: a crash can never leave a pointer at a buffered checkpoint)
        self._durable_ckpt: dict | None = None
        # Observability (bound by the owning database, see :meth:`bind`):
        # an inert bus until then, and no metrics at all — the log must
        # stay usable standalone (recovery rebuilds databases around it).
        self.bus = EventBus()
        self._rec_family = None
        self._n_syncs = None
        self._n_synced_records = None

    def bind(self, bus, metrics) -> None:
        """Adopt the owning database's event bus and metrics registry."""
        self.bus = bus
        self._rec_family = metrics.counter(
            "wal_records_total",
            "WAL records appended, by record type",
            labelnames=("type",),
        )
        self._n_syncs = metrics.counter(
            "wal_syncs_total", "write barriers forced"
        )
        self._n_synced_records = metrics.counter(
            "wal_synced_records_total", "records made durable by a sync"
        )

    # -- appending ----------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return len(self.records) + len(self._buffer)

    def append(self, record: dict) -> int:
        """Buffer one record; returns its LSN (or -1 after a crash)."""
        if self._crashed:
            return -1
        record = dict(record)
        lsn = record["lsn"] = self.next_lsn
        self._buffer.append(record)
        if self.analysis is not None:
            # Observing at append (not sync) is safe: a checkpoint's state
            # is only ever *used* when its ckpt-end record survived, and a
            # surviving ckpt-end implies every observed record before it
            # survived too (syncs are global and in append order).
            self.analysis.observe(record)
        if self._rec_family is not None:
            self._rec_family.labels(type=record.get("t", "?")).value += 1
        bus = self.bus
        if bus.active:
            bus.emit(
                WalAppend(
                    txn=record.get("txn") or "",
                    rec=record.get("t", "?"),
                    lsn=lsn,
                    tick=bus.now(),
                )
            )
        return lsn

    def sync(self) -> None:
        """Force the buffer to the durable prefix (a write barrier).

        In file mode the whole buffer goes down as a single write followed
        by a single flush on a persistent handle — the write barrier is per
        sync point, not per record.
        """
        if self._crashed or not self._buffer:
            return
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(
                "".join(
                    json.dumps(record, sort_keys=True) + "\n"
                    for record in self._buffer
                )
            )
            self._fh.flush()
        flushed = len(self._buffer)
        for record in self._buffer:
            if record.get("t") == "ckpt-end":
                self._durable_ckpt = record
        self.records.extend(self._buffer)
        self._buffer = []
        if self._n_syncs is not None:
            self._n_syncs.value += 1
            self._n_synced_records.value += flushed
        bus = self.bus
        if bus.active:
            bus.emit(
                WalSync(
                    records=flushed,
                    lsn=len(self.records) - 1,
                    tick=bus.now(),
                )
            )

    def close(self) -> None:
        """Release the backing file handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def force_up_to(self, lsn: int | None) -> None:
        """The WAL rule's force: make everything up to ``lsn`` durable.

        Syncing is all-or-nothing here, so any ``lsn`` beyond the durable
        prefix forces the whole buffer; ``None`` forces unconditionally.
        """
        if self._crashed:
            return
        if lsn is None or lsn >= len(self.records):
            self.sync()

    def enable_analysis(self) -> None:
        """Start (or catch up) the running analysis state.

        Durable-store databases call this so that every checkpoint can
        serialize the exact active-transaction table for its prefix.
        """
        state = AnalysisState()
        for record in self.records:
            state.observe(record)
        for record in self._buffer:
            state.observe(record)
        self.analysis = state

    def durable_checkpoint(self) -> dict | None:
        """The last complete (durable ``ckpt-end``) checkpoint record."""
        return self._durable_ckpt

    # -- crash surface ------------------------------------------------------

    def crash(self) -> None:
        """The system dies: unsynced records are gone, appends turn no-op."""
        self._buffer = []
        self._crashed = True

    def reopen(self) -> None:
        """Reopen the log for recovery appends after a crash."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_list(self) -> list[dict]:
        return [dict(r) for r in self.records]

    @classmethod
    def load(cls, path: str) -> "WriteAheadLog":
        """Read a JSONL log file back into an in-memory durable prefix."""
        wal = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    record = json.loads(line)
                    if record.get("t") == "ckpt-end":
                        wal._durable_ckpt = record
                    wal.records.append(record)
        return wal

    @classmethod
    def from_records(cls, records: list[dict]) -> "WriteAheadLog":
        wal = cls()
        wal.records = [dict(r) for r in records]
        for record in wal.records:
            if record.get("t") == "ckpt-end":
                wal._durable_ckpt = record
        return wal


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one :func:`recover` run found and did."""

    records: int = 0
    winners: list[str] = field(default_factory=list)
    finished_aborts: list[str] = field(default_factory=list)
    losers: list[str] = field(default_factory=list)
    redo_applied: int = 0
    reverted: int = 0
    undone: int = 0
    compensations_replayed: int = 0
    compensations_skipped: int = 0

    def describe(self) -> str:
        return (
            f"recovered {self.records} records: "
            f"{len(self.winners)} winner(s) {sorted(self.winners)}, "
            f"{len(self.losers)} loser(s) {sorted(self.losers)} "
            f"(redo {self.redo_applied}, revert {self.reverted}, "
            f"undo {self.undone}, compensations {self.compensations_replayed}"
            + (
                f", SKIPPED {self.compensations_skipped}"
                if self.compensations_skipped
                else ""
            )
            + ")"
        )


def _journal_entry(rec: dict):
    """The in-memory journal entry a ``j``-flagged physical record implies.

    The entry keeps its record's LSN so that replaying it during recovery
    emits a ``consumes``-tagged compensation log record — a crash during
    recovery then sees the consumption and does not replay it twice.
    """
    if rec["t"] == "alloc":
        return PageAllocationRecord(rec["page"], lsn=rec["lsn"])
    return UndoRecord(
        page_id=rec["page"],
        slot=rec["slot"],
        had_slot=rec["had"],
        before=rec["before"],
        after=rec["value"] if rec["t"] == "set" else DELETED,
        lsn=rec["lsn"],
    )


def _entry_to_dict(entry) -> dict:
    """Serialize one journal entry for a checkpoint's transaction table."""
    if isinstance(entry, PageAllocationRecord):
        return {"k": "alloc", "page": entry.page_id, "lsn": entry.lsn}
    if isinstance(entry, CompensationRecord):
        return {
            "k": "comp",
            "oid": entry.oid,
            "method": entry.method,
            "args": list(entry.args),
            "lsn": entry.lsn,
        }
    data = {
        "k": "undo",
        "page": entry.page_id,
        "slot": entry.slot,
        "had": entry.had_slot,
        "before": entry.before,
        "lsn": entry.lsn,
    }
    if entry.after is DELETED:
        data["deleted"] = True
    elif entry.after is not UNKNOWN:
        data["after"] = entry.after
    return data


def _entry_from_dict(data: dict):
    kind = data["k"]
    if kind == "alloc":
        return PageAllocationRecord(data["page"], lsn=data["lsn"])
    if kind == "comp":
        return CompensationRecord(
            data["oid"], data["method"], tuple(data["args"]), lsn=data["lsn"]
        )
    if data.get("deleted"):
        after = DELETED
    elif "after" in data:
        after = data["after"]
    else:
        after = UNKNOWN
    return UndoRecord(
        page_id=data["page"],
        slot=data["slot"],
        had_slot=data["had"],
        before=data["before"],
        after=after,
        lsn=data["lsn"],
    )


class AnalysisState:
    """The ARIES analysis pass as a record-at-a-time state machine.

    One implementation serves three callers: :func:`recover`'s full-log
    scan, the WAL's *running* state in durable-store mode (so a fuzzy
    checkpoint can serialize the exact active-transaction table for its
    prefix), and recovery-from-checkpoint (deserialize the table, fold in
    only the tail).  All three are byte-equivalent by construction.

    Beyond winners/losers/journals/boundaries, the state tracks each live
    transaction's *window*: its non-journaled, non-``consumes`` physical
    records since its last rollback-progress marker — the writes of a
    compensation that started but whose ``comp-done`` never became
    durable.  Reverting them interleaved with the journal's undo entries
    (reverse global LSN order) walks each slot's history backward;
    ``consumes``-tagged records are excluded because they are durably
    applied undo steps whose before-images may be stale.
    """

    __slots__ = (
        "seen",
        "committed",
        "aborted",
        "journals",
        "boundary",
        "windows",
        "winner_order",
    )

    def __init__(self):
        self.seen: dict[str, None] = {}  # ordered set of transaction labels
        self.committed: set[str] = set()
        self.aborted: set[str] = set()
        self.journals: dict[str, dict[int, Any]] = {}
        self.boundary: dict[str, int] = {}
        self.windows: dict[str, list[dict]] = {}
        self.winner_order: list[str] = []

    def _journal(self, txn: str) -> dict[int, Any]:
        return self.journals.setdefault(txn, {})

    def _truncate(self, txn: str, from_lsn: int) -> None:
        journal = self._journal(txn)
        for lsn in [lsn for lsn in journal if lsn >= from_lsn]:
            del journal[lsn]

    def observe(self, rec: dict) -> None:
        t = rec["t"]
        txn = rec.get("txn")
        if txn is not None:
            self.seen.setdefault(txn)
        if rec.get("consumes") is not None:
            # A compensation log record: one undo step durably applied
            # during a live rollback (or a prior recovery).  The consumed
            # journal entry must never be replayed — its before-image is
            # stale once later writers touched the slot.
            self._journal(txn).pop(rec["consumes"], None)
        if t in PHYSICAL_TYPES:
            if rec.get("j"):
                self._journal(txn)[rec["lsn"]] = _journal_entry(rec)
            elif txn is not None and rec.get("consumes") is None:
                self.windows.setdefault(txn, []).append(rec)
        elif t == "subcommit":
            self._truncate(txn, rec["from_lsn"])
            self._journal(txn)[rec["lsn"]] = CompensationRecord(
                rec["oid"], rec["method"], tuple(rec["args"]), lsn=rec["lsn"]
            )
        elif t == "jtrunc":
            self._truncate(txn, rec["from_lsn"])
            self.boundary[txn] = rec["lsn"]
            self.windows.pop(txn, None)
        elif t == "comp-done":
            self._journal(txn).pop(rec["target"], None)
            self.boundary[txn] = rec["lsn"]
            self.windows.pop(txn, None)
        elif t == "commit":
            self.committed.add(txn)
            self.winner_order.append(txn)
            self._finish(txn)
        elif t == "abort-done":
            self.aborted.add(txn)
            self._finish(txn)

    def _finish(self, txn: str) -> None:
        """Prune a finished transaction's recovery state.

        Only *active* transactions can become losers, so their journals,
        windows and rollback boundaries are dead weight the moment the
        commit / abort-done record lands.  Pruning keeps the serialized
        transaction table O(active), which is what makes checkpoint cost —
        and recovery-from-checkpoint cost — flat in history length.  The
        winner/abort *orderings* stay cumulative (plain label lists): the
        crash oracle replays every winner since genesis.
        """
        self.seen.pop(txn, None)
        self.journals.pop(txn, None)
        self.boundary.pop(txn, None)
        self.windows.pop(txn, None)

    def losers(self) -> list[str]:
        return [
            txn
            for txn in self.seen
            if txn not in self.committed and txn not in self.aborted
        ]

    # -- checkpoint (de)serialization ---------------------------------------

    def to_dict(self) -> dict:
        # ``committed`` is not serialized: it is always set(winner_order).
        return {
            "seen": list(self.seen),
            "aborted": sorted(self.aborted),
            "winner_order": list(self.winner_order),
            "journals": {
                txn: [[lsn, _entry_to_dict(e)] for lsn, e in journal.items()]
                for txn, journal in self.journals.items()
                if journal
            },
            "boundary": dict(self.boundary),
            "windows": {
                txn: [dict(r) for r in recs]
                for txn, recs in self.windows.items()
                if recs
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisState":
        state = cls()
        state.seen = {txn: None for txn in data["seen"]}
        state.aborted = set(data["aborted"])
        state.winner_order = list(data["winner_order"])
        state.committed = set(state.winner_order)
        state.journals = {
            txn: {lsn: _entry_from_dict(e) for lsn, e in pairs}
            for txn, pairs in data["journals"].items()
        }
        state.boundary = dict(data["boundary"])
        state.windows = {
            txn: [dict(r) for r in recs]
            for txn, recs in data["windows"].items()
        }
        return state


def _redo(records: list[dict], store) -> int:
    """Pass 2: repeat history — rebuild the page store from scratch."""
    store.reset()
    applied = 0
    for rec in records:
        t = rec["t"]
        if t not in PHYSICAL_TYPES:
            continue
        applied += 1
        if t == "alloc":
            store.install(Page(rec["page"], rec["capacity"]))
        elif t == "dealloc":
            store.remove(rec["page"])
        elif t == "set":
            store.get(rec["page"]).slots[rec["slot"]] = rec["value"]
        else:  # del
            store.get(rec["page"]).slots.pop(rec["slot"], None)
    return applied


def _redo_durable(records: list[dict], store, start: int) -> int:
    """Pass 2, durable flavor: conditional redo from ``start``.

    History is repeated only where the durable page images have not already
    witnessed it: a record is applied iff its LSN exceeds the target page's
    pageLSN.  Skipping a ``set``/``del`` whose page is *absent* is sound —
    absence means a later ``dealloc`` (≥ redo start) removed the page, and
    that dealloc's own conditional check already ran or will run.
    """
    applied = 0
    for rec in records[start:]:
        t = rec["t"]
        if t not in PHYSICAL_TYPES:
            continue
        page_id, lsn = rec["page"], rec["lsn"]
        page_lsn = store.page_lsn(page_id)
        if t == "alloc":
            if page_lsn is None or page_lsn < lsn:
                store.install(Page(page_id, rec["capacity"]))
                store.note_write(page_id, lsn)
                applied += 1
        elif t == "dealloc":
            if page_lsn is not None and page_lsn < lsn:
                store.remove(page_id)
                applied += 1
        else:
            if page_lsn is None or page_lsn >= lsn:
                continue
            page = store.get(page_id)
            if t == "set":
                page.slots[rec["slot"]] = rec["value"]
            else:  # del
                page.slots.pop(rec["slot"], None)
            store.note_write(page_id, lsn)
            applied += 1
    return applied


def _durable_redo_start(ckpt: dict, records: list[dict]) -> int:
    """Where conditional redo must begin: min(recLSN) over the dirty-page
    table reconstructed from the checkpoint's DPT plus the log tail."""
    dpt = dict(ckpt["dpt"])
    for rec in records[ckpt["lsn"] + 1 :]:
        if rec["t"] in PHYSICAL_TYPES and rec["page"] not in dpt:
            dpt[rec["page"]] = rec["lsn"]
    return min(dpt.values()) if dpt else ckpt["lsn"] + 1


def _revert_record(db: "ObjectDatabase", rec: dict) -> None:
    """Cancel one interrupted rollback step with its own before-image."""
    txn = rec["txn"]
    if rec["t"] == "set" or rec["t"] == "del":
        entry = UndoRecord(
            page_id=rec["page"],
            slot=rec["slot"],
            had_slot=rec["had"],
            before=rec["before"],
            after=rec["value"] if rec["t"] == "set" else DELETED,
        )
        db.apply_physical(txn, entry)
    elif rec["t"] == "dealloc":
        # Bring the page back exactly as the dealloc snapshot saw it.
        db.restore_page(txn, rec["page"], rec["capacity"], dict(rec["slots"]))
    else:  # alloc mid-rollback: take it away again
        db.apply_physical(txn, PageAllocationRecord(rec["page"]))


def recover(
    wal: WriteAheadLog,
    db: "ObjectDatabase",
    *,
    store=None,
    faults: "FaultPlan | None" = None,
    skip_compensation: bool = False,
) -> RecoveryReport:
    """Rebuild ``db``'s state from the durable log and roll back losers.

    ``db`` must be a freshly materialized database whose objects were
    created by the same deterministic bootstrap as the crashed instance
    (recovery needs the object directory to re-send compensating methods).
    With the in-memory backend its page store is discarded and rebuilt from
    genesis; with a durable ``store`` (or a durable ``db.store``), analysis
    resumes from the last complete fuzzy checkpoint's transaction table and
    redo is *conditional* from min(recLSN) — pages whose images already
    witnessed a record (pageLSN ≥ LSN) are skipped, so recovery cost tracks
    the WAL tail, not all history.  The log is reopened and recovery appends
    its own records to it, so crashing *during* recovery (via ``faults``)
    and calling :func:`recover` again converges to the same state.
    ``skip_compensation`` is the ablation hook: a recovery that "forgets"
    compensation replay, which the crash oracle must catch.
    """
    wal.reopen()
    if store is not None:
        db.store = store
    db.wal = wal
    wal.bind(db.bus, db.metrics)
    durable = db.store.durable
    if durable:
        db.store.connect(
            force_log=wal.force_up_to,
            fault_hit=db._fault_hit,
            metrics=db.metrics,
        )
    # A cheap pointer copy, NOT to_list(): recovery never mutates existing
    # records, and an O(history) dict-copy here would defeat the flatness
    # the checkpoint buys.
    records = list(wal.records)
    report = RecoveryReport(records=len(records))

    ckpt = wal.durable_checkpoint() if durable else None
    if ckpt is not None:
        state = AnalysisState.from_dict(ckpt["att"])
        tail_start = ckpt["lsn"] + 1
    else:
        state = AnalysisState()
        tail_start = 0
    for rec in records[tail_start:]:
        state.observe(rec)
    if durable:
        # Adopt the state as the WAL's running analysis *before* the undo
        # loop: recovery's own appends (undo records, comp-done, abort-done)
        # must be observed, or a post-recovery checkpoint's transaction
        # table would still carry the losers it just finished unwinding.
        wal.analysis = state
    losers = state.losers()
    journals = state.journals
    # Keep winners in commit-record order — the crash oracle replays them
    # serially in exactly this order.
    report.winners = list(state.winner_order)
    report.finished_aborts = sorted(state.aborted)
    report.losers = list(losers)

    if ckpt is not None:
        report.redo_applied = _redo_durable(
            records, db.store, _durable_redo_start(ckpt, records)
        )
    elif durable:
        report.redo_applied = _redo_durable(records, db.store, 0)
    else:
        report.redo_applied = _redo(records, db.store)

    # One backward pass over everything that must be physically or
    # semantically unwound: the losers' surviving journal entries AND the
    # window records of interrupted rollback steps, in reverse *global*
    # LSN order.  Interleaving the two is essential — a before-image only
    # restores correctly once every later write to its slot has itself
    # been unwound (e.g. another loser's frame wrote a page after a
    # half-finished compensation touched it).
    merged = [
        (lsn, txn, entry)
        for txn in losers
        for lsn, entry in journals.get(txn, {}).items()
    ]
    merged.extend(
        (rec["lsn"], txn, rec)
        for txn in losers
        for rec in state.windows.get(txn, ())
    )
    merged.sort(key=lambda item: item[0], reverse=True)
    remaining = {txn: sum(1 for _, t, _ in merged if t == txn) for txn in losers}
    contexts: dict[str, Any] = {}
    for lsn, txn, entry in merged:
        if faults is not None:
            try:
                faults.hit("recovery.step")
            except SimulatedCrash:
                wal.crash()
                db.store.crash()
                raise
        if isinstance(entry, dict):
            _revert_record(db, entry)
            report.reverted += 1
        elif isinstance(entry, CompensationRecord):
            if skip_compensation:
                report.compensations_skipped += 1
            else:
                ctx = contexts.get(txn)
                if ctx is None:
                    # Reuse the loser's own label so the compensating
                    # sends' physical records attribute to it in the log.
                    ctx = db.begin(txn, log=False)
                    ctx.runtime_data["compensating"] = True
                    contexts[txn] = ctx
                db.send(ctx, entry.oid, entry.method, *entry.args)
                wal.append({"t": "comp-done", "txn": txn, "target": lsn})
                wal.sync()
                report.compensations_replayed += 1
        else:
            db.apply_physical(txn, entry)
            report.undone += 1
        remaining[txn] -= 1
        if remaining[txn] == 0:
            wal.append({"t": "abort-done", "txn": txn})
    # Losers with nothing to unwind still need a durable verdict.
    for txn in losers:
        if remaining.get(txn, 0) == 0 and not any(
            t == txn for _, t, _ in merged
        ):
            wal.append({"t": "abort-done", "txn": txn})
    wal.sync()

    # Retire the recovery contexts: their journals were bookkeeping only
    # (every effect is already durable), so clear them before release.
    for ctx in contexts.values():
        ctx.root_frame.log.entries.clear()
        db.scheduler.abort(ctx)
        ctx.status = TxnStatus.ABORTED

    if durable and not wal.crashed:
        # Make the recovered state durable and fence it with a fresh
        # checkpoint: a second recover() over this log is then a no-op
        # redo (digest-identical), and the next crash's redo tail starts
        # here rather than at the pre-crash checkpoint.
        db.store.flush_dirty()
        db.checkpoint()
    return report


# ---------------------------------------------------------------------------
# state digests (determinism / idempotence checks)
# ---------------------------------------------------------------------------


def store_snapshot(store) -> dict:
    """A plain-data snapshot of every page (capacity + slots)."""
    return {
        page_id: {
            "capacity": store.get(page_id).capacity,
            "slots": dict(store.get(page_id).slots),
        }
        for page_id in store.page_ids
    }


def store_digest(store) -> str:
    """A deterministic digest of the page store (byte-identity witness)."""
    canonical = repr(
        sorted(
            (
                page_id,
                snap["capacity"],
                sorted(snap["slots"].items(), key=lambda kv: repr(kv[0])),
            )
            for page_id, snap in store_snapshot(store).items()
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def verify_log(records: list[dict]) -> None:
    """Sanity-check a record stream (used by the CLI before recovery)."""
    for i, rec in enumerate(records):
        if "t" not in rec:
            raise DatabaseError(f"WAL record {i} has no type: {rec!r}")
        if rec.get("lsn") != i:
            raise DatabaseError(
                f"WAL record {i} carries lsn {rec.get('lsn')!r} — "
                "stream is reordered or truncated mid-prefix"
            )
