"""Durable write-ahead logging and crash recovery.

The in-memory substrate already keeps, per execution frame, exactly the
information open nested transaction theory prescribes (``repro.oodb.log``):
page-level before-images for uncommitted work, semantic compensations for
subtransactions that committed and released their low-level locks.  This
module makes that information *durable*: every physical page mutation and
every journal state transition is appended to a :class:`WriteAheadLog`,
and :func:`recover` rebuilds a database from the log alone after a crash.

Record stream
-------------

Records are JSON-serializable dicts, one per line in file mode, each
stamped with its ``lsn`` (position in the stream):

======================  =====================================================
``begin``               a top-level transaction started (synced)
``alloc``               page allocated (``j`` true when journaled, i.e. the
                        undo is a deallocation owned by the transaction)
``dealloc``             page deallocated during a rollback (carries the full
                        slot snapshot so a partial rollback can be reverted)
``set`` / ``del``       physical slot mutation with redo (``value``) *and*
                        undo (``had``/``before``) images; ``j`` true when the
                        matching :class:`UndoRecord` survives in the
                        transaction's effective journal (false for
                        bootstrap, compensating and recovery writes)
``subcommit``           an open-nested subtransaction committed: journal
                        entries from ``from_lsn`` are superseded by the
                        compensation ``(oid, method, args)`` (synced before
                        the low-level locks release — the open-nesting
                        durability rule)
``jtrunc``              journal truncated from ``from_lsn`` (a completed
                        inline subtransaction rollback)
``comp-done``           the compensation journaled at ``lsn`` was fully
                        re-sent during a rollback (synced: the logical
                        analogue of an ARIES CLR)
``commit``              commit record (synced *before* locks release)
``abort``               top-level rollback started
``abort-done``          top-level rollback finished; the journal is empty
======================  =====================================================

Recovery
--------

:func:`recover` is ARIES-shaped, adapted to open nesting:

1. **Analysis** — winners are transactions with a durable ``commit``,
   finished rollbacks have ``abort-done``; everything else seen in the log
   is a loser.  Each loser's *effective journal* is reconstructed by
   replaying the journal transitions (``j``-flagged records append,
   ``subcommit``/``jtrunc`` truncate, ``comp-done`` consumes).
2. **Redo** — the page store is rebuilt from scratch by replaying every
   physical record in LSN order ("repeating history": the durable state at
   the instant of the crash, including any partial rollback work).
3. **Revert** — a rollback step interrupted mid-flight (physical records
   after the loser's last ``comp-done``/``jtrunc`` marker) is physically
   reverted using the records' own before-images, so a partially executed
   compensation is never applied one-and-a-half times.  Reverts are logged
   like any other write, which is what makes a crash *during recovery*
   recoverable by simply running :func:`recover` again.
4. **Undo** — the losers' journals are processed in global reverse-LSN
   order: before-images restore uncommitted low-level writes (idempotent),
   compensations are re-sent through the object layer (logged with
   ``comp-done`` as they complete).  Each finished loser gets an
   ``abort-done`` record, making recovery itself idempotent: a second
   :func:`recover` over the extended log is pure redo and yields a
   byte-identical page store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DatabaseError, SimulatedCrash
from repro.obs.events import EventBus, WalAppend, WalSync
from repro.oodb.context import TxnStatus
from repro.oodb.log import (
    DELETED,
    CompensationRecord,
    PageAllocationRecord,
    UndoRecord,
)
from repro.oodb.pages import Page

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.oodb.database import ObjectDatabase

#: record types that mutate the page store (replayed by the redo pass)
PHYSICAL_TYPES = frozenset({"alloc", "dealloc", "set", "del"})


class WriteAheadLog:
    """An append-only log with explicit sync points.

    Appended records sit in a volatile buffer until :meth:`sync` moves them
    to the durable prefix (and, in file mode, to disk).  :meth:`crash`
    models the system dying: the buffer is lost, the durable prefix is all
    recovery will ever see.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        #: the durable prefix — everything a crash cannot take away
        self.records: list[dict] = []
        self._buffer: list[dict] = []
        self._crashed = False
        #: lazily opened, kept across syncs: one buffered write + one flush
        #: per sync point instead of an open/write-per-record cycle
        self._fh = None
        # Observability (bound by the owning database, see :meth:`bind`):
        # an inert bus until then, and no metrics at all — the log must
        # stay usable standalone (recovery rebuilds databases around it).
        self.bus = EventBus()
        self._rec_family = None
        self._n_syncs = None
        self._n_synced_records = None

    def bind(self, bus, metrics) -> None:
        """Adopt the owning database's event bus and metrics registry."""
        self.bus = bus
        self._rec_family = metrics.counter(
            "wal_records_total",
            "WAL records appended, by record type",
            labelnames=("type",),
        )
        self._n_syncs = metrics.counter(
            "wal_syncs_total", "write barriers forced"
        )
        self._n_synced_records = metrics.counter(
            "wal_synced_records_total", "records made durable by a sync"
        )

    # -- appending ----------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return len(self.records) + len(self._buffer)

    def append(self, record: dict) -> int:
        """Buffer one record; returns its LSN (or -1 after a crash)."""
        if self._crashed:
            return -1
        record = dict(record)
        lsn = record["lsn"] = self.next_lsn
        self._buffer.append(record)
        if self._rec_family is not None:
            self._rec_family.labels(type=record.get("t", "?")).value += 1
        bus = self.bus
        if bus.active:
            bus.emit(
                WalAppend(
                    txn=record.get("txn") or "",
                    rec=record.get("t", "?"),
                    lsn=lsn,
                    tick=bus.now(),
                )
            )
        return lsn

    def sync(self) -> None:
        """Force the buffer to the durable prefix (a write barrier).

        In file mode the whole buffer goes down as a single write followed
        by a single flush on a persistent handle — the write barrier is per
        sync point, not per record.
        """
        if self._crashed or not self._buffer:
            return
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(
                "".join(
                    json.dumps(record, sort_keys=True) + "\n"
                    for record in self._buffer
                )
            )
            self._fh.flush()
        flushed = len(self._buffer)
        self.records.extend(self._buffer)
        self._buffer = []
        if self._n_syncs is not None:
            self._n_syncs.value += 1
            self._n_synced_records.value += flushed
        bus = self.bus
        if bus.active:
            bus.emit(
                WalSync(
                    records=flushed,
                    lsn=len(self.records) - 1,
                    tick=bus.now(),
                )
            )

    def close(self) -> None:
        """Release the backing file handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- crash surface ------------------------------------------------------

    def crash(self) -> None:
        """The system dies: unsynced records are gone, appends turn no-op."""
        self._buffer = []
        self._crashed = True

    def reopen(self) -> None:
        """Reopen the log for recovery appends after a crash."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_list(self) -> list[dict]:
        return [dict(r) for r in self.records]

    @classmethod
    def load(cls, path: str) -> "WriteAheadLog":
        """Read a JSONL log file back into an in-memory durable prefix."""
        wal = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    wal.records.append(json.loads(line))
        return wal

    @classmethod
    def from_records(cls, records: list[dict]) -> "WriteAheadLog":
        wal = cls()
        wal.records = [dict(r) for r in records]
        return wal


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one :func:`recover` run found and did."""

    records: int = 0
    winners: list[str] = field(default_factory=list)
    finished_aborts: list[str] = field(default_factory=list)
    losers: list[str] = field(default_factory=list)
    redo_applied: int = 0
    reverted: int = 0
    undone: int = 0
    compensations_replayed: int = 0
    compensations_skipped: int = 0

    def describe(self) -> str:
        return (
            f"recovered {self.records} records: "
            f"{len(self.winners)} winner(s) {sorted(self.winners)}, "
            f"{len(self.losers)} loser(s) {sorted(self.losers)} "
            f"(redo {self.redo_applied}, revert {self.reverted}, "
            f"undo {self.undone}, compensations {self.compensations_replayed}"
            + (
                f", SKIPPED {self.compensations_skipped}"
                if self.compensations_skipped
                else ""
            )
            + ")"
        )


def _journal_entry(rec: dict):
    """The in-memory journal entry a ``j``-flagged physical record implies.

    The entry keeps its record's LSN so that replaying it during recovery
    emits a ``consumes``-tagged compensation log record — a crash during
    recovery then sees the consumption and does not replay it twice.
    """
    if rec["t"] == "alloc":
        return PageAllocationRecord(rec["page"], lsn=rec["lsn"])
    return UndoRecord(
        page_id=rec["page"],
        slot=rec["slot"],
        had_slot=rec["had"],
        before=rec["before"],
        after=rec["value"] if rec["t"] == "set" else DELETED,
        lsn=rec["lsn"],
    )


def _analyze(records: list[dict]):
    """Pass 1: winners, losers, effective journals, rollback boundaries."""
    seen: dict[str, None] = {}  # ordered set of transaction labels
    committed: set[str] = set()
    aborted: set[str] = set()
    journals: dict[str, dict[int, Any]] = {}
    boundary: dict[str, int] = {}

    def journal(txn: str) -> dict[int, Any]:
        return journals.setdefault(txn, {})

    def truncate(txn: str, from_lsn: int) -> None:
        j = journal(txn)
        for lsn in [lsn for lsn in j if lsn >= from_lsn]:
            del j[lsn]

    for rec in records:
        t = rec["t"]
        txn = rec.get("txn")
        if txn is not None:
            seen.setdefault(txn)
        if rec.get("consumes") is not None:
            # A compensation log record: one undo step durably applied
            # during a live rollback (or a prior recovery).  The consumed
            # journal entry must never be replayed — its before-image is
            # stale once later writers touched the slot.
            journal(txn).pop(rec["consumes"], None)
        if t in ("set", "del", "alloc") and rec.get("j"):
            journal(txn)[rec["lsn"]] = _journal_entry(rec)
        elif t == "subcommit":
            truncate(txn, rec["from_lsn"])
            journal(txn)[rec["lsn"]] = CompensationRecord(
                rec["oid"], rec["method"], tuple(rec["args"]), lsn=rec["lsn"]
            )
        elif t == "jtrunc":
            truncate(txn, rec["from_lsn"])
            boundary[txn] = rec["lsn"]
        elif t == "comp-done":
            journal(txn).pop(rec["target"], None)
            boundary[txn] = rec["lsn"]
        elif t == "commit":
            committed.add(txn)
        elif t == "abort-done":
            aborted.add(txn)
            journals[txn] = {}
    losers = [
        txn for txn in seen if txn not in committed and txn not in aborted
    ]
    return committed, aborted, losers, journals, boundary


def _redo(records: list[dict], store) -> int:
    """Pass 2: repeat history — rebuild the page store from scratch."""
    store.reset()
    applied = 0
    for rec in records:
        t = rec["t"]
        if t not in PHYSICAL_TYPES:
            continue
        applied += 1
        if t == "alloc":
            store.install(Page(rec["page"], rec["capacity"]))
        elif t == "dealloc":
            store.remove(rec["page"])
        elif t == "set":
            store.get(rec["page"]).slots[rec["slot"]] = rec["value"]
        else:  # del
            store.get(rec["page"]).slots.pop(rec["slot"], None)
    return applied


def _collect_windows(
    records: list[dict],
    losers: list[str],
    boundary: dict[str, int],
) -> list[dict]:
    """The physical records of rollback steps interrupted mid-flight.

    A loser's *window* is its non-journaled physical records after its last
    rollback-progress marker: the writes of a compensation that started but
    whose ``comp-done`` never became durable.  Reverting them — strictly
    interleaved with the journal's undo entries in reverse global LSN
    order — walks each slot's history backward.  Where writes of different
    transactions *did* interleave on a slot (commuting updates, concurrent
    rollbacks), delta-aware undo (``UndoRecord.resolve``) removes exactly
    this record's contribution instead of resurrecting a stale absolute
    before-image over surviving work.

    ``consumes``-tagged records are excluded: they are compensation log
    records (durably applied undo steps), redone but never reverted — the
    rollbacks of concurrent losers *can* interleave on a page through the
    lock-free undo path, so their before-images may be stale.  Analysis
    already popped their journal entries, so nothing replays them either.
    """
    loser_set = set(losers)
    return [
        rec
        for rec in records
        if (
            rec.get("txn") in loser_set
            and rec["t"] in PHYSICAL_TYPES
            and not rec.get("j")
            and rec.get("consumes") is None
            and rec["lsn"] > boundary.get(rec["txn"], -1)
        )
    ]


def _revert_record(db: "ObjectDatabase", rec: dict) -> None:
    """Cancel one interrupted rollback step with its own before-image."""
    txn = rec["txn"]
    if rec["t"] == "set" or rec["t"] == "del":
        entry = UndoRecord(
            page_id=rec["page"],
            slot=rec["slot"],
            had_slot=rec["had"],
            before=rec["before"],
            after=rec["value"] if rec["t"] == "set" else DELETED,
        )
        db.apply_physical(txn, entry)
    elif rec["t"] == "dealloc":
        # Bring the page back exactly as the dealloc snapshot saw it.
        db.restore_page(txn, rec["page"], rec["capacity"], dict(rec["slots"]))
    else:  # alloc mid-rollback: take it away again
        db.apply_physical(txn, PageAllocationRecord(rec["page"]))


def recover(
    wal: WriteAheadLog,
    db: "ObjectDatabase",
    *,
    faults: "FaultPlan | None" = None,
    skip_compensation: bool = False,
) -> RecoveryReport:
    """Rebuild ``db``'s state from the durable log and roll back losers.

    ``db`` must be a freshly materialized database whose objects were
    created by the same deterministic bootstrap as the crashed instance
    (recovery needs the object directory to re-send compensating methods);
    its page store is discarded and rebuilt from the log.  The log is
    reopened and recovery appends its own records to it, so crashing *during*
    recovery (via ``faults``) and calling :func:`recover` again converges to
    the same state.  ``skip_compensation`` is the ablation hook: a recovery
    that "forgets" compensation replay, which the crash oracle must catch.
    """
    wal.reopen()
    db.wal = wal
    wal.bind(db.bus, db.metrics)
    records = wal.to_list()
    report = RecoveryReport(records=len(records))

    committed, aborted, losers, journals, boundary = _analyze(records)
    # Keep winners in commit-record order — the crash oracle replays them
    # serially in exactly this order.
    report.winners = [r["txn"] for r in records if r["t"] == "commit"]
    report.finished_aborts = sorted(aborted)
    report.losers = list(losers)

    report.redo_applied = _redo(records, db.store)

    # One backward pass over everything that must be physically or
    # semantically unwound: the losers' surviving journal entries AND the
    # window records of interrupted rollback steps, in reverse *global*
    # LSN order.  Interleaving the two is essential — a before-image only
    # restores correctly once every later write to its slot has itself
    # been unwound (e.g. another loser's frame wrote a page after a
    # half-finished compensation touched it).
    merged = [
        (lsn, txn, entry)
        for txn in losers
        for lsn, entry in journals.get(txn, {}).items()
    ]
    merged.extend(
        (rec["lsn"], rec["txn"], rec)
        for rec in _collect_windows(records, losers, boundary)
    )
    merged.sort(key=lambda item: item[0], reverse=True)
    remaining = {txn: sum(1 for _, t, _ in merged if t == txn) for txn in losers}
    contexts: dict[str, Any] = {}
    for lsn, txn, entry in merged:
        if faults is not None:
            try:
                faults.hit("recovery.step")
            except SimulatedCrash:
                wal.crash()
                raise
        if isinstance(entry, dict):
            _revert_record(db, entry)
            report.reverted += 1
        elif isinstance(entry, CompensationRecord):
            if skip_compensation:
                report.compensations_skipped += 1
            else:
                ctx = contexts.get(txn)
                if ctx is None:
                    # Reuse the loser's own label so the compensating
                    # sends' physical records attribute to it in the log.
                    ctx = db.begin(txn, log=False)
                    ctx.runtime_data["compensating"] = True
                    contexts[txn] = ctx
                db.send(ctx, entry.oid, entry.method, *entry.args)
                wal.append({"t": "comp-done", "txn": txn, "target": lsn})
                wal.sync()
                report.compensations_replayed += 1
        else:
            db.apply_physical(txn, entry)
            report.undone += 1
        remaining[txn] -= 1
        if remaining[txn] == 0:
            wal.append({"t": "abort-done", "txn": txn})
    # Losers with nothing to unwind still need a durable verdict.
    for txn in losers:
        if remaining.get(txn, 0) == 0 and not any(
            t == txn for _, t, _ in merged
        ):
            wal.append({"t": "abort-done", "txn": txn})
    wal.sync()

    # Retire the recovery contexts: their journals were bookkeeping only
    # (every effect is already durable), so clear them before release.
    for ctx in contexts.values():
        ctx.root_frame.log.entries.clear()
        db.scheduler.abort(ctx)
        ctx.status = TxnStatus.ABORTED
    return report


# ---------------------------------------------------------------------------
# state digests (determinism / idempotence checks)
# ---------------------------------------------------------------------------


def store_snapshot(store) -> dict:
    """A plain-data snapshot of every page (capacity + slots)."""
    return {
        page_id: {
            "capacity": store.get(page_id).capacity,
            "slots": dict(store.get(page_id).slots),
        }
        for page_id in store.page_ids
    }


def store_digest(store) -> str:
    """A deterministic digest of the page store (byte-identity witness)."""
    canonical = repr(
        sorted(
            (
                page_id,
                snap["capacity"],
                sorted(snap["slots"].items(), key=lambda kv: repr(kv[0])),
            )
            for page_id, snap in store_snapshot(store).items()
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def verify_log(records: list[dict]) -> None:
    """Sanity-check a record stream (used by the CLI before recovery)."""
    for i, rec in enumerate(records):
        if "t" not in rec:
            raise DatabaseError(f"WAL record {i} has no type: {rec!r}")
        if rec.get("lsn") != i:
            raise DatabaseError(
                f"WAL record {i} carries lsn {rec.get('lsn')!r} — "
                "stream is reordered or truncated mid-prefix"
            )
