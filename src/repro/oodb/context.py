"""Transaction contexts: the runtime state of one top-level transaction.

A context owns the transaction's call-tree root (its trace), a stack of
execution frames (one per action currently being executed), and bookkeeping
for statistics.  Contexts are created by
:meth:`repro.oodb.database.ObjectDatabase.begin` and driven by ``send`` /
``commit`` / ``abort``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.actions import ActionNode
from repro.core.transactions import OOTransaction
from repro.oodb.log import FrameLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.method import MethodSpec
    from repro.oodb.object_model import DatabaseObject


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Frame:
    """One action execution in progress."""

    node: ActionNode
    log: FrameLog = field(default_factory=FrameLog)
    receiver: "DatabaseObject | None" = None
    spec: "MethodSpec | None" = None
    #: WAL position when the frame started — the frame's records occupy
    #: LSNs >= wal_mark, which is what a durable subcommit/jtrunc truncates
    wal_mark: int = 0


@dataclass
class TxnStats:
    """Per-transaction counters filled in by the database and the runtime."""

    actions: int = 0
    page_reads: int = 0
    page_writes: int = 0
    lock_waits: int = 0
    wait_ticks: int = 0
    restarts: int = 0
    begin_tick: int = 0
    commit_tick: int = 0


class TransactionContext:
    """Runtime state of one top-level transaction."""

    def __init__(self, txn: OOTransaction):
        self.txn = txn
        self.status = TxnStatus.ACTIVE
        self.frames: list[Frame] = [Frame(node=txn.root)]
        self.stats = TxnStats()
        #: free-form slot for schedulers/executors (e.g. thread handle)
        self.runtime_data: dict[str, Any] = {}

    @property
    def txn_id(self) -> str:
        return self.txn.label

    @property
    def root_frame(self) -> Frame:
        return self.frames[0]

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    @property
    def is_active(self) -> bool:
        return self.status == TxnStatus.ACTIVE

    @property
    def depth(self) -> int:
        """Nesting depth of the current execution point (root = 0)."""
        return len(self.frames) - 1

    def push(self, frame: Frame) -> None:
        self.frames.append(frame)

    def pop(self) -> Frame:
        if len(self.frames) == 1:
            raise RuntimeError("cannot pop the root frame")
        return self.frames.pop()

    def __repr__(self) -> str:
        return f"<TransactionContext {self.txn_id} {self.status.value} depth={self.depth}>"
