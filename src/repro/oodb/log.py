"""Undo and compensation logs.

Two recovery mechanisms coexist, exactly as open nested transaction theory
prescribes:

- **Page-level undo** for work whose subtransaction has *not* yet committed:
  before-images of slot writes, applied in reverse on abort.
- **Compensation** for subtransactions that *have* committed and released
  their low-level locks: the before-images are gone (other transactions may
  already have built on the pages), so the abort re-sends the registered
  compensating method calls instead.

Both kinds of record live in one chronological journal per execution frame,
so that an abort can process them strictly in reverse order of execution —
interleavings of direct slot writes and committed subtransactions roll back
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class UndoRecord:
    """Before-image of one slot write (or slot creation/deletion)."""

    page_id: str
    slot: Any
    had_slot: bool
    before: Any

    def apply(self, store) -> None:
        """Restore the before-image on the page."""
        page = store.get(self.page_id)
        if self.had_slot:
            page.slots[self.slot] = self.before
        else:
            page.slots.pop(self.slot, None)


@dataclass(frozen=True)
class PageAllocationRecord:
    """Undo record for a page allocated inside the transaction."""

    page_id: str

    def apply(self, store) -> None:
        if self.page_id in store:
            store.deallocate(self.page_id)


@dataclass(frozen=True)
class CompensationRecord:
    """A semantic undo: re-send ``method(args)`` to ``oid`` on abort."""

    oid: str
    method: str
    args: tuple

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"compensate {self.oid}.{self.method}({rendered})"


LogEntry = Union[UndoRecord, PageAllocationRecord, CompensationRecord]


class FrameLog:
    """The chronological journal of one execution frame.

    When the frame commits, its journal is merged into the parent frame
    (conventional schedulers) or reduced to a single compensation record
    (open nested schedulers) — see ``ObjectDatabase``.
    """

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record(self, entry: LogEntry) -> None:
        self.entries.append(entry)

    def merge_child(self, child: "FrameLog") -> None:
        """Absorb a finished child frame, preserving chronology."""
        self.entries.extend(child.entries)
        child.entries = []

    @property
    def undo_entries(self) -> list[LogEntry]:
        return [e for e in self.entries if not isinstance(e, CompensationRecord)]

    @property
    def compensations(self) -> list[CompensationRecord]:
        return [e for e in self.entries if isinstance(e, CompensationRecord)]

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def __len__(self) -> int:
        return len(self.entries)
