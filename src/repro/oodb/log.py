"""Undo and compensation logs.

Two recovery mechanisms coexist, exactly as open nested transaction theory
prescribes:

- **Page-level undo** for work whose subtransaction has *not* yet committed:
  before-images of slot writes, applied in reverse on abort.
- **Compensation** for subtransactions that *have* committed and released
  their low-level locks: the before-images are gone (other transactions may
  already have built on the pages), so the abort re-sends the registered
  compensating method calls instead.

Both kinds of record live in one chronological journal per execution frame,
so that an abort can process them strictly in reverse order of execution —
interleavings of direct slot writes and committed subtransactions roll back
correctly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Union


class _Sentinel:
    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self._name


#: the forward action's after-image is not known (legacy absolute undo)
UNKNOWN = _Sentinel("UNKNOWN")
#: the forward action deleted the slot (there is no after-value)
DELETED = _Sentinel("DELETED")


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class UndoRecord:
    """Before/after-image of one slot write (or slot creation/deletion).

    ``lsn`` is the position of the matching durable WAL record, when a log
    is attached.  Consuming the entry during rollback or recovery emits a
    compensation log record tagged ``consumes: lsn`` so that analysis after
    a crash knows this entry is already undone and never replays it.

    ``after`` (the value the forward write left behind) makes undo safe
    under *commuting* concurrency: protocols in this codebase may let two
    update methods write the same slot concurrently when their methods
    commute, so by the time an abort consumes this record the slot may
    hold later writers' deltas on top of ours.  Blindly restoring the
    absolute ``before`` would erase their work; when the current value has
    moved past ``after`` (numerically), undo subtracts exactly the forward
    delta instead.  Under strict page locking ``current == after`` always,
    and the two strategies coincide.
    """

    page_id: str
    slot: Any
    had_slot: bool
    before: Any
    after: Any = field(default=UNKNOWN, compare=False)
    lsn: int | None = field(default=None, compare=False)

    def resolve(self, store) -> tuple:
        """The concrete mutation undoing this record *now*.

        Returns ``("set", value)`` or ``("del", None)`` against the store's
        current state, choosing delta-undo over the absolute before-image
        when later commuting writers have moved the slot past ``after``.
        """
        page = store.get(self.page_id)
        exact = ("set", self.before) if self.had_slot else ("del", None)
        if self.after is UNKNOWN or self.after is DELETED:
            return exact
        if not page.has(self.slot):
            # The forward-written slot is gone: nothing newer to preserve.
            return exact
        current = page.read(self.slot)
        if current == self.after:
            return exact
        base = self.before if self.had_slot else 0
        if _numeric(current) and _numeric(self.after) and _numeric(base):
            return ("set", base + (current - self.after))
        return exact

    def apply(self, store) -> None:
        """Undo the forward action on the page (delta-aware, see above)."""
        action, value = self.resolve(store)
        page = store.get(self.page_id)
        if action == "set":
            page.slots[self.slot] = value
        else:
            page.slots.pop(self.slot, None)


@dataclass(frozen=True)
class PageAllocationRecord:
    """Undo record for a page allocated inside the transaction.

    ``lsn`` points at the durable ``alloc`` record, like
    :attr:`UndoRecord.lsn`.
    """

    page_id: str
    lsn: int | None = field(default=None, compare=False)

    def apply(self, store) -> None:
        if self.page_id in store:
            store.deallocate(self.page_id)


@dataclass(frozen=True)
class CompensationRecord:
    """A semantic undo: re-send ``method(args)`` to ``oid`` on abort.

    ``args`` are deep-copied at registration time: the caller may mutate
    its argument objects after the subtransaction commits, and a
    compensation replayed later (abort or crash recovery) must see the
    values as they were when the forward method ran.

    ``lsn`` is the record's position in the durable write-ahead log, when
    one is attached — rollbacks mark replayed compensations as consumed
    (``comp-done``) by this LSN.
    """

    oid: str
    method: str
    args: tuple
    lsn: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", copy.deepcopy(tuple(self.args)))

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"compensate {self.oid}.{self.method}({rendered})"


LogEntry = Union[UndoRecord, PageAllocationRecord, CompensationRecord]


class FrameLog:
    """The chronological journal of one execution frame.

    When the frame commits, its journal is merged into the parent frame
    (conventional schedulers) or reduced to a single compensation record
    (open nested schedulers) — see ``ObjectDatabase``.
    """

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record(self, entry: LogEntry) -> None:
        self.entries.append(entry)

    def merge_child(self, child: "FrameLog") -> None:
        """Absorb a finished child frame, preserving chronology."""
        self.entries.extend(child.entries)
        child.entries = []

    @property
    def undo_entries(self) -> list[LogEntry]:
        return [e for e in self.entries if not isinstance(e, CompensationRecord)]

    @property
    def compensations(self) -> list[CompensationRecord]:
        return [e for e in self.entries if isinstance(e, CompensationRecord)]

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def __len__(self) -> int:
        return len(self.entries)
