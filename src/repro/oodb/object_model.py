"""The object model: encapsulated, page-backed database objects.

A database object type is a Python class deriving from
:class:`DatabaseObject`.  Its public interface is the set of methods
decorated with :func:`~repro.oodb.method.dbmethod`; its semantics are given
by the class attribute ``commutativity`` (a
:class:`~repro.core.commutativity.CommutativitySpec`).

Encapsulation is enforced: an object's state (``self.data``, a slot proxy
over its page) is only accessible while one of the object's *own* methods is
executing.  Reaching into another object's slots — even from inside a method
of a different object — raises :class:`~repro.errors.EncapsulationError`;
the only way to interact with another object is to send it a message via
``self.call``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Any, ClassVar

from repro.core.commutativity import CommutativitySpec, ConflictAll
from repro.errors import EncapsulationError
from repro.oodb.method import MethodSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import ObjectDatabase


class SlotProxy:
    """Mapping view of an object's page slots with full bookkeeping.

    Every access funnels through the database so that it (a) checks
    encapsulation, (b) records the primitive read/write action in the trace,
    (c) consults the concurrency-control scheduler, and (d) writes undo
    records for updates.
    """

    __slots__ = ("_db", "_owner")

    def __init__(self, db: "ObjectDatabase", owner: "DatabaseObject"):
        self._db = db
        self._owner = owner

    def __getitem__(self, slot: Any) -> Any:
        sentinel = object()
        value = self._db.page_read(self._owner, slot, sentinel)
        if value is sentinel:
            raise KeyError(slot)
        return value

    def get(self, slot: Any, default: Any = None) -> Any:
        return self._db.page_read(self._owner, slot, default)

    def __setitem__(self, slot: Any, value: Any) -> None:
        self._db.page_write(self._owner, slot, value)

    def __delitem__(self, slot: Any) -> None:
        self._db.page_delete(self._owner, slot)

    def __contains__(self, slot: Any) -> bool:
        return self._db.page_has(self._owner, slot)

    def keys(self) -> list[Any]:
        return self._db.page_keys(self._owner)

    def items(self) -> list[tuple[Any, Any]]:
        return [(key, self[key]) for key in self.keys()]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())


class DatabaseObject:
    """Base class of all database object types.

    Subclasses override :meth:`setup` for initialization, declare their
    semantics in ``commutativity`` and define ``@dbmethod``-decorated
    methods.  Instances are created through
    :meth:`~repro.oodb.database.ObjectDatabase.create` (bootstrap) or
    :meth:`db_create` (from inside a method), never directly.
    """

    #: Definition 9 semantics of this object type.  The safe default is
    #: "everything conflicts"; types declare what commutes.
    commutativity: ClassVar[CommutativitySpec] = ConflictAll()

    #: Override to give instances a non-default page capacity (e.g. B+ tree
    #: leaves sized by the keys-per-page experiment parameter).
    page_capacity: ClassVar[int | None] = None

    def __init__(self, db: "ObjectDatabase", oid: str, page_id: str):
        self._db = db
        self._oid = oid
        self._page_id = page_id

    # -- identity ------------------------------------------------------------

    @property
    def oid(self) -> str:
        return self._oid

    @property
    def page_id(self) -> str:
        """The page holding this object's state (1:1 by default)."""
        return self._page_id

    # -- state access -----------------------------------------------------------

    @property
    def data(self) -> SlotProxy:
        """The object's encapsulated slot storage.

        Raises :class:`EncapsulationError` when touched outside one of this
        object's own method executions.
        """
        self._db.check_encapsulation(self)
        return SlotProxy(self._db, self)

    def state_snapshot(self) -> Any:
        """Optional state snapshot passed to state-dependent commutativity
        specifications (the escrow method).  Default: no snapshot."""
        return None

    # -- messaging ----------------------------------------------------------------

    def call(self, oid: str, method: str, *args: Any) -> Any:
        """Send a message to another object (or this one) — the only legal
        inter-object interaction."""
        return self._db.nested_send(oid, method, args)

    def db_create(
        self,
        cls: type["DatabaseObject"],
        *args: Any,
        oid: str | None = None,
        page_capacity: int | None = None,
    ) -> str:
        """Create a new object from inside a method (traced, undoable)."""
        return self._db.create_nested(cls, args, oid=oid, page_capacity=page_capacity)

    # -- lifecycle -----------------------------------------------------------------

    def setup(self, *args: Any) -> None:
        """Initialize the object's slots; runs inside a creation frame."""

    # -- type introspection -----------------------------------------------------------

    @classmethod
    def method_specs(cls) -> dict[str, MethodSpec]:
        """All ``@dbmethod``-decorated methods of this type (MRO-aware)."""
        specs: dict[str, MethodSpec] = {}
        for klass in reversed(cls.__mro__):
            for name, attr in vars(klass).items():
                spec = getattr(attr, "__dbmethod__", None)
                if spec is not None:
                    specs[name] = spec
        return specs

    @classmethod
    def method_spec(cls, name: str) -> MethodSpec:
        specs = cls.method_specs()
        if name not in specs:
            from repro.errors import UnknownMethodError

            raise UnknownMethodError(
                f"{cls.__name__} defines no database method {name!r}"
            )
        return specs[name]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._oid}>"


def ensure_database_object_type(cls: type) -> None:
    """Validate a type before registration (clear error beats a late one)."""
    if not (isinstance(cls, type) and issubclass(cls, DatabaseObject)):
        raise EncapsulationError(
            f"{cls!r} is not a DatabaseObject subclass"
        )
