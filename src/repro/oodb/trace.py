"""Trace utilities: from executed runs to analyzable transaction systems.

An :class:`~repro.oodb.database.ObjectDatabase` records *every* transaction
attempt, including deadlock victims that were rolled back.  Serializability
is a property of the committed projection of a history, so the analysis of
a run with aborts must be restricted to the committed top-level
transactions: :func:`committed_projection` builds a transaction system
containing exactly those call trees (shared, not copied — analysis is
read-mostly, and the Definition 5 extension of the projection touches only
committed trees).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.transactions import TransactionSystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import ObjectDatabase
    from repro.runtime.executor import ExecutionResult


def committed_projection(
    system: TransactionSystem, labels: Iterable[str]
) -> TransactionSystem:
    """A transaction system holding only the given top-level transactions.

    The projection *shares* the underlying call trees with ``system`` (it
    does not deep-copy actions), so analyses of the projection see the same
    seq stamps.  Extending the projection (Definition 5) mutates only the
    shared committed trees.
    """
    wanted = set(labels)
    projection = TransactionSystem()
    projection._seq_counter = system._seq_counter  # share the clock
    for txn in system.tops:
        if txn.label in wanted:
            projection._tops.append(txn)
    for oid in system.objects:
        projection.declare_object(oid)
    return projection


def analyze_committed(result: "ExecutionResult", **kwargs):
    """Run the oo-serializability analysis on a run's committed projection.

    Convenience wrapper used by property tests and benches: takes the
    :class:`ExecutionResult` of an interleaved run, projects the trace onto
    the committed transactions and analyzes it with the database's own
    commutativity registry.  Returns ``(SystemVerdict, schedules)``.
    """
    from repro.core.serializability import analyze_system

    db = result.db
    projection = committed_projection(db.system, result.committed_labels)
    return analyze_system(projection, db.commutativity_registry(), **kwargs)
