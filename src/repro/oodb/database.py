"""The object database: OIDs, message dispatch, tracing, recovery.

:class:`ObjectDatabase` ties the substrate together.  Every message send

1. appends an action node to the sending transaction's call tree (so a
   finished run *is* a :class:`~repro.core.transactions.TransactionSystem`
   ready for the Definition 10/11 analysis),
2. asks the concurrency-control scheduler for permission (which may block
   the transaction or abort it),
3. executes the method inside a fresh frame with its own undo journal, and
4. on completion applies the open-nesting commit rule: a subtransaction
   with a registered compensation releases its low-level locks and leaves
   only the compensation behind; otherwise its journal is retained by the
   caller.

Primitive page accesses follow the same path with implicit ``read`` /
``write`` actions, giving the Axiom 1 bootstrap level for free.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TYPE_CHECKING

from repro.core.actions import ActionNode, Invocation
from repro.core.commutativity import CommutativityRegistry, ReadWriteCommutativity
from repro.core.transactions import TransactionSystem
from repro.errors import (
    DatabaseError,
    EncapsulationError,
    TransactionAborted,
    UnknownObjectError,
)
from repro.oodb.context import Frame, TransactionContext, TxnStatus
from repro.oodb.log import (
    CompensationRecord,
    FrameLog,
    PageAllocationRecord,
    UndoRecord,
)
from repro.oodb.object_model import DatabaseObject, ensure_database_object_type
from repro.oodb.pages import DEFAULT_PAGE_CAPACITY, PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.locking.interfaces import Scheduler


class ObjectDatabase:
    """An object-oriented database instance.

    Parameters
    ----------
    scheduler:
        The concurrency-control protocol; defaults to
        :class:`~repro.locking.interfaces.NoConcurrencyControl` (tracing
        only).
    page_capacity:
        Default slots per page — the "keys per page" experiment knob.
    """

    def __init__(
        self,
        scheduler: "Scheduler | None" = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        from repro.locking.interfaces import NoConcurrencyControl

        self.store = PageStore(page_capacity)
        self.system = TransactionSystem()
        self.scheduler: "Scheduler" = scheduler or NoConcurrencyControl()
        self.scheduler.attach(self)
        #: optional simulation environment; when set, every action request
        #: is an interleaving checkpoint
        self.env = None
        self._objects: dict[str, DatabaseObject] = {}
        self._oid_counters: dict[str, int] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # object management
    # ------------------------------------------------------------------

    def create(
        self,
        cls: type[DatabaseObject],
        *args: Any,
        oid: str | None = None,
        page_capacity: int | None = None,
    ) -> str:
        """Create an object at bootstrap time (outside any transaction)."""
        if self._current_ctx() is not None:
            raise DatabaseError(
                "create() is for bootstrap; use DatabaseObject.db_create "
                "inside transactions"
            )
        obj = self._instantiate(cls, oid, page_capacity)
        self._run_setup(obj, args)
        return obj.oid

    def create_nested(
        self,
        cls: type[DatabaseObject],
        args: tuple,
        *,
        oid: str | None = None,
        page_capacity: int | None = None,
    ) -> str:
        """Create an object from inside a running method (traced, undoable)."""
        ctx = self._require_ctx()
        obj = self._instantiate(cls, oid, page_capacity)
        ctx.current_frame.log.record(PageAllocationRecord(obj.page_id))
        self._dispatch_create(ctx, obj, args)
        return obj.oid

    def _instantiate(
        self,
        cls: type[DatabaseObject],
        oid: str | None,
        page_capacity: int | None,
    ) -> DatabaseObject:
        ensure_database_object_type(cls)
        if oid is None:
            count = self._oid_counters.get(cls.__name__, 0) + 1
            self._oid_counters[cls.__name__] = count
            oid = f"{cls.__name__}{count}"
        if oid in self._objects:
            raise DatabaseError(f"object id {oid!r} already exists")
        capacity = page_capacity or cls.page_capacity
        page = self.store.allocate(capacity=capacity)
        obj = cls(self, oid, page.page_id)
        self._objects[oid] = obj
        return obj

    def _run_setup(self, obj: DatabaseObject, args: tuple) -> None:
        """Run ``setup`` at bootstrap, inside a creation scope."""
        stack = self._creation_stack()
        stack.append(obj)
        try:
            obj.setup(*args)
        finally:
            stack.pop()

    def _dispatch_create(
        self, ctx: TransactionContext, obj: DatabaseObject, args: tuple
    ) -> None:
        """Run ``setup`` inside a transaction, as a traced ``create`` action."""
        parent_frame = ctx.current_frame
        node = parent_frame.node.call(obj.oid, "create", args)
        self._checkpoint()
        self.scheduler.request(ctx, node, Invocation(obj.oid, "create", args))
        node.seq = self.system._next_seq()
        frame = Frame(node=node, receiver=obj, spec=None)
        ctx.push(frame)
        ctx.stats.actions += 1
        try:
            obj.setup(*args)
        except BaseException:
            ctx.pop()
            parent_frame.log.merge_child(frame.log)
            raise
        ctx.pop()
        # creation is never released early: undo must deallocate the page
        parent_frame.log.merge_child(frame.log)
        self.scheduler.end_action(ctx, node, release=False)

    def get_object(self, oid: str) -> DatabaseObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(f"no object {oid!r}") from None

    def has_object(self, oid: str) -> bool:
        return oid in self._objects

    @property
    def object_ids(self) -> list[str]:
        return list(self._objects)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self, label: str | None = None) -> TransactionContext:
        txn = self.system.transaction(label)
        ctx = TransactionContext(txn)
        self.scheduler.begin(ctx)
        return ctx

    def send(self, ctx: TransactionContext, oid: str, method: str, *args: Any) -> Any:
        """Send a top-level message on behalf of ``ctx``.

        Binds the context to the calling thread for the duration, so nested
        ``self.call`` sends find it.
        """
        previous = self._current_ctx()
        if previous is not None and previous is not ctx:
            raise DatabaseError(
                "another transaction context is already active on this thread"
            )
        self._local.ctx = ctx
        try:
            return self._dispatch(ctx, oid, method, args)
        finally:
            self._local.ctx = previous

    def nested_send(self, oid: str, method: str, args: tuple) -> Any:
        """A message sent from inside a method (``DatabaseObject.call``)."""
        return self._dispatch(self._require_ctx(), oid, method, args)

    def send_atomic(
        self,
        ctx: TransactionContext,
        oid: str,
        method: str,
        *args: Any,
        default: Any = None,
    ) -> Any:
        """Send a message as an abortable subtransaction.

        If the method (or anything it calls) raises
        :class:`~repro.errors.SubtransactionAbort`, only this
        subtransaction's effects are rolled back — its undo entries and
        compensations run in reverse, its locks are released — and
        ``default`` is returned; the enclosing transaction stays active.
        Any other outcome behaves exactly like :meth:`send`.
        """
        from repro.errors import SubtransactionAbort

        previous = self._current_ctx()
        if previous is not None and previous is not ctx:
            raise DatabaseError(
                "another transaction context is already active on this thread"
            )
        self._local.ctx = ctx
        parent_frame = ctx.current_frame
        children_before = len(parent_frame.node.children)
        journal_before = len(parent_frame.log.entries)
        try:
            return self._dispatch(ctx, oid, method, args)
        except SubtransactionAbort:
            self._rollback_subtransaction(
                ctx, parent_frame, children_before, journal_before
            )
            return default
        finally:
            self._local.ctx = previous

    def _rollback_subtransaction(
        self,
        ctx: TransactionContext,
        parent_frame: Frame,
        children_before: int,
        journal_before: int,
    ) -> None:
        """Undo one aborted subtransaction and erase it from the trace."""
        # 1. Reverse the journal entries the subtransaction contributed
        #    (its frames merged them into the parent while unwinding).
        entries = parent_frame.log.entries[journal_before:]
        del parent_frame.log.entries[journal_before:]
        ctx.runtime_data["compensating"] = True
        try:
            for entry in reversed(entries):
                if isinstance(entry, CompensationRecord):
                    self._dispatch(ctx, entry.oid, entry.method, entry.args)
                else:
                    entry.apply(self.store)
        finally:
            ctx.runtime_data.pop("compensating", None)
        # The rollback's own bookkeeping is not undoable either.
        del parent_frame.log.entries[journal_before:]
        # 2. Release the subtree's locks and erase it from the call tree —
        #    an aborted subtransaction never happened.
        removed = parent_frame.node.children[children_before:]
        del parent_frame.node.children[children_before:]
        removed_aids = {node.aid for node in removed}
        parent_frame.node.precedence = {
            (before, after)
            for before, after in parent_frame.node.precedence
            if before not in removed_aids and after not in removed_aids
        }
        parent_frame.node._closure_cache = None
        for node in removed:
            for action in node.iter_subtree():
                self.scheduler.release_all_for(ctx, action)

    def _dispatch(
        self, ctx: TransactionContext, oid: str, method: str, args: tuple
    ) -> Any:
        if not ctx.is_active:
            raise TransactionAborted(ctx.txn_id, "context is not active")
        obj = self.get_object(oid)
        spec = type(obj).method_spec(method)
        parent_frame = ctx.current_frame
        node = parent_frame.node.call(oid, method, args)
        invocation = Invocation(oid, method, args, state=obj.state_snapshot())
        # The node keeps the snapshot so that the oo-serializability analysis
        # evaluates state-dependent commutativity on the same state the
        # scheduler saw (node.invocation() carries it).
        node.state = invocation.state
        self._checkpoint()
        self.scheduler.request(ctx, node, invocation)
        # Stamp the execution order only after the lock is granted: the
        # Axiom 1 order must reflect when the action actually ran, not when
        # it was first attempted (the request above may have blocked).
        node.seq = self.system._next_seq()
        frame = Frame(node=node, receiver=obj, spec=spec)
        ctx.push(frame)
        ctx.stats.actions += 1
        try:
            result = spec.func(obj, *args)
        except BaseException:
            # Unwind: hand the child's journal to the parent so that a
            # top-level abort can still undo/compensate everything.
            ctx.pop()
            parent_frame.log.merge_child(frame.log)
            raise
        ctx.pop()
        self._complete_frame(ctx, parent_frame, frame, args, result)
        return result

    def _complete_frame(
        self,
        ctx: TransactionContext,
        parent_frame: Frame,
        frame: Frame,
        args: tuple,
        result: Any,
    ) -> None:
        """Apply the open-nesting commit rule to a finished action frame."""
        spec = frame.spec
        if ctx.runtime_data.get("compensating"):
            # Actions of a rollback are never themselves undone or
            # compensated; release their locks as soon as they complete so
            # concurrent rollbacks do not pile up page locks.
            parent_frame.log.merge_child(frame.log)
            self.scheduler.end_action(ctx, frame.node, release=True)
            return
        compensation = spec.compensation_call(args, result) if spec else None
        has_undo = any(
            not isinstance(entry, CompensationRecord) for entry in frame.log.entries
        )
        if self.scheduler.open_nested and compensation is not None:
            # The subtransaction commits at this level: its low-level
            # effects become permanent (undo discarded) and the caller
            # records the semantic compensation instead.
            method_name, comp_args = compensation
            parent_frame.log.record(
                CompensationRecord(frame.node.obj, method_name, comp_args)
            )
            # The child journal (undo records and child compensations) is
            # superseded by this single semantic compensation and dropped.
            self.scheduler.end_action(ctx, frame.node, release=True)
        elif self.scheduler.open_nested and not has_undo:
            # Read-only subtree (possibly carrying child compensations):
            # locks can go, compensations move up.
            parent_frame.log.merge_child(frame.log)
            self.scheduler.end_action(ctx, frame.node, release=True)
        else:
            parent_frame.log.merge_child(frame.log)
            self.scheduler.end_action(ctx, frame.node, release=False)

    def commit(self, ctx: TransactionContext) -> None:
        if not ctx.is_active:
            raise DatabaseError(f"{ctx.txn_id} is not active")
        if ctx.depth != 0:
            raise DatabaseError("commit inside a method execution")
        self.scheduler.commit(ctx)
        ctx.status = TxnStatus.COMMITTED
        if self.env is not None:
            ctx.stats.commit_tick = self.env.now

    def abort(self, ctx: TransactionContext, reason: str = "user abort") -> None:
        """Roll the transaction back: undo and compensate in reverse order."""
        if ctx.status is not TxnStatus.ACTIVE:
            return
        # Collapse any frames left open by an exception into the root log.
        while ctx.depth > 0:
            frame = ctx.pop()
            ctx.root_frame.log.merge_child(frame.log)
        ctx.runtime_data["compensating"] = True
        previous = self._current_ctx()
        self._local.ctx = ctx
        # Snapshot the journal: compensating sends append fresh entries to
        # the live list (their own page writes), which must not be undone
        # and must not disturb the reverse iteration.
        entries = list(ctx.root_frame.log.entries)
        ctx.root_frame.log.entries.clear()
        try:
            for entry in reversed(entries):
                if isinstance(entry, CompensationRecord):
                    self._dispatch(ctx, entry.oid, entry.method, entry.args)
                else:
                    entry.apply(self.store)
            ctx.root_frame.log.entries.clear()
        finally:
            self._local.ctx = previous
            ctx.runtime_data.pop("compensating", None)
        self.scheduler.abort(ctx)
        ctx.status = TxnStatus.ABORTED

    # ------------------------------------------------------------------
    # page access (called by SlotProxy)
    # ------------------------------------------------------------------

    def page_read(self, obj: DatabaseObject, slot: Any, default: Any = None) -> Any:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).read(slot, default)

    def page_has(self, obj: DatabaseObject, slot: Any) -> bool:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).has(slot)

    def page_keys(self, obj: DatabaseObject) -> list[Any]:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).keys()

    def page_write(self, obj: DatabaseObject, slot: Any, value: Any) -> None:
        ctx = self._trace_page_action(obj, "write")
        page = self.store.get(obj.page_id)
        if ctx is not None:
            ctx.stats.page_writes += 1
            ctx.current_frame.log.record(
                UndoRecord(
                    page_id=page.page_id,
                    slot=slot,
                    had_slot=page.has(slot),
                    before=page.read(slot),
                )
            )
        page.write(slot, value)

    def page_delete(self, obj: DatabaseObject, slot: Any) -> None:
        ctx = self._trace_page_action(obj, "write")
        page = self.store.get(obj.page_id)
        if ctx is not None:
            ctx.stats.page_writes += 1
            ctx.current_frame.log.record(
                UndoRecord(
                    page_id=page.page_id,
                    slot=slot,
                    had_slot=page.has(slot),
                    before=page.read(slot),
                )
            )
        page.delete(slot)

    def _trace_page_action(
        self, obj: DatabaseObject, method: str
    ) -> TransactionContext | None:
        """Record (and schedule) the primitive page action; returns the
        active context, or None at bootstrap.

        The trace records the semantic truth (``read``/``write``), but the
        *lock* for a read inside an update method is requested in write
        mode — write-intent locking, the standard cure for read-to-write
        upgrade deadlocks (an update method typically reads its slots
        before overwriting them).
        """
        ctx = self._current_ctx()
        if ctx is None:
            return None
        frame = ctx.current_frame
        node = frame.node.call(obj.page_id, method)
        self._checkpoint()
        if frame.spec is None:
            exclusive = True
        elif self.scheduler.conservative_page_intent:
            exclusive = frame.spec.update
        else:
            exclusive = frame.spec.page_lock_exclusive
        lock_mode = "write" if exclusive else method
        self.scheduler.request(ctx, node, Invocation(obj.page_id, lock_mode))
        node.seq = self.system._next_seq()  # granted: stamp execution order
        return ctx

    # ------------------------------------------------------------------
    # encapsulation & context plumbing
    # ------------------------------------------------------------------

    def check_encapsulation(self, obj: DatabaseObject) -> None:
        ctx = self._current_ctx()
        if ctx is not None and ctx.current_frame.receiver is obj:
            return
        stack = self._creation_stack()
        if stack and stack[-1] is obj:
            return
        raise EncapsulationError(
            f"state of {obj.oid} touched outside its own methods — objects "
            f"are only accessible by methods (send a message instead)"
        )

    def _creation_stack(self) -> list[DatabaseObject]:
        stack = getattr(self._local, "creation", None)
        if stack is None:
            stack = []
            self._local.creation = stack
        return stack

    def _current_ctx(self) -> TransactionContext | None:
        return getattr(self._local, "ctx", None)

    def _require_ctx(self) -> TransactionContext:
        ctx = self._current_ctx()
        if ctx is None:
            raise DatabaseError("no transaction context is active on this thread")
        return ctx

    def _checkpoint(self) -> None:
        """Interleaving hook: let the executor switch transactions here."""
        if self.env is not None:
            self.env.checkpoint()

    # ------------------------------------------------------------------
    # analysis bridge
    # ------------------------------------------------------------------

    def commutativity_registry(self) -> CommutativityRegistry:
        """The Definition 9 registry for everything this database executed:
        each object's type-level specification plus read/write pages."""
        registry = CommutativityRegistry()
        registry.register_prefix("Page", ReadWriteCommutativity())
        for oid, obj in self._objects.items():
            registry.register(oid, type(obj).commutativity)
        return registry

    def analyze(self, **kwargs):
        """Run the oo-serializability analysis on everything executed so far.

        Returns ``(SystemVerdict, {oid: ObjectSchedule})`` — see
        :func:`repro.core.serializability.analyze_system`.  Note that the
        analysis extends the system in place (Definition 5).
        """
        from repro.core.serializability import analyze_system

        return analyze_system(self.system, self.commutativity_registry(), **kwargs)
