"""The object database: OIDs, message dispatch, tracing, recovery.

:class:`ObjectDatabase` ties the substrate together.  Every message send

1. appends an action node to the sending transaction's call tree (so a
   finished run *is* a :class:`~repro.core.transactions.TransactionSystem`
   ready for the Definition 10/11 analysis),
2. asks the concurrency-control scheduler for permission (which may block
   the transaction or abort it),
3. executes the method inside a fresh frame with its own undo journal, and
4. on completion applies the open-nesting commit rule: a subtransaction
   with a registered compensation releases its low-level locks and leaves
   only the compensation behind; otherwise its journal is retained by the
   caller.

Primitive page accesses follow the same path with implicit ``read`` /
``write`` actions, giving the Axiom 1 bootstrap level for free.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, TYPE_CHECKING

from repro.core.actions import ActionNode, Invocation
from repro.core.commutativity import CommutativityRegistry, ReadWriteCommutativity
from repro.core.transactions import TransactionSystem
from repro.errors import (
    DatabaseError,
    EncapsulationError,
    SimulatedCrash,
    TransactionAborted,
    UnknownObjectError,
)
from repro.oodb.context import Frame, TransactionContext, TxnStatus
from repro.obs.events import (
    AnalysisVerdict,
    CompensationRegistered,
    CompensationReplayed,
    EventBus,
    MethodDispatch,
    MethodReturn,
    PageAccess,
    TxnAbort,
    TxnBegin,
    TxnCommit,
)
from repro.oodb.log import (
    DELETED,
    CompensationRecord,
    FrameLog,
    PageAllocationRecord,
    UndoRecord,
)
from repro.oodb.object_model import DatabaseObject, ensure_database_object_type
from repro.oodb.pages import DEFAULT_PAGE_CAPACITY, Page, PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.locking.interfaces import Scheduler


class ObjectDatabase:
    """An object-oriented database instance.

    Parameters
    ----------
    scheduler:
        The concurrency-control protocol; defaults to
        :class:`~repro.locking.interfaces.NoConcurrencyControl` (tracing
        only).
    page_capacity:
        Default slots per page — the "keys per page" experiment knob.
    wal:
        Optional :class:`~repro.oodb.wal.WriteAheadLog`; when attached,
        every physical page effect and journal transition is logged so the
        database survives (simulated) crashes via
        :func:`repro.oodb.wal.recover`.
    faults:
        Optional :class:`~repro.faults.FaultPlan` consulted at named crash
        sites and dispatch points.
    bus:
        Optional :class:`~repro.obs.events.EventBus`; one is created when
        omitted.  The scheduler and the WAL adopt it, so subscribing a
        tracer to ``db.bus`` observes every layer of this database.
    store:
        Optional storage backend implementing the
        :class:`~repro.oodb.pages.PageStore` interface (e.g.
        :class:`~repro.oodb.store.FileBackedPageStore`); the in-memory
        store is built when omitted.
    checkpoint_every:
        Take a fuzzy checkpoint whenever this many WAL records accumulated
        since the last one (checked at commit).  Only meaningful with a
        durable store and a WAL.
    """

    def __init__(
        self,
        scheduler: "Scheduler | None" = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        wal=None,
        faults=None,
        bus: EventBus | None = None,
        store=None,
        checkpoint_every: int | None = None,
    ):
        from repro.locking.interfaces import NoConcurrencyControl

        self.store = store if store is not None else PageStore(page_capacity)
        self.system = TransactionSystem()
        self.bus = bus if bus is not None else EventBus()
        self.scheduler: "Scheduler" = scheduler or NoConcurrencyControl()
        self.scheduler.attach(self)
        #: the run's metrics registry — owned by the scheduler so its
        #: uniform stats counters and the substrate's instruments coexist
        self.metrics = self.scheduler.metrics
        #: optional simulation environment; when set, every action request
        #: is an interleaving checkpoint
        self.env = None
        self.wal = wal
        if wal is not None:
            wal.bind(self.bus, self.metrics)
        self.faults = faults
        self.checkpoint_every = checkpoint_every
        self._last_ckpt_lsn = -1
        if self.store.durable:
            self.store.connect(
                force_log=wal.force_up_to if wal is not None else None,
                fault_hit=self._fault_hit,
                metrics=self.metrics,
            )
            if wal is not None:
                wal.enable_analysis()
        self._objects: dict[str, DatabaseObject] = {}
        self._oid_counters: dict[str, int] = {}
        self._registry_cache: CommutativityRegistry | None = None
        self._local = threading.local()

    def _fault_hit(self, site: str) -> None:
        """Consult the fault plane at a named crash site.

        When the plan fires, the WAL's volatile tail is dropped *before*
        the exception starts to propagate — a real crash gives nothing
        downstream the chance to sync it on the way out.  The store's
        volatile frames go with it.
        """
        if self.faults is None:
            return
        try:
            self.faults.hit(site)
        except SimulatedCrash:
            if self.wal is not None:
                self.wal.crash()
            self.store.crash()
            raise

    # ------------------------------------------------------------------
    # object management
    # ------------------------------------------------------------------

    def create(
        self,
        cls: type[DatabaseObject],
        *args: Any,
        oid: str | None = None,
        page_capacity: int | None = None,
    ) -> str:
        """Create an object at bootstrap time (outside any transaction)."""
        if self._current_ctx() is not None:
            raise DatabaseError(
                "create() is for bootstrap; use DatabaseObject.db_create "
                "inside transactions"
            )
        obj = self._instantiate(cls, oid, page_capacity)
        self._run_setup(obj, args)
        return obj.oid

    def create_nested(
        self,
        cls: type[DatabaseObject],
        args: tuple,
        *,
        oid: str | None = None,
        page_capacity: int | None = None,
    ) -> str:
        """Create an object from inside a running method (traced, undoable)."""
        ctx = self._require_ctx()
        obj = self._instantiate(cls, oid, page_capacity)
        ctx.current_frame.log.record(
            PageAllocationRecord(obj.page_id, lsn=self._last_alloc_lsn)
        )
        self._dispatch_create(ctx, obj, args)
        return obj.oid

    def _instantiate(
        self,
        cls: type[DatabaseObject],
        oid: str | None,
        page_capacity: int | None,
    ) -> DatabaseObject:
        ensure_database_object_type(cls)
        if oid is None:
            count = self._oid_counters.get(cls.__name__, 0) + 1
            self._oid_counters[cls.__name__] = count
            oid = f"{cls.__name__}{count}"
        if oid in self._objects:
            raise DatabaseError(f"object id {oid!r} already exists")
        capacity = page_capacity or cls.page_capacity
        page = self.store.allocate(capacity=capacity)
        self._last_alloc_lsn = None
        if self.wal is not None:
            ctx = self._current_ctx()
            # j: inside a transaction the caller journals the matching
            # PageAllocationRecord (create_nested); bootstrap never undoes.
            lsn = self.wal.append(
                {
                    "t": "alloc",
                    "txn": ctx.txn_id if ctx is not None else None,
                    "page": page.page_id,
                    "capacity": page.capacity,
                    "j": ctx is not None
                    and not ctx.runtime_data.get("compensating"),
                }
            )
            self._last_alloc_lsn = lsn if lsn >= 0 else None
        self.store.note_write(page.page_id, self._last_alloc_lsn)
        obj = cls(self, oid, page.page_id)
        self._objects[oid] = obj
        self._registry_cache = None  # a new object invalidates the registry
        return obj

    def _run_setup(self, obj: DatabaseObject, args: tuple) -> None:
        """Run ``setup`` at bootstrap, inside a creation scope."""
        stack = self._creation_stack()
        stack.append(obj)
        try:
            obj.setup(*args)
        finally:
            stack.pop()

    def _dispatch_create(
        self, ctx: TransactionContext, obj: DatabaseObject, args: tuple
    ) -> None:
        """Run ``setup`` inside a transaction, as a traced ``create`` action."""
        parent_frame = ctx.current_frame
        node = parent_frame.node.call(obj.oid, "create", args)
        self._checkpoint()
        self.scheduler.request(ctx, node, Invocation(obj.oid, "create", args))
        node.seq = self.system._next_seq()
        bus = self.bus
        if bus.active:
            bus.emit(
                MethodDispatch(
                    txn=ctx.txn_id,
                    aid=node.aid,
                    obj=obj.oid,
                    method="create",
                    args=args,
                    seq=node.seq,
                    depth=ctx.depth,
                    tick=bus.now(),
                )
            )
        frame = Frame(node=node, receiver=obj, spec=None)
        ctx.push(frame)
        ctx.stats.actions += 1
        try:
            obj.setup(*args)
        except BaseException:
            ctx.pop()
            parent_frame.log.merge_child(frame.log)
            raise
        ctx.pop()
        # creation is never released early: undo must deallocate the page
        parent_frame.log.merge_child(frame.log)
        if bus.active:
            bus.emit(
                MethodReturn(
                    txn=ctx.txn_id,
                    aid=node.aid,
                    obj=obj.oid,
                    method="create",
                    tick=bus.now(),
                )
            )
        self.scheduler.end_action(ctx, node, release=False)

    def get_object(self, oid: str) -> DatabaseObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(f"no object {oid!r}") from None

    def has_object(self, oid: str) -> bool:
        return oid in self._objects

    @property
    def object_ids(self) -> list[str]:
        return list(self._objects)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(
        self, label: str | None = None, *, log: bool = True
    ) -> TransactionContext:
        txn = self.system.transaction(label)
        ctx = TransactionContext(txn)
        self.scheduler.begin(ctx)
        bus = self.bus
        if bus.active:
            bus.emit(TxnBegin(txn=ctx.txn_id, tick=bus.now()))
        if log and self.wal is not None:
            # Sync: cheap (begins are rare) and it anchors durability of
            # everything before the transaction — bootstrap included.
            self.wal.append({"t": "begin", "txn": ctx.txn_id})
            self.wal.sync()
        return ctx

    def send(self, ctx: TransactionContext, oid: str, method: str, *args: Any) -> Any:
        """Send a top-level message on behalf of ``ctx``.

        Binds the context to the calling thread for the duration, so nested
        ``self.call`` sends find it.
        """
        previous = self._current_ctx()
        if previous is not None and previous is not ctx:
            raise DatabaseError(
                "another transaction context is already active on this thread"
            )
        self._local.ctx = ctx
        try:
            return self._dispatch(ctx, oid, method, args)
        finally:
            self._local.ctx = previous

    def nested_send(self, oid: str, method: str, args: tuple) -> Any:
        """A message sent from inside a method (``DatabaseObject.call``)."""
        return self._dispatch(self._require_ctx(), oid, method, args)

    def send_atomic(
        self,
        ctx: TransactionContext,
        oid: str,
        method: str,
        *args: Any,
        default: Any = None,
    ) -> Any:
        """Send a message as an abortable subtransaction.

        If the method (or anything it calls) raises
        :class:`~repro.errors.SubtransactionAbort`, only this
        subtransaction's effects are rolled back — its undo entries and
        compensations run in reverse, its locks are released — and
        ``default`` is returned; the enclosing transaction stays active.
        Any other outcome behaves exactly like :meth:`send`.
        """
        from repro.errors import SubtransactionAbort

        previous = self._current_ctx()
        if previous is not None and previous is not ctx:
            raise DatabaseError(
                "another transaction context is already active on this thread"
            )
        self._local.ctx = ctx
        parent_frame = ctx.current_frame
        children_before = len(parent_frame.node.children)
        journal_before = len(parent_frame.log.entries)
        wal_mark = self.wal.next_lsn if self.wal is not None else None
        try:
            return self._dispatch(ctx, oid, method, args)
        except SubtransactionAbort:
            self._rollback_subtransaction(
                ctx, parent_frame, children_before, journal_before, wal_mark
            )
            return default
        finally:
            self._local.ctx = previous

    def _rollback_subtransaction(
        self,
        ctx: TransactionContext,
        parent_frame: Frame,
        children_before: int,
        journal_before: int,
        wal_mark: int | None = None,
    ) -> None:
        """Undo one aborted subtransaction and erase it from the trace."""
        # 1. Reverse the journal entries the subtransaction contributed
        #    (its frames merged them into the parent while unwinding).
        entries = parent_frame.log.entries[journal_before:]
        del parent_frame.log.entries[journal_before:]
        ctx.runtime_data["compensating"] = True
        try:
            for entry in reversed(entries):
                self._fault_hit("rollback.step")
                self._consume_entry(ctx, entry)
        finally:
            ctx.runtime_data.pop("compensating", None)
        # The rollback's own bookkeeping is not undoable either.
        del parent_frame.log.entries[journal_before:]
        if self.wal is not None and wal_mark is not None:
            # The subtransaction's journal is history; durable before its
            # locks release, like a subcommit.
            self.wal.append(
                {"t": "jtrunc", "txn": ctx.txn_id, "from_lsn": wal_mark}
            )
            self.wal.sync()
        # 2. Release the subtree's locks and erase it from the call tree —
        #    an aborted subtransaction never happened.
        removed = parent_frame.node.children[children_before:]
        del parent_frame.node.children[children_before:]
        removed_aids = {node.aid for node in removed}
        parent_frame.node.precedence = {
            (before, after)
            for before, after in parent_frame.node.precedence
            if before not in removed_aids and after not in removed_aids
        }
        parent_frame.node._closure_cache = None
        for node in removed:
            for action in node.iter_subtree():
                self.scheduler.release_all_for(ctx, action)

    def _dispatch(
        self, ctx: TransactionContext, oid: str, method: str, args: tuple
    ) -> Any:
        if not ctx.is_active:
            raise TransactionAborted(ctx.txn_id, "context is not active")
        if (
            self.faults is not None
            and ctx.depth == 0
            and not ctx.runtime_data.get("compensating")
            and self.faults.transient("dispatch")
        ):
            # Transient method failure: the victim rolls back and may
            # restart, exactly like a deadlock victim.
            raise TransactionAborted(ctx.txn_id, "injected transient fault")
        obj = self.get_object(oid)
        spec = type(obj).method_spec(method)
        parent_frame = ctx.current_frame
        node = parent_frame.node.call(oid, method, args)
        invocation = Invocation(oid, method, args, state=obj.state_snapshot())
        # The node keeps the snapshot so that the oo-serializability analysis
        # evaluates state-dependent commutativity on the same state the
        # scheduler saw (node.invocation() carries it).
        node.state = invocation.state
        self._checkpoint()
        self.scheduler.request(ctx, node, invocation)
        # Stamp the execution order only after the lock is granted: the
        # Axiom 1 order must reflect when the action actually ran, not when
        # it was first attempted (the request above may have blocked).
        node.seq = self.system._next_seq()
        bus = self.bus
        if bus.active:
            bus.emit(
                MethodDispatch(
                    txn=ctx.txn_id,
                    aid=node.aid,
                    obj=oid,
                    method=method,
                    args=args,
                    seq=node.seq,
                    depth=ctx.depth,
                    tick=bus.now(),
                )
            )
        frame = Frame(
            node=node,
            receiver=obj,
            spec=spec,
            wal_mark=self.wal.next_lsn if self.wal is not None else 0,
        )
        ctx.push(frame)
        ctx.stats.actions += 1
        try:
            result = spec.func(obj, *args)
        except BaseException:
            # Unwind: hand the child's journal to the parent so that a
            # top-level abort can still undo/compensate everything.
            ctx.pop()
            parent_frame.log.merge_child(frame.log)
            raise
        ctx.pop()
        self._complete_frame(ctx, parent_frame, frame, args, result)
        return result

    def _complete_frame(
        self,
        ctx: TransactionContext,
        parent_frame: Frame,
        frame: Frame,
        args: tuple,
        result: Any,
    ) -> None:
        """Apply the open-nesting commit rule to a finished action frame."""
        spec = frame.spec
        bus = self.bus
        if ctx.runtime_data.get("compensating"):
            # Actions of a rollback are never themselves undone or
            # compensated; their locks release with the frame so that
            # concurrent rollbacks do not pile up page locks.  The writes
            # of a compensating send may therefore interleave with other
            # transactions' writes on the same slots — delta-aware undo
            # (``UndoRecord.resolve``) keeps both live rollback and crash
            # recovery correct under such interleavings.
            parent_frame.log.merge_child(frame.log)
            if bus.active:
                bus.emit(
                    MethodReturn(
                        txn=ctx.txn_id,
                        aid=frame.node.aid,
                        obj=frame.node.obj,
                        method=frame.node.method,
                        released=True,
                        tick=bus.now(),
                    )
                )
            self.scheduler.end_action(ctx, frame.node, release=True)
            return
        compensation = spec.compensation_call(args, result) if spec else None
        has_undo = any(
            not isinstance(entry, CompensationRecord) for entry in frame.log.entries
        )
        if self.scheduler.open_nested and compensation is not None:
            # The subtransaction commits at this level: its low-level
            # effects become permanent (undo discarded) and the caller
            # records the semantic compensation instead.
            method_name, comp_args = compensation
            record = CompensationRecord(frame.node.obj, method_name, comp_args)
            if self.wal is not None:
                # Open-nesting durability rule: the compensation must be
                # durable *before* the low-level locks release, or a crash
                # leaves permanent effects nothing knows how to remove.
                self._fault_hit("subcommit.before")
                lsn = self.wal.append(
                    {
                        "t": "subcommit",
                        "txn": ctx.txn_id,
                        "oid": record.oid,
                        "method": record.method,
                        "args": list(record.args),
                        "from_lsn": frame.wal_mark,
                    }
                )
                self.wal.sync()
                self._fault_hit("subcommit.after")
                record = CompensationRecord(
                    record.oid, record.method, record.args, lsn=lsn
                )
            parent_frame.log.record(record)
            if bus.active:
                bus.emit(
                    CompensationRegistered(
                        txn=ctx.txn_id,
                        obj=record.oid,
                        method=record.method,
                        tick=bus.now(),
                    )
                )
            # The child journal (undo records and child compensations) is
            # superseded by this single semantic compensation and dropped.
            release = True
        elif self.scheduler.open_nested and not has_undo:
            # Read-only subtree (possibly carrying child compensations):
            # locks can go, compensations move up.
            parent_frame.log.merge_child(frame.log)
            release = True
        else:
            parent_frame.log.merge_child(frame.log)
            release = False
        if bus.active:
            bus.emit(
                MethodReturn(
                    txn=ctx.txn_id,
                    aid=frame.node.aid,
                    obj=frame.node.obj,
                    method=frame.node.method,
                    released=release,
                    tick=bus.now(),
                )
            )
        self.scheduler.end_action(ctx, frame.node, release=release)

    def commit(self, ctx: TransactionContext, *, prepared: bool = False) -> None:
        if not ctx.is_active:
            raise DatabaseError(f"{ctx.txn_id} is not active")
        if ctx.depth != 0:
            raise DatabaseError("commit inside a method execution")
        # Certification (optimistic validation) runs in prepare, *before*
        # the commit record: a transaction is a winner exactly when its
        # commit record is durable, so nothing may fail after the append —
        # and the record must be durable before any lock releases.
        # ``prepared=True`` skips the prepare: the sharded runtime's
        # two-phase commit already ran it when the branch voted, and a
        # validation failure after the coordinator's decision would break
        # cross-shard atomicity.
        if not prepared:
            self.scheduler.prepare(ctx)
        self._fault_hit("commit.before")
        if self.wal is not None:
            self.wal.append({"t": "commit", "txn": ctx.txn_id})
            self.wal.sync()
        self._fault_hit("commit.after")
        self.scheduler.commit(ctx)
        ctx.status = TxnStatus.COMMITTED
        if self.env is not None:
            ctx.stats.commit_tick = self.env.now
        bus = self.bus
        if bus.active:
            bus.emit(TxnCommit(txn=ctx.txn_id, tick=bus.now()))
        if (
            self.checkpoint_every is not None
            and self.wal is not None
            and self.wal.next_lsn - self._last_ckpt_lsn >= self.checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self) -> int | None:
        """Take a fuzzy ARIES checkpoint; returns the ``ckpt-end`` LSN.

        Nothing stops: the checkpoint brackets whatever state is in flight.
        ``ckpt-end`` carries the serialized running analysis (the
        active-transaction table for the log prefix up to it) and the
        buffer pool's dirty-page table; recovery resumes analysis from the
        table and starts redo at the DPT's min(recLSN).  Dirty pages are
        flushed *after* the checkpoint completes — not required for
        correctness (the DPT is conservative), but it bounds the next
        crash's redo tail to roughly one checkpoint interval.
        """
        wal = self.wal
        if (
            wal is None
            or wal.crashed
            or not self.store.durable
            or wal.analysis is None
        ):
            return None
        t0 = time.perf_counter()
        begin = wal.append({"t": "ckpt-begin", "txn": None})
        self._fault_hit("checkpoint.mid")
        end = wal.append(
            {
                "t": "ckpt-end",
                "txn": None,
                "begin": begin,
                "att": wal.analysis.to_dict(),
                "dpt": self.store.dirty_table(),
            }
        )
        wal.sync()
        self._last_ckpt_lsn = end
        self.store.flush_dirty()
        self.metrics.counter(
            "checkpoints_total", "fuzzy checkpoints completed"
        ).value += 1
        self.metrics.histogram(
            "checkpoint_duration_ms",
            "wall-clock time of one fuzzy checkpoint",
            bounds=(1, 5, 20, 100, 500),
        ).observe((time.perf_counter() - t0) * 1000.0)
        return end

    def abort(self, ctx: TransactionContext, reason: str = "user abort") -> None:
        """Roll the transaction back: undo and compensate in reverse order."""
        if ctx.status is not TxnStatus.ACTIVE:
            return
        # Collapse any frames left open by an exception into the root log.
        while ctx.depth > 0:
            frame = ctx.pop()
            ctx.root_frame.log.merge_child(frame.log)
        if self.wal is not None:
            self.wal.append({"t": "abort", "txn": ctx.txn_id})
        ctx.runtime_data["compensating"] = True
        previous = self._current_ctx()
        self._local.ctx = ctx
        # Snapshot the journal: compensating sends append fresh entries to
        # the live list (their own page writes), which must not be undone
        # and must not disturb the reverse iteration.
        entries = list(ctx.root_frame.log.entries)
        ctx.root_frame.log.entries.clear()
        try:
            for entry in reversed(entries):
                self._fault_hit("rollback.step")
                self._consume_entry(ctx, entry)
            ctx.root_frame.log.entries.clear()
        finally:
            self._local.ctx = previous
            ctx.runtime_data.pop("compensating", None)
        self.scheduler.abort(ctx)
        ctx.status = TxnStatus.ABORTED
        if self.wal is not None:
            self.wal.append({"t": "abort-done", "txn": ctx.txn_id})
            self.wal.sync()
        bus = self.bus
        if bus.active:
            bus.emit(TxnAbort(txn=ctx.txn_id, reason=reason, tick=bus.now()))

    def _consume_entry(self, ctx: TransactionContext, entry) -> None:
        """Process one journal entry of a rollback, logging progress.

        A replayed compensation is marked consumed (``comp-done``) and
        synced before the next step: compensations are incremental, so a
        crash mid-rollback must never re-send one that already ran.
        """
        if isinstance(entry, CompensationRecord):
            bus = self.bus
            if bus.active:
                bus.emit(
                    CompensationReplayed(
                        txn=ctx.txn_id,
                        obj=entry.oid,
                        method=entry.method,
                        tick=bus.now(),
                    )
                )
            self._dispatch(ctx, entry.oid, entry.method, entry.args)
            if self.wal is not None and entry.lsn is not None:
                self.wal.append(
                    {"t": "comp-done", "txn": ctx.txn_id, "target": entry.lsn}
                )
                self.wal.sync()
        else:
            self.apply_physical(ctx.txn_id, entry)

    def apply_physical(self, txn: str, entry) -> None:
        """Apply an undo entry to the store, recording the physical effect.

        Rollback and recovery writes bypass the object layer (no tracing,
        no locks of their own), but the WAL must still witness them so that
        redo repeats history exactly.

        When the entry carries the LSN of its own durable journal record,
        the emitted record is a *compensation log record* in the ARIES
        sense: it is tagged ``consumes: lsn`` so crash analysis pops the
        journal entry (never replaying an already-applied undo step), and
        recovery's revert pass never reverts it (its before-image may be
        stale once later writers have touched the slot).
        """
        lsn = None
        if self.wal is not None:
            consumes = getattr(entry, "lsn", None)
            if isinstance(entry, PageAllocationRecord):
                if entry.page_id in self.store:
                    page = self.store.get(entry.page_id)
                    rec = {
                        "t": "dealloc",
                        "txn": txn,
                        "page": page.page_id,
                        "capacity": page.capacity,
                        # full snapshot, as [slot, value] pairs, so a
                        # partially-reverted rollback can resurrect it
                        "slots": [[k, v] for k, v in page.slots.items()],
                        "j": False,
                    }
                    if consumes is not None:
                        rec["consumes"] = consumes
                    lsn = self.wal.append(rec)
            elif entry.page_id in self.store:
                page = self.store.get(entry.page_id)
                # Log the *resolved* mutation: delta-undo may write a value
                # different from the journaled before-image (see
                # ``UndoRecord.resolve``), and redo must repeat exactly what
                # happened.
                action, value = entry.resolve(self.store)
                rec = {
                    "t": action,
                    "txn": txn,
                    "page": entry.page_id,
                    "slot": entry.slot,
                    "had": page.has(entry.slot),
                    "before": page.read(entry.slot),
                    "j": False,
                }
                if action == "set":
                    rec["value"] = value
                if consumes is not None:
                    rec["consumes"] = consumes
                lsn = self.wal.append(rec)
        entry.apply(self.store)
        if not isinstance(entry, PageAllocationRecord):
            self.store.note_write(
                entry.page_id, lsn if lsn is not None and lsn >= 0 else None
            )

    def restore_page(
        self, txn: str, page_id: str, capacity: int, slots: dict
    ) -> None:
        """Reinstall a deallocated page exactly as a logged snapshot saw it
        (recovery reverting a half-finished rollback's deallocation)."""
        lsn = None
        if self.wal is not None:
            lsn = self.wal.append(
                {
                    "t": "alloc",
                    "txn": txn,
                    "page": page_id,
                    "capacity": capacity,
                    "j": False,
                }
            )
            for slot, value in slots.items():
                lsn = self.wal.append(
                    {
                        "t": "set",
                        "txn": txn,
                        "page": page_id,
                        "slot": slot,
                        "value": value,
                        "had": False,
                        "before": None,
                        "j": False,
                    }
                )
        self.store.install(Page(page_id, capacity, dict(slots)))
        self.store.note_write(
            page_id, lsn if lsn is not None and lsn >= 0 else None
        )

    # ------------------------------------------------------------------
    # page access (called by SlotProxy)
    # ------------------------------------------------------------------

    def page_read(self, obj: DatabaseObject, slot: Any, default: Any = None) -> Any:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).read(slot, default)

    def page_has(self, obj: DatabaseObject, slot: Any) -> bool:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).has(slot)

    def page_keys(self, obj: DatabaseObject) -> list[Any]:
        ctx = self._trace_page_action(obj, "read")
        if ctx is not None:
            ctx.stats.page_reads += 1
        return self.store.get(obj.page_id).keys()

    def page_write(self, obj: DatabaseObject, slot: Any, value: Any) -> None:
        ctx = self._trace_page_action(obj, "write")
        page = self.store.get(obj.page_id)
        had = page.has(slot)
        before = page.read(slot)
        undo = None
        if ctx is not None:
            self._fault_hit("page-write.before")
            ctx.stats.page_writes += 1
        page.write(slot, value)
        # Journal and WAL records land only after the write succeeded (the
        # page may reject a new slot): neither undo nor redo may replay a
        # refused write.
        if ctx is not None:
            undo = UndoRecord(
                page_id=page.page_id,
                slot=slot,
                had_slot=had,
                before=before,
                after=value,
            )
            ctx.current_frame.log.record(undo)
        if self.wal is not None:
            lsn = self.wal.append(
                {
                    "t": "set",
                    "txn": ctx.txn_id if ctx is not None else None,
                    "page": page.page_id,
                    "slot": slot,
                    "value": value,
                    "had": had,
                    "before": before,
                    "j": ctx is not None
                    and not ctx.runtime_data.get("compensating"),
                }
            )
            if undo is not None and lsn >= 0:
                object.__setattr__(undo, "lsn", lsn)
            self.store.note_write(page.page_id, lsn if lsn >= 0 else None)
        else:
            self.store.note_write(page.page_id, None)
        if ctx is not None:
            self._fault_hit("page-write.after")

    def page_delete(self, obj: DatabaseObject, slot: Any) -> None:
        ctx = self._trace_page_action(obj, "write")
        page = self.store.get(obj.page_id)
        had = page.has(slot)
        before = page.read(slot)
        undo = None
        if ctx is not None:
            self._fault_hit("page-write.before")
            ctx.stats.page_writes += 1
        page.delete(slot)
        if ctx is not None:
            undo = UndoRecord(
                page_id=page.page_id,
                slot=slot,
                had_slot=had,
                before=before,
                after=DELETED,
            )
            ctx.current_frame.log.record(undo)
        if self.wal is not None:
            lsn = self.wal.append(
                {
                    "t": "del",
                    "txn": ctx.txn_id if ctx is not None else None,
                    "page": page.page_id,
                    "slot": slot,
                    "had": had,
                    "before": before,
                    "j": ctx is not None
                    and not ctx.runtime_data.get("compensating"),
                }
            )
            if undo is not None and lsn >= 0:
                object.__setattr__(undo, "lsn", lsn)
            self.store.note_write(page.page_id, lsn if lsn >= 0 else None)
        else:
            self.store.note_write(page.page_id, None)
        if ctx is not None:
            self._fault_hit("page-write.after")

    def _trace_page_action(
        self, obj: DatabaseObject, method: str
    ) -> TransactionContext | None:
        """Record (and schedule) the primitive page action; returns the
        active context, or None at bootstrap.

        The trace records the semantic truth (``read``/``write``), but the
        *lock* for a read inside an update method is requested in write
        mode — write-intent locking, the standard cure for read-to-write
        upgrade deadlocks (an update method typically reads its slots
        before overwriting them).
        """
        ctx = self._current_ctx()
        if ctx is None:
            return None
        frame = ctx.current_frame
        node = frame.node.call(obj.page_id, method)
        self._checkpoint()
        if frame.spec is None:
            exclusive = True
        elif self.scheduler.conservative_page_intent:
            exclusive = frame.spec.update
        else:
            exclusive = frame.spec.page_lock_exclusive
        lock_mode = "write" if exclusive else method
        self.scheduler.request(ctx, node, Invocation(obj.page_id, lock_mode))
        node.seq = self.system._next_seq()  # granted: stamp execution order
        bus = self.bus
        if bus.active:
            # the trace records the semantic action (read/write), like the
            # call tree itself — the lock mode is the scheduler's business
            bus.emit(
                PageAccess(
                    txn=ctx.txn_id,
                    aid=node.aid,
                    obj=obj.page_id,
                    method=method,
                    seq=node.seq,
                    tick=bus.now(),
                )
            )
        return ctx

    # ------------------------------------------------------------------
    # encapsulation & context plumbing
    # ------------------------------------------------------------------

    def check_encapsulation(self, obj: DatabaseObject) -> None:
        ctx = self._current_ctx()
        if ctx is not None and ctx.current_frame.receiver is obj:
            return
        stack = self._creation_stack()
        if stack and stack[-1] is obj:
            return
        raise EncapsulationError(
            f"state of {obj.oid} touched outside its own methods — objects "
            f"are only accessible by methods (send a message instead)"
        )

    def _creation_stack(self) -> list[DatabaseObject]:
        stack = getattr(self._local, "creation", None)
        if stack is None:
            stack = []
            self._local.creation = stack
        return stack

    def _current_ctx(self) -> TransactionContext | None:
        return getattr(self._local, "ctx", None)

    def _require_ctx(self) -> TransactionContext:
        ctx = self._current_ctx()
        if ctx is None:
            raise DatabaseError("no transaction context is active on this thread")
        return ctx

    def _checkpoint(self) -> None:
        """Interleaving hook: let the executor switch transactions here."""
        if self.env is not None:
            self.env.checkpoint()

    # ------------------------------------------------------------------
    # analysis bridge
    # ------------------------------------------------------------------

    def commutativity_registry(self) -> CommutativityRegistry:
        """The Definition 9 registry for everything this database executed:
        each object's type-level specification plus read/write pages.

        The registry is cached (invalidated when an object is created) —
        the optimistic certifier asks for it on every validation.  Callers
        must treat the returned registry as read-only; anyone who needs to
        mutate it (the oracle's ablation hook) works on ``.copy()``.
        """
        if self._registry_cache is None:
            registry = CommutativityRegistry()
            registry.register_prefix("Page", ReadWriteCommutativity())
            for oid, obj in self._objects.items():
                registry.register(oid, type(obj).commutativity)
            self._registry_cache = registry
        return self._registry_cache

    def analyze(self, **kwargs):
        """Run the oo-serializability analysis on everything executed so far.

        Returns ``(SystemVerdict, {oid: ObjectSchedule})`` — see
        :func:`repro.core.serializability.analyze_system`.  Note that the
        analysis extends the system in place (Definition 5).
        """
        from repro.core.serializability import analyze_system

        verdict, schedules = analyze_system(
            self.system, self.commutativity_registry(), **kwargs
        )
        bus = self.bus
        if bus.active:
            bus.emit(
                AnalysisVerdict(
                    source="analyze",
                    ok=bool(verdict.oo_serializable),
                    tick=bus.now(),
                )
            )
        return verdict, schedules
