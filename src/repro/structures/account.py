"""Escrow accounts — the financial-market example of Figure 1.

``deposit`` and ``withdraw`` commute under the escrow method (the paper's
refs [9, 14, 17]): the commutativity definition includes parameter values
and the object's state snapshot, so two withdrawals commute exactly when
both orders stay within the balance bounds.  ``balance`` observes the value
and conflicts with updates.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.commutativity import CommutativitySpec, EscrowCommutativity
from repro.errors import DatabaseError
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject


class Account(DatabaseObject):
    """A bank account with escrow commutativity.

    ``low=0`` forbids overdrafts at the *commutativity* level; the methods
    themselves also enforce it so that serial semantics match.
    """

    commutativity: ClassVar[CommutativitySpec] = EscrowCommutativity(
        increment="deposit", decrement="withdraw", read="balance", low=0.0
    )

    def setup(self, initial: float = 0.0, owner: str = "") -> None:
        if initial < 0:
            raise DatabaseError("initial balance must be non-negative")
        self.data["balance"] = float(initial)
        self.data["owner"] = owner

    def state_snapshot(self) -> Any:
        """The current balance, fed into the escrow commutativity test.

        Read directly from the page (no trace/lock): this is scheduler
        metadata, not an application access.
        """
        return self._db.store.get(self.page_id).read("balance")

    @dbmethod(update=True, compensation="withdraw")
    def deposit(self, amount: float) -> float:
        if amount < 0:
            raise DatabaseError("deposit amount must be non-negative")
        balance = self.data["balance"] + amount
        self.data["balance"] = balance
        return balance

    @dbmethod(update=True, compensation="deposit")
    def withdraw(self, amount: float) -> float:
        if amount < 0:
            raise DatabaseError("withdrawal amount must be non-negative")
        balance = self.data["balance"]
        if balance < amount:
            raise DatabaseError(
                f"insufficient funds on {self.oid}: {balance} < {amount}"
            )
        balance -= amount
        self.data["balance"] = balance
        return balance

    @dbmethod
    def balance(self) -> float:
        return self.data["balance"]
