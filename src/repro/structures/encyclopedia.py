"""The encyclopedia ``Enc`` (Figure 2): a linked list of items indexed by a
B+ tree.

``insertItem`` performs the three sub-operations of the paper's T1: create
the item (its initial ``write``), insert the key into the index, and append
the item to the list.  ``changeItem`` reaches the item *via the index*
(T2's path in Example 4), ``readSeq`` via the list (T4's path) — the two
different access paths of unequal length that Section 2 points out.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.actions import Invocation
from repro.core.commutativity import CommutativitySpec, MatrixCommutativity
from repro.errors import DatabaseError
from repro.oodb.database import ObjectDatabase
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject
from repro.structures.bptree import build_bptree
from repro.structures.item import Item
from repro.structures.linked_list import LinkedList


def _different_key(a: Invocation, b: Invocation) -> bool:
    return bool(a.args) and bool(b.args) and a.args[0] != b.args[0]


def encyclopedia_commutativity() -> MatrixCommutativity:
    matrix: dict[tuple[str, str], Any] = {
        ("search", "search"): True,
        ("readSeq", "readSeq"): True,
        ("readSeq", "search"): True,
    }
    for update in ("insertItem", "deleteItem", "changeItem"):
        matrix[(update, "search")] = _different_key
        matrix[(update, "readSeq")] = False  # the phantom
        for other in ("insertItem", "deleteItem", "changeItem"):
            matrix[self_pair(update, other)] = _different_key
    return MatrixCommutativity(matrix)


def self_pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class Encyclopedia(DatabaseObject):
    """``Enc``: the application object of Figures 2, 7 and 8."""

    commutativity: ClassVar[CommutativitySpec] = encyclopedia_commutativity()

    def setup(self, index_oid: str, list_oid: str) -> None:
        self.data["__index"] = index_oid
        self.data["__list"] = list_oid

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("deleteItem", (args[0],)),
        write_intent=False,  # reads only the __index/__list slots
    )
    def insertItem(self, key: str, content: Any) -> str:
        """Insert a new item; returns its oid.  Duplicate keys are an error
        (the index is unique on keys)."""
        index = self.data["__index"]
        if self.call(index, "search", key) is not None:
            raise DatabaseError(f"item {key!r} already exists")
        item = self.db_create(Item, key)
        self.call(index, "insert", key, item)
        self.call(self.data["__list"], "insert", item)
        self.call(item, "write", content)
        return item

    @dbmethod(update=True, write_intent=False)
    def deleteItem(self, key: str) -> bool:
        """Remove an item by key; returns whether it existed.

        Used both programmatically and as the compensation of
        ``insertItem`` (no own compensation: a delete's undo stays
        page-level when not itself compensating)."""
        index = self.data["__index"]
        item = self.call(index, "search", key)
        if item is None:
            return False
        self.call(index, "delete", key)
        self.call(self.data["__list"], "remove", item)
        return True

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("changeItem", (args[0], result)),
        write_intent=False,
    )
    def changeItem(self, key: str, content: Any) -> Any:
        """Change an item's content via the index; returns the old content."""
        item = self.call(self.data["__index"], "search", key)
        if item is None:
            raise DatabaseError(f"no item {key!r}")
        return self.call(item, "change", content)

    @dbmethod
    def search(self, key: str) -> Any:
        """The content of the item with this key, or None."""
        item = self.call(self.data["__index"], "search", key)
        if item is None:
            return None
        return self.call(item, "read")

    @dbmethod
    def readSeq(self) -> list[tuple[str, Any]]:
        """All items in list order (T4 of Example 4)."""
        return self.call(self.data["__list"], "readSeq")

    @dbmethod
    def length(self) -> int:
        return self.call(self.data["__list"], "length")


def build_encyclopedia(
    db: ObjectDatabase,
    *,
    order: int = 4,
    blink: bool = False,
    oid: str = "Enc",
) -> str:
    """Bootstrap an empty encyclopedia (Figure 2's object graph)."""
    index = build_bptree(db, order, blink=blink, oid=f"{oid}BpTree")
    items = db.create(LinkedList, oid=f"{oid}LinkedList")
    return db.create(Encyclopedia, index, items, oid=oid)
