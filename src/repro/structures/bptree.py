"""A B+ tree over pages with key-based commutativity (Examples 1 and 3).

Structure (Figure 2): a ``BPlusTree`` object delegates to a tree of
``TreeNode`` objects over ``TreeLeaf`` objects; every node/leaf owns one
page, whose slot capacity (the *order*) is the "keys per page" knob behind
the paper's observation that operations "often conflict at the page level
but commute at the node level".

Two split-propagation modes:

- **recursive** (default): a child's ``insert`` returns split information
  and the calling node applies it — a strictly layered call structure;
- **B-link** (``blink=True``): after splitting, the child itself sends
  ``rearrange`` to its *father* (Section 2: "the rearrangement of the
  father(s) may be implemented as a single subtransaction, called from the
  insert subtransaction").  Since the father also lies on the insert's call
  path, this produces the call cycle of Example 3 that the Definition 5
  extension must break.

Deletion removes keys without rebalancing (underflown pages persist) — a
simplification documented in DESIGN.md; it does not affect any experiment.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.actions import Invocation
from repro.core.commutativity import CommutativitySpec, MatrixCommutativity
from repro.errors import DatabaseError
from repro.oodb.database import ObjectDatabase
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject

#: slots reserved on every node/leaf page for metadata (__next, __parent, ...)
_META_SLOTS = 8


def page_capacity_for(order: int) -> int:
    """Page slots for a node/leaf of the given order: the keys, one
    transient overflow slot (the key is written before the split runs), and
    the metadata slots."""
    return order + 1 + _META_SLOTS


def _different_key(a: Invocation, b: Invocation) -> bool:
    return bool(a.args) and bool(b.args) and a.args[0] != b.args[0]


def keyed_node_commutativity() -> MatrixCommutativity:
    """Key-based semantics for tree, node and leaf objects.

    Operations on different keys commute; same-key pairs conflict unless
    both are searches.  Structural operations (``rearrange``, splits) and
    whole-object scans are conservative: they conflict with updates.
    """
    matrix: dict[tuple[str, str], Any] = {
        ("search", "search"): True,
        ("find_leaf", "find_leaf"): True,
        ("find_leaf", "search"): True,
        ("scan", "scan"): True,
        ("scan", "search"): True,
        ("range", "search"): True,
        ("range", "range"): True,
    }
    for update in ("insert", "delete"):
        matrix[(update, "search")] = _different_key
        matrix[(update, "find_leaf")] = _different_key
        matrix[("insert", "delete")] = _different_key
        matrix[(update, update)] = _different_key
        matrix[(update, "scan")] = False
        # a range scan conflicts with an update iff the key falls inside
        matrix[(update, "range")] = (
            lambda a, b: not (b.args[0] <= a.args[0] <= b.args[1])
        )
    # the structural no-op (compensation target) commutes with everything
    for other in (
        "insert", "delete", "search", "find_leaf", "scan", "range",
        "rearrange", "set_parent", "structural_noop", "create", "key_count",
        "height", "set_blink",
    ):
        matrix[("structural_noop", other)] = True
    return MatrixCommutativity(matrix)


def _insert_compensation(args: tuple, result: Any) -> tuple[str, tuple] | None:
    """Compensate an insert: delete a fresh key, restore a replaced value."""
    key = args[0]
    if isinstance(result, dict) and result.get("replaced") is not None:
        return ("insert", (key, result["replaced"]))
    return ("delete", (key,))


def _delete_compensation(args: tuple, result: Any) -> tuple[str, tuple] | None:
    """Compensate a delete by re-inserting the removed value (if any)."""
    if result is None:
        return None
    return ("insert", (args[0], result))


class TreeLeaf(DatabaseObject):
    """A leaf: sorted keys with values, one page, chained via ``__next``."""

    commutativity: ClassVar[CommutativitySpec] = keyed_node_commutativity()

    def setup(
        self,
        order: int,
        items: tuple = (),
        next_oid: str | None = None,
        parent: str | None = None,
        blink: bool = False,
        high=None,
    ) -> None:
        self.data["__order"] = order
        self.data["__next"] = next_oid
        self.data["__parent"] = parent
        self.data["__blink"] = blink
        self.data["__high"] = high
        for key, value in items:
            self.data[("k", key)] = value

    # -- helpers (run inside method frames) ---------------------------------

    def _keys(self) -> list:
        return sorted(k[1] for k in self.data.keys() if isinstance(k, tuple))

    def _order(self) -> int:
        return self.data["__order"]

    # -- methods ----------------------------------------------------------------

    def _covers(self, key) -> bool:
        """B-link check: does this leaf's key range still cover ``key``?

        After a split, keys at or above the separator (``__high``) live in
        the right sibling; consistency is preserved by following the link —
        even while the father does not yet (or, after a partial rollback,
        no longer) knows about the new leaf.
        """
        high = self.data.get("__high")
        return high is None or key < high

    @dbmethod(update=True, compensation=_insert_compensation)
    def insert(self, key, value, parent_oid: str | None = None) -> dict:
        """Insert or overwrite; splits when the leaf is full.

        Returns ``{"replaced": old_or_None, "split": (sep, oid) | None}``;
        in B-link mode the split is handled here (the leaf rearranges its
        father) and reported as ``None`` to the caller.
        """
        if not self._covers(key):
            return self.call(self.data["__next"], "insert", key, value)
        slot = ("k", key)
        replaced = self.data.get(slot)
        self.data[slot] = value
        split = None
        keys = self._keys()
        if replaced is None and len(keys) > self._order():
            split = self._split(keys)
        if split is not None and self._blink_mode():
            # B-link mode: the new leaf is already reachable via __next;
            # the father is told only after this subtransaction commits
            # (and its page locks are released) — Lehman-Yao early release.
            return {"replaced": replaced, "split": None, "pending_rearrange": split}
        return {"replaced": replaced, "split": split}

    def _split(self, keys: list) -> tuple | None:
        """Move the upper half into a fresh leaf; B-link via ``__next``."""
        mid = len(keys) // 2
        moved = keys[mid:]
        items = tuple((key, self.data[("k", key)]) for key in moved)
        parent = self.data["__parent"]
        new_oid = self.db_create(
            TreeLeaf,
            self._order(),
            items,
            self.data["__next"],
            parent,
            self._blink_mode(),
            self.data.get("__high"),  # the new leaf inherits the old bound
            page_capacity=page_capacity_for(self._order()),
        )
        for key in moved:
            del self.data[("k", key)]
        # Set the B-link first: the new leaf is reachable from the old one
        # before the father knows about it (Section 2's consistency trick).
        separator = moved[0]
        self.data["__next"] = new_oid
        self.data["__high"] = separator
        return (separator, new_oid)

    def _blink_mode(self) -> bool:
        return bool(self.data.get("__blink", False))

    @dbmethod(update=True)
    def set_blink(self, enabled: bool) -> None:
        self.data["__blink"] = enabled

    @dbmethod(update=True, compensation=lambda args, result: ("structural_noop", ()))
    def set_parent(self, parent_oid: str) -> None:
        """Parent-pointer maintenance: purely structural, compensated by a
        no-op (the pointer stays; routing never depends on a stale one
        because rearrangement follows the B-links)."""
        self.data["__parent"] = parent_oid

    @dbmethod
    def structural_noop(self) -> None:
        """Compensation target for structural operations: splits and
        pointer updates are semantically invisible and survive aborts."""

    @dbmethod
    def search(self, key) -> Any:
        if not self._covers(key):
            return self.call(self.data["__next"], "search", key)
        return self.data.get(("k", key))

    @dbmethod(update=True, compensation=_delete_compensation)
    def delete(self, key) -> Any:
        if not self._covers(key):
            return self.call(self.data["__next"], "delete", key)
        slot = ("k", key)
        old = self.data.get(slot)
        if old is not None:
            del self.data[slot]
        return old

    @dbmethod
    def scan(self) -> tuple[list, str | None]:
        """All (key, value) pairs in order, plus the next leaf's oid."""
        items = [(key, self.data[("k", key)]) for key in self._keys()]
        return items, self.data["__next"]

    @dbmethod
    def find_leaf(self, key) -> str:
        if not self._covers(key):
            return self.call(self.data["__next"], "find_leaf", key)
        return self.oid

    @dbmethod
    def key_count(self) -> int:
        return len(self._keys())


class TreeNode(DatabaseObject):
    """An internal node: separator keys routing to children."""

    commutativity: ClassVar[CommutativitySpec] = keyed_node_commutativity()

    def setup(
        self,
        order: int,
        first_child: str,
        separators: tuple = (),
        parent: str | None = None,
        blink: bool = False,
    ) -> None:
        self.data["__order"] = order
        self.data["__first"] = first_child
        self.data["__parent"] = parent
        self.data["__blink"] = blink
        for sep, child in separators:
            self.data[("s", sep)] = child

    # -- helpers -------------------------------------------------------------

    def _separators(self) -> list:
        return sorted(k[1] for k in self.data.keys() if isinstance(k, tuple))

    def _child_for(self, key) -> str:
        chosen = self.data["__first"]
        for sep in self._separators():
            if key >= sep:
                chosen = self.data[("s", sep)]
            else:
                break
        return chosen

    def _order(self) -> int:
        return self.data["__order"]

    # -- methods ------------------------------------------------------------------

    @dbmethod(update=True, compensation=_insert_compensation, write_intent=False)
    def insert(self, key, value, parent_oid: str | None = None) -> dict:
        child = self._child_for(key)
        result = self.call(child, "insert", key, value, self.oid)
        split = result.get("split") if isinstance(result, dict) else None
        own_split = None
        if split is not None:  # recursive mode: apply the child's split here
            sep, new_child = split
            own_split = self._add_separator(sep, new_child)
        if isinstance(result, dict) and result.get("pending_rearrange"):
            # B-link mode: the leaf committed its split (and released its
            # page locks — the paper's "after the split is completed the
            # lock is released"); the father now rearranges itself.  This
            # self-send is the Definition 5 call cycle of Example 3.
            separator, new_leaf = result["pending_rearrange"]
            self.call(self.oid, "rearrange", separator, new_leaf)
        return {"replaced": result.get("replaced"), "split": own_split}

    @dbmethod(update=True, compensation=lambda args, result: ("structural_noop", ()))
    def rearrange(self, separator, new_child: str) -> None:
        """B-link mode: a child announces its split (Example 3's action).

        Structural: compensated by a no-op.  An aborted insert only removes
        its *key* (the logical compensation); the split itself is
        semantically invisible and survives — as in real systems, where
        page splits are independent system transactions.
        """
        own_split = self._add_separator(separator, new_child)
        if own_split is not None:
            parent = self.data["__parent"]
            if parent is not None:
                self.call(parent, "rearrange", own_split[0], own_split[1])

    @dbmethod
    def structural_noop(self) -> None:
        """Compensation target for structural operations."""

    def _add_separator(self, separator, new_child: str) -> tuple | None:
        self.data[("s", separator)] = new_child
        seps = self._separators()
        if len(seps) <= self._order():
            return None
        # Split: promote the middle separator, move the upper ones.
        mid = len(seps) // 2
        promote = seps[mid]
        moved = seps[mid + 1 :]
        new_first = self.data[("s", promote)]
        moved_pairs = tuple((sep, self.data[("s", sep)]) for sep in moved)
        new_oid = self.db_create(
            TreeNode,
            self._order(),
            new_first,
            moved_pairs,
            self.data["__parent"],
            self.data["__blink"],
            page_capacity=page_capacity_for(self._order()),
        )
        for sep in [promote, *moved]:
            del self.data[("s", sep)]
        for child in [new_first, *(child for _, child in moved_pairs)]:
            self.call(child, "set_parent", new_oid)
        return (promote, new_oid)

    @dbmethod(update=True, compensation=lambda args, result: ("structural_noop", ()))
    def set_parent(self, parent_oid: str) -> None:
        self.data["__parent"] = parent_oid

    @dbmethod
    def search(self, key) -> Any:
        return self.call(self._child_for(key), "search", key)

    @dbmethod(update=True, compensation=_delete_compensation, write_intent=False)
    def delete(self, key) -> Any:
        return self.call(self._child_for(key), "delete", key)

    @dbmethod
    def find_leaf(self, key) -> str:
        return self.call(self._child_for(key), "find_leaf", key)

    @dbmethod
    def key_count(self) -> int:
        return len(self._separators())


class BPlusTree(DatabaseObject):
    """The index object (``BpTree`` in the figures)."""

    commutativity: ClassVar[CommutativitySpec] = keyed_node_commutativity()

    def setup(self, order: int, root_oid: str, blink: bool = False) -> None:
        if order < 2:
            raise DatabaseError("B+ tree order must be at least 2")
        self.data["__order"] = order
        self.data["__root"] = root_oid
        self.data["__height"] = 1
        self.data["__blink"] = blink
        self.data["__first_leaf"] = root_oid

    @dbmethod(update=True, compensation=_insert_compensation, write_intent=False)
    def insert(self, key, value) -> dict:
        root = self.data["__root"]
        result = self.call(root, "insert", key, value, self.oid)
        split = result.get("split") if isinstance(result, dict) else None
        if split is not None:
            self._grow(root, split)
        if isinstance(result, dict) and result.get("pending_rearrange"):
            # B-link mode with a leaf root: grow via the rearrange action
            separator, new_leaf = result["pending_rearrange"]
            self.call(self.oid, "rearrange", separator, new_leaf)
        return {"replaced": result.get("replaced"), "split": None}

    @dbmethod(update=True, compensation=lambda args, result: ("structural_noop", ()))
    def rearrange(self, separator, new_child: str) -> None:
        """B-link mode: the root split propagates up to the tree object."""
        self._grow(self.data["__root"], (separator, new_child))

    @dbmethod
    def structural_noop(self) -> None:
        """Compensation target for structural operations."""

    def _grow(self, old_root: str, split: tuple) -> None:
        separator, new_child = split
        new_root = self.db_create(
            TreeNode,
            self.data["__order"],
            old_root,
            ((separator, new_child),),
            self.oid,
            self.data["__blink"],
            page_capacity=page_capacity_for(self.data["__order"]),
        )
        self.call(old_root, "set_parent", new_root)
        self.call(new_child, "set_parent", new_root)
        self.data["__root"] = new_root
        self.data["__height"] = self.data["__height"] + 1

    @dbmethod
    def search(self, key) -> Any:
        return self.call(self.data["__root"], "search", key)

    @dbmethod(update=True, compensation=_delete_compensation, write_intent=False)
    def delete(self, key) -> Any:
        return self.call(self.data["__root"], "delete", key)

    @dbmethod
    def range(self, low, high) -> list:
        """All (key, value) pairs with ``low <= key <= high``."""
        leaf = self.call(self.data["__root"], "find_leaf", low)
        found = []
        while leaf is not None:
            items, nxt = self.call(leaf, "scan")
            for key, value in items:
                if key > high:
                    return found
                if key >= low:
                    found.append((key, value))
            leaf = nxt
        return found

    @dbmethod
    def height(self) -> int:
        return self.data["__height"]


def build_bptree(
    db: ObjectDatabase,
    order: int = 4,
    *,
    blink: bool = False,
    oid: str = "BpTree",
) -> str:
    """Bootstrap an empty B+ tree (tree object plus its first leaf)."""
    leaf = db.create(
        TreeLeaf,
        order,
        (),
        None,
        oid,
        blink,
        page_capacity=page_capacity_for(order),
    )
    return db.create(BPlusTree, order, leaf, blink, oid=oid)
