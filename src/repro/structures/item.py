"""Encyclopedia items.

An item is a small document identified by its key; it is read and changed
as a whole, so only concurrent reads commute.  Items also carry the ``next``
link of the encyclopedia's item list — updated via messages, because the
list may not reach into an item's state (encapsulation).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.commutativity import CommutativitySpec, MatrixCommutativity
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject


def item_commutativity() -> MatrixCommutativity:
    """Whole-object semantics: read/read commutes, updates conflict.

    Link maintenance (``set_next``/``next``) is kept compatible with content
    access: the link and the content are independent parts of the state.
    """
    return MatrixCommutativity(
        {
            ("read", "read"): True,
            ("change", "read"): False,
            ("change", "change"): False,
            ("read", "write"): False,
            ("change", "write"): False,
            ("write", "write"): False,
            ("next", "next"): True,
            ("next", "read"): True,
            ("next", "change"): True,
            ("next", "write"): True,
            ("next", "set_next"): False,
            ("set_next", "set_next"): False,
            ("read", "set_next"): True,
            ("change", "set_next"): True,
            ("set_next", "write"): True,
        }
    )


class Item(DatabaseObject):
    """One encyclopedia item (``Item8`` in Figures 7-8)."""

    commutativity: ClassVar[CommutativitySpec] = item_commutativity()

    def setup(self, key: str = "", content: Any = None) -> None:
        self.data["key"] = key
        self.data["content"] = content
        self.data["__next"] = None

    @dbmethod
    def read(self) -> Any:
        """The item's content."""
        return self.data["content"]

    @dbmethod
    def key(self) -> str:
        return self.data["key"]

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("change", (result,)),
    )
    def change(self, content: Any) -> Any:
        """Replace the content; returns the old content (the compensation
        restores it)."""
        old = self.data["content"]
        self.data["content"] = content
        return old

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("write", (result,)),
    )
    def write(self, content: Any) -> Any:
        """Initial write of the content (T1's ``Item8.write`` in Example 4)."""
        old = self.data.get("content")
        self.data["content"] = content
        return old

    @dbmethod
    def next(self) -> str | None:
        """The next item in the encyclopedia's list, or None."""
        return self.data["__next"]

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("set_next", (result,)),
    )
    def set_next(self, oid: str | None) -> str | None:
        old = self.data["__next"]
        self.data["__next"] = oid
        return old
