"""Structural integrity checkers.

Deep consistency checks used by the property tests and the concurrency
examples: after any mix of committed/aborted transactions under any
protocol, the structures must satisfy their invariants.  All checks read
page state *directly* through the store (they are meta-level inspectors,
not application accesses — no tracing, no locks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oodb.database import ObjectDatabase


@dataclass
class VerificationReport:
    """Outcome of one structural check."""

    ok: bool = True
    problems: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)

    def merge(self, other: "VerificationReport") -> None:
        if not other.ok:
            self.ok = False
            self.problems.extend(other.problems)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        return "OK" if self.ok else "; ".join(self.problems)


def _slots(db: ObjectDatabase, oid: str) -> dict:
    return db.store.get(db.get_object(oid).page_id).slots


def verify_bptree(db: ObjectDatabase, tree_oid: str) -> VerificationReport:
    """Check the B+ tree invariants.

    - every leaf's keys are within its routing interval;
    - the leaf chain (B-links) is strictly ascending and loop-free;
    - every key stored in any leaf is found by a root descent that follows
      the B-links (no lost keys);
    - node separators are sorted and route into existing children.
    """
    report = VerificationReport()
    tree_slots = _slots(db, tree_oid)
    root = tree_slots.get("__root")
    if root is None:
        report.fail(f"{tree_oid}: no root")
        return report

    from repro.structures.bptree import TreeLeaf

    # Collect all leaves by walking the tree.
    leaves: list[str] = []

    def walk(oid: str) -> None:
        if isinstance(db.get_object(oid), TreeLeaf):
            leaves.append(oid)
            return
        slots = _slots(db, oid)
        separators = sorted(k[1] for k in slots if isinstance(k, tuple))
        children = [slots["__first"]] + [slots[("s", sep)] for sep in separators]
        previous = None
        for sep in separators:
            if previous is not None and sep <= previous:
                report.fail(f"{oid}: separators not strictly sorted")
            previous = sep
        for child in children:
            if not db.has_object(child):
                report.fail(f"{oid}: dangling child {child}")
                continue
            walk(child)

    walk(root)

    # Leaf chain: start from the leftmost leaf of the walk order and follow
    # __next; keys must be globally ascending and the chain loop-free.
    chain: list[str] = []
    seen: set[str] = set()
    current = leaves[0] if leaves else None
    while current is not None:
        if current in seen:
            report.fail(f"leaf chain loops at {current}")
            break
        seen.add(current)
        chain.append(current)
        current = _slots(db, current).get("__next")

    previous_key = None
    all_keys: dict = {}
    for leaf in chain:
        slots = _slots(db, leaf)
        keys = sorted(k[1] for k in slots if isinstance(k, tuple))
        high = slots.get("__high")
        for key in keys:
            if previous_key is not None and key <= previous_key:
                report.fail(f"{leaf}: key {key!r} out of global order")
            previous_key = key
            all_keys[key] = slots[("k", key)]
            if high is not None and key >= high:
                report.fail(f"{leaf}: key {key!r} >= high bound {high!r}")

    # Every stored key must be found through the public API.
    ctx = db.begin()
    try:
        for key, value in all_keys.items():
            found = db.send(ctx, tree_oid, "search", key)
            if found != value:
                report.fail(
                    f"{tree_oid}: search({key!r}) = {found!r}, stored {value!r}"
                )
    finally:
        db.commit(ctx)
    return report


def verify_linked_list(db: ObjectDatabase, list_oid: str) -> VerificationReport:
    """Check the item list: length matches traversal, tail is the last
    node, the chain is loop-free."""
    report = VerificationReport()
    slots = _slots(db, list_oid)
    head, tail, length = slots.get("__head"), slots.get("__tail"), slots.get("__len")
    seen: set[str] = set()
    count = 0
    current = head
    last = None
    while current is not None:
        if current in seen:
            report.fail(f"{list_oid}: chain loops at {current}")
            return report
        seen.add(current)
        count += 1
        last = current
        current = _slots(db, current).get("__next")
    if count != length:
        report.fail(f"{list_oid}: __len={length} but traversal found {count}")
    if last != tail:
        report.fail(f"{list_oid}: __tail={tail} but last node is {last}")
    return report


def verify_encyclopedia(db: ObjectDatabase, enc_oid: str) -> VerificationReport:
    """Check Figure 2's cross-structure invariant: the index and the list
    agree on the item population."""
    report = VerificationReport()
    slots = _slots(db, enc_oid)
    index, items = slots["__index"], slots["__list"]
    report.merge(verify_bptree(db, index))
    report.merge(verify_linked_list(db, items))

    ctx = db.begin()
    try:
        listed = db.send(ctx, enc_oid, "readSeq")
        for key, _content in listed:
            item = db.send(ctx, index, "search", key)
            if item is None:
                report.fail(f"{enc_oid}: listed item {key!r} missing from index")
        low = min((k for k, _ in listed), default=None)
        high = max((k for k, _ in listed), default=None)
        if low is not None:
            indexed = db.send(ctx, index, "range", low, high)
            listed_keys = {k for k, _ in listed}
            for key, _oid in indexed:
                if key not in listed_keys:
                    report.fail(f"{enc_oid}: indexed key {key!r} not in list")
    finally:
        db.commit(ctx)
    return report
