"""Documents with sections — the cooperative-editing motivation (Section 1).

"Consider a publication system which allows the cooperative editing of
documents by several authors (like this paper).  Every author wants to
write down his ideas immediately."  A :class:`Document` delegates to
:class:`Section` objects; edits of *different* sections commute, so under
the open-nested protocol two authors work concurrently on one document,
while page-level 2PL serializes them for the whole (long) editing
transaction.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.actions import Invocation
from repro.core.commutativity import CommutativitySpec, MatrixCommutativity
from repro.errors import DatabaseError
from repro.oodb.database import ObjectDatabase
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject


def _different_section(a: Invocation, b: Invocation) -> bool:
    return bool(a.args) and bool(b.args) and a.args[0] != b.args[0]


def document_commutativity() -> MatrixCommutativity:
    return MatrixCommutativity(
        {
            ("edit", "edit"): _different_section,
            ("edit", "read_section"): _different_section,
            ("read_section", "read_section"): True,
            ("edit", "read_all"): False,
            ("read_all", "read_all"): True,
            ("read_all", "read_section"): True,
            ("append_section", "append_section"): False,
            ("append_section", "edit"): False,
            ("append_section", "read_all"): False,
            ("append_section", "read_section"): False,
            ("read_section", "section_count"): True,
            ("read_all", "section_count"): True,
            ("edit", "section_count"): True,
            ("append_section", "section_count"): False,
            ("section_count", "section_count"): True,
            ("revision", "revision"): True,
            ("edit", "revision"): False,  # a revision read observes edits
            ("append_section", "revision"): True,
            ("read_all", "revision"): True,
            ("read_section", "revision"): True,
            ("revision", "section_count"): True,
        }
    )


def section_commutativity() -> MatrixCommutativity:
    """Whole-section semantics: reads commute, writes do not."""
    return MatrixCommutativity(
        {
            ("read", "read"): True,
            ("read", "write"): False,
            ("write", "write"): False,
        }
    )


class Section(DatabaseObject):
    """One section of a document; its text lives on its own page."""

    commutativity: ClassVar[CommutativitySpec] = section_commutativity()

    def setup(self, name: str = "", text: str = "") -> None:
        self.data["name"] = name
        self.data["text"] = text

    @dbmethod
    def read(self) -> str:
        return self.data["text"]

    @dbmethod(update=True, compensation=lambda args, result: ("write", (result,)))
    def write(self, text: str) -> str:
        old = self.data["text"]
        self.data["text"] = text
        return old


class Document(DatabaseObject):
    """A sectioned document (section name -> Section object)."""

    commutativity: ClassVar[CommutativitySpec] = document_commutativity()

    def setup(self, title: str = "") -> None:
        self.data["title"] = title
        self.data["__count"] = 0
        self.data["__rev"] = 0

    @dbmethod(update=True)
    def append_section(self, name: str, text: str = "") -> str:
        """Add a new section; returns its oid."""
        slot = ("s", name)
        if slot in self.data:
            raise DatabaseError(f"section {name!r} already exists")
        section = self.db_create(Section, name, text)
        self.data[slot] = section
        self.data["__count"] = self.data["__count"] + 1
        return section

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("edit", (args[0], result)),
    )
    def edit(self, name: str, text: str) -> str:
        """Replace a section's text; returns the old text.

        Every edit also bumps the document's revision counter — document
        state the conventional page-level criterion must serialize, while
        semantically edits of different sections still commute (revision
        numbers are bookkeeping, not content)."""
        section = self._section(name)
        old = self.call(section, "write", text)
        self.data["__rev"] = self.data["__rev"] + 1
        return old

    @dbmethod
    def read_section(self, name: str) -> str:
        return self.call(self._section(name), "read")

    @dbmethod
    def read_all(self) -> list[tuple[str, str]]:
        names = sorted(k[1] for k in self.data.keys() if isinstance(k, tuple))
        return [(name, self.call(self.data[("s", name)], "read")) for name in names]

    @dbmethod
    def section_count(self) -> int:
        return self.data["__count"]

    @dbmethod
    def revision(self) -> int:
        return self.data["__rev"]

    def _section(self, name: str) -> str:
        slot = ("s", name)
        if slot not in self.data:
            raise DatabaseError(f"no section {name!r}")
        return self.data[slot]


def build_document(
    db: ObjectDatabase,
    title: str,
    sections: dict[str, str],
    *,
    oid: str | None = None,
) -> str:
    """Bootstrap a document with initial sections (outside transactions)."""
    doc_oid = db.create(Document, title, oid=oid)
    doc = db.get_object(doc_oid)
    store = db.store
    count = 0
    for name, text in sections.items():
        section_oid = db.create(Section, name, text)
        store.get(doc.page_id).write(("s", name), section_oid)
        count += 1
    store.get(doc.page_id).write("__count", count)
    store.get(doc.page_id).write("__rev", 0)
    return doc_oid
