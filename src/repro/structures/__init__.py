"""The paper's example application objects (Figure 2 and Section 2).

Everything is built from :class:`~repro.oodb.object_model.DatabaseObject`
types with explicit commutativity specifications:

- :mod:`repro.structures.item` — encyclopedia items (whole-object
  read/change semantics);
- :mod:`repro.structures.linked_list` — the item list with sequential read;
- :mod:`repro.structures.bptree` — a B+ tree over pages with key-based
  commutativity and an optional B-link split mode that reproduces the
  paper's ``Node.insert -> ... -> Node.rearrange`` call cycle (Example 3);
- :mod:`repro.structures.encyclopedia` — ``Enc`` wiring index and list
  (Figure 2), plus :func:`build_encyclopedia`;
- :mod:`repro.structures.account` — escrow accounts (the financial example
  of Figure 1);
- :mod:`repro.structures.document` — sectioned documents (the cooperative
  editing motivation of Section 1);
- :mod:`repro.structures.adts` — Weihl-style abstract data types (counter,
  queue, directory, key set) cited in Section 2.
"""

from repro.structures.account import Account
from repro.structures.adts import Counter, Directory, FIFOQueue, KeySet
from repro.structures.bptree import BPlusTree, TreeLeaf, TreeNode, build_bptree
from repro.structures.document import Document, Section, build_document
from repro.structures.encyclopedia import Encyclopedia, build_encyclopedia
from repro.structures.item import Item
from repro.structures.linked_list import LinkedList

__all__ = [
    "Account",
    "BPlusTree",
    "Counter",
    "Directory",
    "Document",
    "Encyclopedia",
    "FIFOQueue",
    "Item",
    "KeySet",
    "LinkedList",
    "Section",
    "TreeLeaf",
    "TreeNode",
    "build_bptree",
    "build_document",
    "build_encyclopedia",
]
