"""The encyclopedia's item list (Figure 2).

``LinkedList`` chains :class:`~repro.structures.item.Item` objects through
their ``next`` links; the list object itself only stores head, tail and
length.  Every link traversal and link update is a message to the item —
encapsulation keeps item state behind item methods, which is what routes
T4's sequential read through ``LinkedList.readSeq -> Item8.read`` in
Example 4.

Semantics: the encyclopedia is a keyed collection, so the physical append
order is not observable through the API — two ``insert`` operations
commute.  A sequential read observes membership, so it conflicts with
inserts and removes (the phantom problem of Section 1's terminology).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.commutativity import CommutativitySpec, MatrixCommutativity
from repro.oodb.method import dbmethod
from repro.oodb.object_model import DatabaseObject


def linked_list_commutativity() -> MatrixCommutativity:
    def different_first_arg(a, b):
        return bool(a.args) and bool(b.args) and a.args[0] != b.args[0]

    return MatrixCommutativity(
        {
            ("insert", "insert"): True,
            ("insert", "readSeq"): False,
            ("insert", "remove"): different_first_arg,
            ("readSeq", "readSeq"): True,
            ("readSeq", "remove"): False,
            ("remove", "remove"): different_first_arg,
            ("length", "length"): True,
            ("insert", "length"): False,
            ("length", "remove"): False,
            ("length", "readSeq"): True,
        }
    )


class LinkedList(DatabaseObject):
    """A linked list of items, addressed by item oid."""

    commutativity: ClassVar[CommutativitySpec] = linked_list_commutativity()

    def setup(self) -> None:
        self.data["__head"] = None
        self.data["__tail"] = None
        self.data["__len"] = 0

    @dbmethod(
        update=True,
        compensation=lambda args, result: ("remove", (args[0],)),
    )
    def insert(self, item_oid: str) -> None:
        """Append an item to the list."""
        tail = self.data["__tail"]
        if tail is None:
            self.data["__head"] = item_oid
        else:
            self.call(tail, "set_next", item_oid)
        self.data["__tail"] = item_oid
        self.data["__len"] = self.data["__len"] + 1

    @dbmethod(update=True)
    def remove(self, item_oid: str) -> bool:
        """Unlink an item; returns whether it was present.

        No compensation is registered: a remove used *as* a compensation
        never needs compensating itself, and a programmatic remove keeps its
        page-level undo (the scheduler then holds its locks to commit).
        """
        previous = None
        current = self.data["__head"]
        while current is not None:
            nxt = self.call(current, "next")
            if current == item_oid:
                if previous is None:
                    self.data["__head"] = nxt
                else:
                    self.call(previous, "set_next", nxt)
                if self.data["__tail"] == item_oid:
                    self.data["__tail"] = previous
                self.call(current, "set_next", None)
                self.data["__len"] = self.data["__len"] - 1
                return True
            previous = current
            current = nxt
        return False

    @dbmethod
    def readSeq(self) -> list[tuple[str, Any]]:
        """Read all items sequentially; returns ``[(key, content), ...]``."""
        result = []
        current = self.data["__head"]
        while current is not None:
            key = self.call(current, "key")
            content = self.call(current, "read")
            result.append((key, content))
            current = self.call(current, "next")
        return result

    @dbmethod
    def length(self) -> int:
        return self.data["__len"]
